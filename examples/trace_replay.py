#!/usr/bin/env python
"""Replaying a real-shaped cluster trace through the service layer.

The synthetic Poisson/bursty/diurnal generators shape a *hypothesis*
about demand; a workload trace replays *evidence*.  This walkthrough
runs the full trace lifecycle on the bundled Hadoop JobHistory-style
sample:

  ingest     parse the JobHistory JSON into the canonical model
  calibrate  map each job onto the simulator's JobSpec catalogue
  synthesize fit the inter-arrival law and emit a 3x-load variant
  replay     serve both streams under FIFO and EDF on the same seed
  capture    record the served run back into a trace, and show the
             round trip reproduces the report byte for byte

Run:  python examples/trace_replay.py
"""

import pathlib

import numpy as np

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.service import MoonService, ServiceConfig
from repro.workload_traces import (
    SynthesisConfig,
    load_workload_trace,
    synthesize,
    trace_arrivals,
)

HOUR = 3600.0
SAMPLE = (
    pathlib.Path(__file__).parent.parent
    / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
)


def build_system(seed: int = 42):
    """A volatile 12+2 cluster, 30% mean unavailability."""
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=12, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def replay(trace, policy: str, capture: bool = False):
    """Serve one trace under one queue policy (seed-deterministic)."""
    system = build_system()
    service = MoonService(
        system,
        ServiceConfig(
            policy=policy,
            max_in_flight=2,
            max_queue_depth=64,
            horizon=trace.horizon,
            drain_limit=4 * HOUR,
            capture=capture,
            trace_name=trace.name,
        ),
        trace_arrivals(trace),
        pattern=trace.pattern,
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, service.captured_trace


def main() -> None:
    # Ingest: JobHistory JSON -> canonical WorkloadTrace.
    trace = load_workload_trace(SAMPLE)
    print(trace.summary().render())
    print()

    # Synthesize: fit the inter-arrival law, triple the load.
    heavy = synthesize(
        trace, np.random.default_rng(7), SynthesisConfig(load_factor=3.0)
    )
    print(f"synthesized {heavy.name}: {len(heavy)} jobs "
          f"(from {len(trace)}) over the same horizon\n")

    # Replay the heavy variant under FIFO vs EDF on identical streams.
    reports = {p: replay(heavy, p)[0] for p in ("fifo", "edf")}
    for report in reports.values():
        print(report.render())
        print()
    fifo, edf = reports["fifo"].overall, reports["edf"].overall
    print(f"deadline-miss rate at 3x load: fifo={fifo.miss_rate:.1%} "
          f"edf={edf.miss_rate:.1%}\n")

    # Capture -> replay round trip on the original trace.
    base, captured = replay(trace, "edf", capture=True)
    again, _ = replay(captured, "edf")
    assert again.render() == base.render()
    print("capture -> replay reproduced the EDF report byte for byte "
          f"({len(captured)} arrivals).")


if __name__ == "__main__":
    main()
