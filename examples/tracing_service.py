#!/usr/bin/env python
"""Tracing a pressured serve run with the flight recorder.

The simulator answers *what* happened through reports; the obs layer
answers *when and why*: every job, queue wait, attempt, preemption and
autoscale decision becomes a sim-clock-stamped span in a Chrome-trace
file you can scrub through in Perfetto.  This example runs the
pressure scenario from the preemption docs — two fat batch jobs hog a
small cluster, two tight-SLO jobs arrive behind them — with pause
preemption and a reactive autoscaler armed, then:

1. writes ``moon.trace.json`` (load it at https://ui.perfetto.dev) and
   ``moon.metrics.json``;
2. prints the deterministic text timeline of the controller actions;
3. prints the registry counters that mirror the report.

Run:  python examples/tracing_service.py        (~2 seconds)

Equivalent CLI:  repro serve ... --trace-out moon.trace.json
"""

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.obs import Observability, ObsConfig
from repro.service import (
    AutoscaleConfig,
    MoonService,
    PreemptConfig,
    ServiceConfig,
    replay_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def main() -> None:
    batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
        name="batch"
    )
    tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(name="tight")
    arrivals = replay_arrivals(
        [
            (0.0, "acme", batch, 4 * HOUR),
            (0.0, "acme", batch, 4 * HOUR),
            (60.0, "rush", tight, 300.0),
            (70.0, "rush", tight, 300.0),
        ]
    )

    # One recorder for the whole run: tracer armed, metrics always on.
    obs = Observability(
        ObsConfig(
            trace=True,
            trace_out="moon.trace.json",
            metrics_out="moon.metrics.json",
        )
    )
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=moon_scheduler_config(),
            seed=3,
        ),
        obs=obs,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=2,
            horizon=HOUR,
            preempt=PreemptConfig(mode="pause"),
            autoscale=AutoscaleConfig(
                policy="reactive",
                min_dedicated=1,
                max_dedicated=4,
                queue_high=1,
            ),
        ),
        arrivals,
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()

    print(report.render())
    print()

    for path in obs.export():
        print(f"wrote {path}")
    print()

    # The controller's story, straight from the trace: every preempt
    # and autoscale span on the deterministic text timeline.
    print("controller timeline:")
    for line in obs.tracer.timeline().splitlines():
        if "[preempt" in line or "[autoscale" in line:
            print(f"  {line}")
    print()

    print("registry counters:")
    counters = obs.metrics.to_dict()["counters"]
    for name in sorted(counters):
        if name.startswith(("service/", "mapreduce/jobs")):
            print(f"  {name:<32} {counters[name]}")


if __name__ == "__main__":
    main()
