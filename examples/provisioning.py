#!/usr/bin/env python
"""Dedicated-node provisioning study: "how many anchors do I need?"

The operational question MOON's hybrid architecture raises (paper
Sections III and VI-C): given a pool of volunteer PCs at some
volatility, how many dedicated nodes buy how much job-time improvement?
This example sweeps the V-to-D ratio like the paper's Figure 7 and
pairs the simulation with the analytical replication arithmetic.

Run:  python examples/provisioning.py        (~a minute)
"""

from repro.analysis import strategy_table
from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import bar_chart
from repro.workloads import sort_spec

RATE = 0.4  # the production desktop grid's average (paper Fig. 1)
N_VOLATILE = 30


def simulate(n_dedicated: int) -> float:
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=N_VOLATILE, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=RATE),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=11,
    )
    system = moon_system(config)
    spec = sort_spec(n_maps=96, block_mb=16.0)
    result = system.run_job(spec)
    return result.elapsed if result.succeeded else None


def main() -> None:
    # 1. The storage arithmetic: why one dedicated copy is so valuable.
    print(strategy_table(RATE, 0.9999))
    print()

    # 2. The scheduling/IO effect: job time vs number of anchors.
    ratios = [1, 2, 3, 5]
    times = {"sort": []}
    for d in ratios:
        elapsed = simulate(d)
        times["sort"].append(elapsed)
        label = f"{elapsed:,.0f} s" if elapsed else "DNF"
        print(f"{N_VOLATILE}:{d} volatile-to-dedicated -> {label}")
    print()
    print(
        bar_chart(
            [f"{N_VOLATILE}:{d}" for d in ratios],
            times,
            title=f"sort job time vs provisioning at p={RATE}",
            unit="s",
        )
    )
    print()
    print(
        "Reading: a handful of anchors captures most of the benefit —\n"
        "the paper found 10:1 sufficient, with 20:1 competitive except\n"
        "for I/O-heavy sort at low volatility (Fig. 7)."
    )


if __name__ == "__main__":
    main()
