#!/usr/bin/env python
"""Quickstart: run one MapReduce job on a simulated MOON deployment.

Builds the paper's hybrid cluster (volatile volunteer PCs + a few
dedicated nodes), submits a scaled-down ``sort``, and prints the
outcome and the Table-II style execution profile.

Run:  python examples/quickstart.py
"""

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.dfs import ReplicationFactor
from repro.workloads import scaled, sort_spec


def main() -> None:
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        # 40% of each volunteer node's time is unavailable - the level
        # the paper measured on a production desktop grid (Fig. 1).
        trace=TraceConfig(unavailability_rate=0.4),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=2024,
    )
    system = moon_system(config)

    # A quarter-scale Table-I sort: 48 x 16 MB input blocks.
    spec = scaled(sort_spec(n_maps=48), 0.25).with_(
        input_rf=ReplicationFactor(1, 3),
        output_rf=ReplicationFactor(1, 3),
        intermediate_rf=ReplicationFactor(1, 1),  # the paper's HA-V1
    )

    print(f"cluster: {len(system.cluster.volatile)} volatile + "
          f"{len(system.cluster.dedicated)} dedicated nodes")
    print(f"submitting {spec.name}: {spec.n_maps} maps, "
          f"{spec.input_mb:.0f} MB input\n")

    result = system.run_job(spec)

    print("result: ", result.summary())
    print("profile:", result.profile.row())
    nn = result.metrics.namenode_counters
    print(f"dfs:     {nn.get('replicas_written', 0)} replicas written, "
          f"{nn.get('replications_issued', 0)} re-replications, "
          f"{nn.get('hibernations', 0)} hibernations, "
          f"{nn.get('read_timeouts', 0)} read timeouts")


if __name__ == "__main__":
    main()
