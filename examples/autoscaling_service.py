#!/usr/bin/env python
"""Autoscaling the dedicated tier: static vs reactive vs predictive.

The paper asks "how many dedicated nodes are enough?" and answers it
statically (Section VII / Fig. 7).  A served job stream makes the
question dynamic: bursts need a big tier for minutes, quiet stretches
need almost none.  This example runs the same bursty two-hour stream
through the three provisioning policies on identical traces and
arrivals (same seed) and compares deadline-miss rate against dedicated
node-hours — the cost the operator actually pays.

Run:  python examples/autoscaling_service.py        (~10 seconds)

Equivalent CLI:  repro serve --autoscale all --pattern bursty
"""

from dataclasses import replace

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.service import (
    AUTOSCALE_POLICIES,
    AutoscaleConfig,
    ServiceConfig,
    bursty_arrivals,
    render_decisions,
    sleep_catalog,
)

HOUR = 3600.0


def serve(scale_policy: str):
    # Fresh system per policy: same seed -> same traces, same arrival
    # draws, so the controllers compete on identical streams.
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=12, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        # Service mode: the dedicated tier is real capacity, not just
        # a speculative-execution annex (config.py: dedicated_primary).
        scheduler=replace(moon_scheduler_config(), dedicated_primary=True),
        seed=42,
    )
    system = moon_system(config)
    arrivals = bursty_arrivals(
        system.sim.rng("service/arrivals"),
        bursts_per_hour=2.0,
        burst_size_mean=12.0,
        horizon=2 * HOUR,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=8,
            max_queue_depth=128,
            horizon=2 * HOUR,
            autoscale=AutoscaleConfig(
                policy=scale_policy, min_dedicated=1, max_dedicated=6
            ),
        ),
        pattern="bursty",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


def main() -> None:
    reports = {p: serve(p) for p in AUTOSCALE_POLICIES}

    rows = []
    for policy, report in reports.items():
        rows.append([policy] + report.cost_row())
    print(
        table(
            ["autoscale", "done", "p50 s", "p95 s", "p99 s", "miss",
             "good/h", "fairness", "node-h", "tier", "ops"],
            rows,
            title="dedicated-tier provisioning - bursty stream, EDF queue",
        )
    )
    print()
    print(render_decisions(reports["reactive"].scale_events))
    print()

    static = reports["static"].overall
    for policy in ("reactive", "predictive"):
        r = reports[policy]
        print(
            f"{policy:>10}: miss {r.overall.miss_rate:.1%} vs static "
            f"{static.miss_rate:.1%} at {r.node_hours:.2f} node-h vs "
            f"static {reports['static'].node_hours:.2f}"
        )
    print()
    print(
        "Reading: both controllers ride the bursts — grow the tier\n"
        "while the queue builds, shed it in the gaps (graceful drain:\n"
        "a leaving node finishes its tasks first) — so they beat the\n"
        "static tier on deadline misses *and* on node-hours.  The\n"
        "predictive EWMA pre-scales for the next burst; reactive waits\n"
        "for the pressure signal but never overshoots idle capacity."
    )


if __name__ == "__main__":
    main()
