#!/usr/bin/env python
"""Scheduling comparison: Hadoop vs MOON vs MOON-Hybrid vs LATE.

Reproduces the Fig. 4 methodology at example scale: a sleep job with
sort's measured task times runs under each policy on identical
availability traces (same seed => same outages), so the difference is
purely the scheduler.

Run:  python examples/scheduling_comparison.py [unavailability-rate]
"""

import sys

from repro.config import ClusterConfig, SystemConfig, TraceConfig
from repro.core import moon_system
from repro.experiments.harness import (
    hadoop_policy,
    late_policy,
    moon_policy,
)
from repro.workloads import sleep_like_sort


SEEDS = (7, 8, 9)  # identical trace set per policy, averaged


def run_policy(sched, rate: float):
    """Mean job time + duplicates for one policy over the seed set."""
    spec = sleep_like_sort(n_maps=192)
    times, dups = [], []
    for seed in SEEDS:
        config = SystemConfig(
            cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=sched,
            seed=seed,
        )
        result = moon_system(config).run_job(spec)
        if result.succeeded:
            times.append(result.elapsed)
        dups.append(result.metrics.duplicated_tasks)
    mean_t = sum(times) / len(times) if times else None
    return mean_t, sum(dups) / len(dups)


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    policies = {
        "Hadoop10Min": hadoop_policy(10),
        "Hadoop1Min": hadoop_policy(1),
        "LATE": late_policy(),
        "MOON": moon_policy(False),
        "MOON-Hybrid": moon_policy(True),
    }

    print(f"sleep[sort] (192 maps) on 30V+3D at unavailability {rate},")
    print(f"averaged over seeds {SEEDS}\n")
    print(f"{'policy':<14}{'job time':>10}  {'dup tasks':>9}")
    print("-" * 36)
    for name, sched in policies.items():
        mean_t, mean_d = run_policy(sched, rate)
        time_s = f"{mean_t:.0f}s" if mean_t is not None else "DNF"
        print(f"{name:<14}{time_s:>10}  {mean_d:>9.0f}")

    print("\nExpected shape (paper Fig. 4/5): MOON-Hybrid fastest at high")
    print("rates with fewer duplicates than Hadoop1Min.  Single runs are")
    print("noisy; benchmarks/test_fig4_scheduling.py is the seed-averaged,")
    print("full-cluster version of this comparison.")


if __name__ == "__main__":
    main()
