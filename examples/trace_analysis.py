#!/usr/bin/env python
"""Availability-trace analysis: reproduce the paper's Figure 1 view.

Generates a 7-day Entropia/SDSC-style volunteer trace (diurnal
occupancy + correlated lab-session bursts) and prints the percentage
of unavailable resources per monitored day, plus the synthetic
experiment traces' statistics (mean outage 409 s at a chosen rate).

Run:  python examples/trace_analysis.py
"""

import numpy as np

from repro.config import TraceConfig
from repro.traces import (
    EntropiaConfig,
    compute_stats,
    generate_cluster_traces,
    generate_week,
)


def main() -> None:
    print("== Figure-1 style production-trace synthesis ==")
    cfg = EntropiaConfig(n_nodes=40, n_days=7)
    for profile in generate_week(cfg, np.random.default_rng(42)):
        print(" ", profile.summary())

    print("\n== Synthetic experiment traces (paper VI) ==")
    for rate in (0.1, 0.3, 0.5):
        tc = TraceConfig(unavailability_rate=rate)
        traces = generate_cluster_traces(
            tc, 60, lambda i: np.random.default_rng(1000 + i)
        )
        stats = compute_stats(traces)
        print(f"  target rate {rate}: {stats}")

    print("\nThe Fig.-1 curves should wander between ~25% and ~95%")
    print("unavailable; the synthetic traces must hit their target rate")
    print("with mean outage ~409 s (the Entropia trace statistic).")


if __name__ == "__main__":
    main()
