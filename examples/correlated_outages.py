#!/usr/bin/env python
"""Correlated outages: why volatile-only replication breaks in bursts.

The paper warns that *"many machines in a computer lab will be occupied
simultaneously during a lab session"* (Section III) and that
*"handling large-scale correlated resource unavailability requires even
more replication"* (Section I).  This example makes that concrete:

1. generate "lab session" traces where most downtime arrives in
   correlated bursts, and show the burst depth independence can't reach;
2. run the same sort job with volatile-only (VO-3) vs hybrid-anchored
   (HA: one dedicated copy) intermediate data under those traces and
   compare job time and forced map re-executions.

Run:  python examples/correlated_outages.py     (~a minute)
"""

import numpy as np

from repro.analysis import prob_at_least_k_down
from repro.cluster import Cluster, Node, NodeKind
from repro.config import (
    ClusterConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import MoonSystem
from repro.dfs import ReplicationFactor
from repro.traces import (
    CorrelatedConfig,
    compute_stats,
    generate_correlated_traces,
    peak_simultaneous_down,
)
from repro.workloads import sort_spec

N_VOLATILE, N_DEDICATED, RATE = 30, 3, 0.4


def build_system(traces, seed=5) -> MoonSystem:
    """Assemble a MOON system over externally generated traces."""
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=N_VOLATILE, n_dedicated=N_DEDICATED),
        trace=TraceConfig(unavailability_rate=RATE),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=seed,
    )
    spec = NodeSpec()
    nodes = [Node(i, NodeKind.DEDICATED, spec) for i in range(N_DEDICATED)]
    nodes += [
        Node(N_DEDICATED + i, NodeKind.VOLATILE, spec, trace)
        for i, trace in enumerate(traces)
    ]
    return MoonSystem(config, cluster=Cluster(nodes))


def main() -> None:
    correlated = generate_correlated_traces(
        CorrelatedConfig(
            base=TraceConfig(unavailability_rate=RATE),
            n_groups=2,
            correlation_weight=0.8,
            session_mean=900.0,  # ~15-minute lab bursts
            session_sigma=200.0,
        ),
        N_VOLATILE,
        np.random.default_rng(17),
    )

    print("trace structure:")
    print(f"  {compute_stats(correlated)}")
    peak = peak_simultaneous_down(correlated)
    k = int(peak * N_VOLATILE)
    print(f"  observed peak simultaneous down: {peak:.0%}")
    print(
        f"  P(that deep a burst) if outages were independent: "
        f"{prob_at_least_k_down(N_VOLATILE, k, RATE):.2e}"
    )
    print()

    # Long enough (~7 clean minutes) that lab bursts land mid-job.
    base = sort_spec(n_maps=480, block_mb=16.0)
    configs = {
        "VO-3 (volatile only)": base.with_(
            intermediate_rf=ReplicationFactor(0, 3)
        ),
        "HA   (1 dedicated)  ": base.with_(
            intermediate_rf=ReplicationFactor(1, 1)
        ),
    }
    print(f"sort under lab-session outages ({N_VOLATILE}V + {N_DEDICATED}D):")
    for label, spec in configs.items():
        system = build_system(correlated)
        result = system.run_job(spec)
        out = f"{result.elapsed:,.0f} s" if result.succeeded else "DNF"
        print(
            f"  intermediate {label}: {out}  "
            f"(map re-executions: {result.metrics.map_reexecutions}, "
            f"fetch failures: {result.metrics.fetch_failures})"
        )
    print()
    print(
        "Reading: when a whole lab disappears at once, every volatile\n"
        "replica of a map output can vanish together, forcing map\n"
        "re-execution; one copy on a dedicated anchor rides the burst\n"
        "out (paper Sections I and III)."
    )


if __name__ == "__main__":
    main()
