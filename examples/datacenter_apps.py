#!/usr/bin/env python
"""Real MapReduce applications on the functional runtime.

The paper motivates volunteer-grid MapReduce with web search, machine
learning, bioinformatics and log analysis (Section II-B).  This example
actually runs one job from each area on :mod:`repro.localrt`, with the
fault injection that mirrors volunteer-node volatility — every job
survives a 20% per-attempt failure rate through Hadoop-style retries.

Run:  python examples/datacenter_apps.py
"""

import numpy as np

from repro.localrt import (
    FaultPlan,
    inverted_index,
    join,
    kmeans,
    kmer_count,
    word_count,
)

FAULTS = FaultPlan(map_failure_rate=0.2, reduce_failure_rate=0.2, seed=7)

DOCUMENTS = [
    "mapreduce on opportunistic environments",
    "volunteer computing harnesses idle desktops",
    "mapreduce simplifies parallel data processing",
    "desktops are volatile resources",
]


def web_search() -> None:
    out = inverted_index(DOCUMENTS, faults=FAULTS)
    idx = out.as_dict()
    print("== web search: inverted index ==")
    for word in ("mapreduce", "desktops", "volatile"):
        print(f"  {word!r} appears in documents {idx[word]}")
    print(f"  ({out.map_failures} map attempts lost to volatility, all retried)")


def log_analysis() -> None:
    out = word_count(DOCUMENTS, faults=FAULTS)
    top = sorted(out.pairs, key=lambda kv: -kv[1])[:3]
    print("== log analysis: word count ==")
    for word, n in top:
        print(f"  {word:<12} {n}")


def machine_learning() -> None:
    rng = np.random.default_rng(0)
    blob_a = rng.normal((0.0, 0.0), 0.4, size=(40, 2))
    blob_b = rng.normal((6.0, 6.0), 0.4, size=(40, 2))
    points = [tuple(p) for p in np.vstack([blob_a, blob_b])]
    centroids, iters = kmeans(points, k=2, seed=1, faults=FAULTS)
    print("== machine learning: k-means as chained MapReduce jobs ==")
    for i, c in enumerate(sorted(centroids)):
        print(f"  cluster {i}: centroid ({c[0]:.2f}, {c[1]:.2f})")
    print(f"  converged after {iters} MapReduce iterations")


def bioinformatics() -> None:
    sequences = ["ACGTACGTAC", "TTACGTTACG", "ACGTTTACGT"]
    out = kmer_count(sequences, k=4, faults=FAULTS)
    top = sorted(out.pairs, key=lambda kv: -kv[1])[:3]
    print("== bioinformatics: k-mer counting ==")
    for kmer, n in top:
        print(f"  {kmer} x{n}")


def relational() -> None:
    users = [(1, "ada"), (2, "grace"), (3, "edsger")]
    jobs_run = [(1, "sort"), (1, "wordcount"), (3, "grep")]
    out = join(users, jobs_run, faults=FAULTS)
    print("== relational: reduce-side join (user -> jobs) ==")
    for key, (name, job) in out.pairs:
        print(f"  user {key} ({name}) ran {job}")


def main() -> None:
    web_search()
    log_analysis()
    machine_learning()
    bioinformatics()
    relational()


if __name__ == "__main__":
    main()
