#!/usr/bin/env python
"""Word count that *really runs*: the functional MapReduce engine.

The simulator answers "how long does the job take on volatile nodes";
this example exercises the actual programming model (paper II-B) —
user Map and Reduce primitives over key-value pairs — including fault
injection with Hadoop's 4-attempt retry budget.

Run:  python examples/real_wordcount.py
"""

from collections import Counter

from repro.localrt import FaultPlan, run_mapreduce

TEXT = """\
MapReduce offers a flexible programming model for processing and
generating large data sets on dedicated resources where only a small
fraction of such resources are ever unavailable at any given time
In contrast when MapReduce is run on volunteer computing systems it
results in poor performance due to the volatility of the resources
MOON extends Hadoop with adaptive task and data scheduling algorithms
in order to offer reliable MapReduce services on a hybrid resource
architecture where volunteer computing systems are supplemented by a
small set of dedicated nodes
"""


def wc_map(_line_no, line):
    for word in line.lower().split():
        yield (word, 1)


def wc_reduce(word, counts):
    yield (word, sum(counts))


def main() -> None:
    records = [(i, line) for i, line in enumerate(TEXT.splitlines())]

    # A clean run...
    clean = run_mapreduce(wc_map, wc_reduce, records, n_reduces=4,
                          combiner=wc_reduce)
    # ...and one where 25% of task attempts lose their node mid-task.
    faulty = run_mapreduce(
        wc_map, wc_reduce, records, n_reduces=4, combiner=wc_reduce,
        faults=FaultPlan(map_failure_rate=0.25, reduce_failure_rate=0.25,
                         seed=3),
    )

    expected = Counter(TEXT.lower().split())
    assert clean.as_dict() == dict(expected)
    assert faulty.as_dict() == dict(expected)

    top = sorted(clean.pairs, key=lambda kv: (-kv[1], kv[0]))[:8]
    print("top words:")
    for word, count in top:
        print(f"  {word:<12}{count}")
    print(f"\nclean run : {clean.map_attempts} map attempts, "
          f"{clean.reduce_attempts} reduce attempts, 0 failures")
    print(f"faulty run: {faulty.map_attempts} map attempts "
          f"({faulty.map_failures} failed), "
          f"{faulty.reduce_attempts} reduce attempts "
          f"({faulty.reduce_failures} failed) - same answer")


if __name__ == "__main__":
    main()
