#!/usr/bin/env python
"""Replication study: what should happen to intermediate data?

Compares volatile-only replication (VO-Vk) against MOON's hybrid-aware
policy (HA-V1: one dedicated copy when possible + adaptive volatile
copies) on a scaled-down ``sort`` — the paper's Fig. 6 methodology.

Run:  python examples/replication_study.py [unavailability-rate]
"""

import sys

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.dfs import ReplicationFactor
from repro.workloads import scaled, sort_spec


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    policies = {
        "VO-V1": ReplicationFactor(0, 1),
        "VO-V3": ReplicationFactor(0, 3),
        "VO-V5": ReplicationFactor(0, 5),
        "HA-V1": ReplicationFactor(1, 1),
    }

    print(f"sort (quarter scale) on 30V+3D at unavailability {rate}\n")
    header = (f"{'policy':<8}{'job time':>10}{'map':>8}{'shuffle':>9}"
              f"{'killed maps':>13}")
    print(header)
    print("-" * len(header))
    for name, inter_rf in policies.items():
        config = SystemConfig(
            cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
            trace=TraceConfig(unavailability_rate=rate),
            scheduler=moon_scheduler_config(hybrid_aware=True),
            seed=11,
        )
        spec = scaled(sort_spec(n_maps=48), 0.25).with_(
            input_rf=ReplicationFactor(1, 3),
            output_rf=ReplicationFactor(1, 3),
            intermediate_rf=inter_rf,
        )
        result = moon_system(config).run_job(spec)
        p = result.profile
        time_s = f"{result.elapsed:.0f}s" if result.succeeded else "DNF"
        print(f"{name:<8}{time_s:>10}{p.avg_map_time:>7.1f}s"
              f"{p.avg_shuffle_time:>8.1f}s{p.killed_maps:>13}")

    print("\nExpected shape (paper Fig. 6 / Table II): VO-V1 suffers long")
    print("shuffles and many re-executed maps; more volatile copies help")
    print("then hurt (map-side replication cost); HA-V1 wins at high")
    print("rates by anchoring one copy on a dedicated node.")


if __name__ == "__main__":
    main()
