#!/usr/bin/env python
"""A day of multi-tenant traffic on one MOON deployment (service layer).

The paper's Section VIII leaves "scheduling and QoS issues of
concurrent MapReduce jobs" as future work; the service layer supplies
that missing front-end.  This walkthrough simulates a working day of
diurnal traffic — three tenants submitting a grep/word-count/sort mix
whose arrival rate follows the student-lab day/night rhythm — and
compares FIFO against earliest-deadline-first admission on identical
streams.

Run:  python examples/service_day.py
"""

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.service import ServiceConfig, diurnal_arrivals, sleep_catalog

HOUR = 3600.0


def build_system(seed: int = 11):
    """A volatile 24+2 cluster, 30% mean unavailability."""
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=24, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def serve_day(policy: str):
    """One 'day' (compressed to an 8h horizon) under one queue policy."""
    system = build_system()
    # Drawing the stream from the simulation's named RNG keeps it
    # identical across policies: same seed, same arrivals, same traces.
    arrivals = diurnal_arrivals(
        system.sim.rng("service/arrivals"),
        peak_rate_per_hour=26.0,
        horizon=8 * HOUR,
        catalog=sleep_catalog(),
        period=8 * HOUR,  # compress the day/night cycle into the horizon
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy=policy,
            max_in_flight=2,
            max_queue_depth=48,
            horizon=8 * HOUR,
            drain_limit=4 * HOUR,
        ),
        pattern="diurnal",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


def main() -> None:
    reports = {policy: serve_day(policy) for policy in ("fifo", "edf")}
    for policy, report in reports.items():
        print(report.render())
        print()

    fifo, edf = reports["fifo"].overall, reports["edf"].overall
    print(f"deadline-miss rate: fifo={fifo.miss_rate:.1%} "
          f"edf={edf.miss_rate:.1%}")
    print(f"goodput (jobs/h meeting their SLO): fifo={fifo.goodput_per_hour:.2f} "
          f"edf={edf.goodput_per_hour:.2f}")
    assert edf.deadline_misses <= fifo.deadline_misses
    print("\nOn the same arrival stream and the same outage traces, EDF")
    print("serves tight-SLO interactive jobs ahead of loose-SLO batch")
    print("jobs during the midday backlog, cutting deadline misses.")


if __name__ == "__main__":
    main()
