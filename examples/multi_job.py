#!/usr/bin/env python
"""Concurrent jobs on one MOON deployment (paper VIII future work).

The paper evaluates single jobs and names concurrent-job QoS as future
work; the runtime here already schedules multiple jobs by priority, so
this example runs a high-priority short job next to a low-priority
long one and shows the short job is barely delayed.

Run:  python examples/multi_job.py
"""

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.workloads import sleep_spec


def main() -> None:
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=20, n_dedicated=2),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_scheduler_config(),
        seed=5,
    )
    system = moon_system(config)

    urgent = sleep_spec(5.0, 5.0, n_maps=20, n_reduces=4).with_(name="urgent")
    batch = sleep_spec(30.0, 20.0, n_maps=120, n_reduces=8).with_(name="batch")

    batch_job = system.submit(batch, priority=0)
    urgent_job = system.submit(urgent, priority=10)
    system.sim.run(
        until=8 * 3600.0,
        stop_when=lambda: batch_job.finished and urgent_job.finished,
    )

    for job in (urgent_job, batch_job):
        print(f"{job.spec.name:<8} {job.state.value:<10} "
              f"{job.elapsed:7.0f}s  maps={len(job.maps)} "
              f"reduces={job.n_reduces}")

    assert urgent_job.elapsed < batch_job.elapsed
    print("\nThe urgent job finished first despite sharing the cluster -")
    print("the JobTracker offers slots to jobs in priority order.")


if __name__ == "__main__":
    main()
