#!/usr/bin/env python
"""SLO-aware preemption: rescuing tight jobs stuck behind batch work.

Queue policies reorder work only *before* admission — once loose-SLO
batch jobs hold the in-flight window, a tight-SLO arrival can only
wait.  This walkthrough builds exactly that squeeze on a small
cluster, then serves the identical stream three times:

  off           plain EDF — the tight jobs strand and miss
  deprioritise  victims drop to the back of the scheduler walk;
                slots free only as their tasks finish
  pause         victims additionally suspend under sustained
                pressure: compute progress is banked, their slots
                and in-flight seats release immediately, and they
                resume when the pressure clears

Run:  python examples/preempt_pressure.py
"""

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.service import (
    MoonService,
    PreemptConfig,
    ServiceConfig,
    render_preempt_events,
    replay_arrivals,
)
from repro.workloads import sleep_spec

HOUR = 3600.0


def build_system(seed: int = 3):
    """A small churn-free cluster: the squeeze, not the weather."""
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=8, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def pressured_stream():
    """Two long batch jobs grab both in-flight seats, then two
    interactive jobs with five-minute SLOs arrive behind them."""
    batch = sleep_spec(300.0, 120.0, n_maps=12, n_reduces=2).with_(
        name="batch"
    )
    tight = sleep_spec(20.0, 5.0, n_maps=4, n_reduces=1).with_(
        name="interactive"
    )
    return replay_arrivals(
        [
            (0.0, "etl", batch, 4 * HOUR),
            (0.0, "etl", batch, 4 * HOUR),
            (60.0, "web", tight, 300.0),
            (70.0, "web", tight, 300.0),
        ]
    )


def serve(mode: str):
    system = build_system()
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=2,
            horizon=1 * HOUR,
            preempt=PreemptConfig(mode=mode),
        ),
        pressured_stream(),
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report


def main() -> None:
    for mode in ("off", "deprioritise", "pause"):
        report = serve(mode)
        print(report.render())
        if report.preempt_events:
            print()
            print(render_preempt_events(report.preempt_events))
        print()
    print(
        "Same stream, same seed: pause mode suspends the batch jobs "
        "the moment the interactive backlog is projected to miss, "
        "admits the tight work into the freed seats, and resumes the "
        "batch jobs afterwards — every job still completes, so the "
        "only cost is batch latency."
    )


if __name__ == "__main__":
    main()
