#!/usr/bin/env python
"""Regenerate the committed sample workload traces.

Writes ``benchmarks/data/google_cluster_sample.csv`` and
``benchmarks/data/hadoop_jobhistory_sample.json`` from the seeded
generators in :mod:`repro.workload_traces.samples`.  The outputs are a
pure function of the hard-coded seeds, and
``tests/test_workload_traces.py`` asserts the committed bytes match a
regeneration — run this (and commit the diff) only when the sample
*shape* deliberately changes.

Usage:  PYTHONPATH=src python tools/make_workload_samples.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.workload_traces import load_workload_trace, write_samples  # noqa: E402

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "data"


def main() -> int:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for path in write_samples(DATA_DIR):
        trace = load_workload_trace(path)
        print(f"wrote {path}: {len(trace)} jobs over "
              f"{trace.horizon / 3600.0:.1f} h")
    return 0


if __name__ == "__main__":
    sys.exit(main())
