#!/usr/bin/env python
"""Metric-family lock-step checks, run by the CI docs job.

Metric names are a contract between three copies: the instruments the
code actually creates (``metrics.counter("dfs/...")`` and friends),
the family registry (``repro.obs.metrics.METRIC_FAMILIES``), and the
family table in docs/ARCHITECTURE.md.  This keeps them in lock-step:

1. Every family emitted by code (scanned from ``.counter(`` /
   ``.gauge(`` / ``.histogram(`` literals, f-string prefixes and
   ``CounterBag`` prefixes under ``src/``) is listed in
   ``METRIC_FAMILIES`` — no undocumented families.
2. Every family in ``METRIC_FAMILIES`` is emitted by code — no
   zombie entries surviving a refactor.
3. The docs family table lists exactly the registry's families, with
   the registry's exact one-line description.

Exit code 0 when clean; 1 with a line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
SRC = REPO / "src"

sys.path.insert(0, str(SRC))

from repro.obs.metrics import METRIC_FAMILIES  # noqa: E402

#: Instrument creations with a literal (or f-string-prefixed) name:
#: ``.counter("dfs/...")``, ``.histogram(\n    f"blame/{cat}_...")``.
#: DOTALL-free but the name may sit on the next line, so match across
#: whitespace explicitly.
INSTRUMENT_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*f?\"([a-z_]+)/"
)
#: ``CounterBag(<registry>, "dfs/")`` prefix adapters.
BAG_RE = re.compile(r"CounterBag\(\s*[^,()]+,\s*\"([a-z_]+)/\"")
#: Docs table rows: ``| `family` | description |``.
ROW_RE = re.compile(
    r"^\|\s*`(?P<family>[a-z_]+)`\s*\|\s*(?P<desc>[^|]+?)\s*\|\s*$",
    re.MULTILINE,
)


def scan_code_families() -> dict:
    """family -> sorted list of files that emit under it."""
    found: dict = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for regex in (INSTRUMENT_RE, BAG_RE):
            for m in regex.finditer(text):
                found.setdefault(m.group(1), set()).add(
                    str(path.relative_to(REPO))
                )
    return {fam: sorted(paths) for fam, paths in sorted(found.items())}


def check_code_vs_registry(code: dict, errors: list) -> None:
    for family, files in code.items():
        if family not in METRIC_FAMILIES:
            errors.append(
                f"family `{family}` emitted by {', '.join(files)} "
                "but missing from METRIC_FAMILIES"
            )
    for family in METRIC_FAMILIES:
        if family not in code:
            errors.append(
                f"METRIC_FAMILIES lists `{family}` but nothing under "
                "src/ emits it"
            )


def check_docs_table(text: str, errors: list) -> None:
    # Only rows between the metric-families heading and the next
    # heading, so other two-column tables in the file don't bleed in.
    section = re.search(
        r"### Metric families\n(.*?)(?=\n#|\Z)", text, re.DOTALL
    )
    if not section:
        errors.append(
            "ARCHITECTURE.md: no '### Metric families' section"
        )
        return
    rows = {
        m.group("family"): m.group("desc")
        for m in ROW_RE.finditer(section.group(1))
        if m.group("family") != "family"  # header row guard
    }
    if not rows:
        errors.append("ARCHITECTURE.md: metric-family table not found")
        return
    for family, desc in METRIC_FAMILIES.items():
        if family not in rows:
            errors.append(
                f"family `{family}` missing from the docs table"
            )
        elif rows[family] != desc:
            errors.append(
                f"family `{family}`: docs say {rows[family]!r}, "
                f"METRIC_FAMILIES says {desc!r}"
            )
    for family in rows:
        if family not in METRIC_FAMILIES:
            errors.append(
                f"docs table lists `{family}`, not in METRIC_FAMILIES"
            )


def main() -> int:
    errors: list = []
    code = scan_code_families()
    check_code_vs_registry(code, errors)
    if not ARCHITECTURE.exists():
        errors.append(f"missing file: {ARCHITECTURE.relative_to(REPO)}")
    else:
        check_docs_table(
            ARCHITECTURE.read_text(encoding="utf-8"), errors
        )
    for err in errors:
        print(err)
    if not errors:
        print(
            f"metric families: {len(METRIC_FAMILIES)} documented, "
            f"{len(code)} emitted, in lock-step"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
