#!/usr/bin/env python
"""Journal schema checks, run by the CI docs job.

The write-ahead journal is a wire format: its record registry
(``repro.dfs.journal.RECORD_TYPES``), its schema version, and the
record table in docs/ARCHITECTURE.md are three copies of one contract.
This keeps them in lock-step:

1. The schema version stated in ARCHITECTURE.md ("journal schema
   version: **N**") equals ``SCHEMA_VERSION``.
2. The docs record table lists exactly the registry's record types,
   with exactly the registry's payload fields and durability class
   (synchronous vs group-commit).
3. Every record type round-trips through encode/decode with a
   representative payload, and the line's field order is stable
   (type first, then payload fields in schema order).

Exit code 0 when clean; 1 with a line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"

sys.path.insert(0, str(REPO / "src"))

from repro.dfs.journal import (  # noqa: E402
    RECORD_TYPES,
    SCHEMA_VERSION,
    JournalRecord,
)

VERSION_RE = re.compile(
    r"journal schema\s*\n?version:\s*\*\*(\d+)\*\*", re.IGNORECASE
)
ROW_RE = re.compile(
    r"^\|\s*`(?P<type>[a-z_]+)`\s*"
    r"\|\s*`(?P<payload>[^`]+)`\s*"
    r"\|\s*(?P<durability>synchronous|group-commit)\s*\|",
    re.MULTILINE,
)

#: A representative payload per record type for the round-trip check.
SAMPLES = {
    "create": {
        "path": "/x", "kind": "reliable", "d": 1, "v": 3,
        "sizes": [64.0, 8.0], "created_at": 12.5,
    },
    "delete": {"path": "/x"},
    "convert": {"path": "/x"},
    "adjust": {"path": "/x", "v": 4},
    "node_add": {"node": 7, "dedicated": True, "capacity_mb": 1024.0},
    "node_drain": {"node": 7},
    "node_retire": {"node": 7},
    "add": {"path": "/x", "i": 0, "node": 7},
    "drop": {"path": "/x", "i": 0, "node": 7},
    "want": {"path": "/x", "i": 0},
}


def check_schema_version(text: str, errors: list) -> None:
    m = VERSION_RE.search(text)
    if not m:
        errors.append(
            "ARCHITECTURE.md: no 'journal schema version: **N**' statement"
        )
        return
    documented = int(m.group(1))
    if documented != SCHEMA_VERSION:
        errors.append(
            f"schema version drift: docs say {documented}, "
            f"SCHEMA_VERSION is {SCHEMA_VERSION}"
        )


def check_record_table(text: str, errors: list) -> None:
    rows = {
        m.group("type"): (
            m.group("durability") == "synchronous",
            tuple(
                f.strip() for f in m.group("payload").split(",")
            ),
        )
        for m in ROW_RE.finditer(text)
    }
    if not rows:
        errors.append("ARCHITECTURE.md: journal record table not found")
        return
    for rtype, (sync, fields) in RECORD_TYPES.items():
        if rtype not in rows:
            errors.append(f"record `{rtype}` missing from the docs table")
            continue
        doc_sync, doc_fields = rows[rtype]
        if doc_sync != sync:
            errors.append(
                f"record `{rtype}`: docs say "
                f"{'synchronous' if doc_sync else 'group-commit'}, "
                f"registry says "
                f"{'synchronous' if sync else 'group-commit'}"
            )
        if doc_fields != fields:
            errors.append(
                f"record `{rtype}`: docs payload {doc_fields} != "
                f"registry payload {fields}"
            )
    for rtype in rows:
        if rtype not in RECORD_TYPES:
            errors.append(
                f"docs table lists `{rtype}`, not in RECORD_TYPES"
            )


def check_round_trip(errors: list) -> None:
    for rtype, (_, fields) in RECORD_TYPES.items():
        sample = SAMPLES.get(rtype)
        if sample is None:
            errors.append(f"no round-trip sample for record `{rtype}`")
            continue
        if set(sample) != set(fields):
            errors.append(
                f"sample for `{rtype}` has fields {sorted(sample)}, "
                f"registry wants {sorted(fields)}"
            )
            continue
        rec = JournalRecord(rtype, dict(sample))
        line = rec.encode()
        back = JournalRecord.decode(line)
        if back.type != rec.type or back.payload != rec.payload:
            errors.append(f"record `{rtype}` does not round-trip: {line}")
        keys = list(__import__("json").loads(line))
        if keys != ["t"] + list(fields):
            errors.append(
                f"record `{rtype}` field order unstable on the wire: {keys}"
            )


def main() -> int:
    errors: list = []
    if not ARCHITECTURE.exists():
        print(f"missing file: {ARCHITECTURE.relative_to(REPO)}")
        return 1
    text = ARCHITECTURE.read_text(encoding="utf-8")
    check_schema_version(text, errors)
    check_record_table(text, errors)
    check_round_trip(errors)
    for err in errors:
        print(err)
    if not errors:
        print(
            f"journal schema v{SCHEMA_VERSION}: "
            f"{len(RECORD_TYPES)} record types documented, "
            "round-trip clean"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
