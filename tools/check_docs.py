#!/usr/bin/env python
"""Docs health checks, run by the CI docs job.

1. Every markdown link in docs/ARCHITECTURE.md resolves: relative
   file targets exist, and intra-document ``#anchors`` match a
   heading's GitHub-style slug.
2. Every package under ``src/repro/`` (every ``__init__.py``) carries
   a non-empty module docstring — and so does every *module*: the
   per-package coverage extends file by file, so a new subsystem
   (e.g. ``workload_traces``) cannot land half-documented.
3. docs/ARCHITECTURE.md mentions every package under ``src/repro/``
   (the "covers every layer" guarantee).

Exit code 0 when clean; 1 with a line per violation otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
SRC = REPO / "src" / "repro"

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop
    everything that is not alphanumeric, dash or underscore."""
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9\-_]", "", slug)


def markdown_anchors(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    return {github_slug(m.group(2)) for m in HEADING_RE.finditer(text)}


def check_architecture_links(errors: list) -> None:
    if not ARCHITECTURE.exists():
        errors.append(f"missing file: {ARCHITECTURE.relative_to(REPO)}")
        return
    text = ARCHITECTURE.read_text(encoding="utf-8")
    own_anchors = markdown_anchors(ARCHITECTURE)
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external links are not checked offline
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (ARCHITECTURE.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"ARCHITECTURE.md: broken link target {target!r}"
                )
                continue
            # Deep links into other markdown docs: check their headings.
            if anchor and resolved.suffix == ".md":
                if anchor not in markdown_anchors(resolved):
                    errors.append(
                        f"ARCHITECTURE.md: unknown anchor in {target!r}"
                    )
        elif anchor and anchor not in own_anchors:
            errors.append(
                f"ARCHITECTURE.md: unknown anchor {('#' + anchor)!r}"
            )


def package_inits() -> list:
    return sorted(SRC.glob("**/__init__.py"))


def package_modules() -> list:
    return sorted(SRC.glob("**/*.py"))


def check_package_docstrings(errors: list) -> None:
    for module in package_modules():
        rel = module.relative_to(REPO)
        tree = ast.parse(module.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            errors.append(f"{rel}: missing module docstring")


def check_architecture_coverage(errors: list) -> None:
    if not ARCHITECTURE.exists():
        return
    text = ARCHITECTURE.read_text(encoding="utf-8")
    for init in package_inits():
        pkg = init.parent.relative_to(SRC)
        if str(pkg) == ".":
            continue  # repro itself
        if f"repro/{pkg}/" not in text:
            errors.append(
                f"ARCHITECTURE.md: package src/repro/{pkg}/ not covered"
            )


def main() -> int:
    errors: list = []
    check_architecture_links(errors)
    check_package_docstrings(errors)
    check_architecture_coverage(errors)
    if errors:
        for err in errors:
            print(f"[docs] {err}")
        print(f"[docs] {len(errors)} problem(s)")
        return 1
    n_links = len(LINK_RE.findall(
        ARCHITECTURE.read_text(encoding="utf-8")
    ))
    print(
        f"[docs] OK: {n_links} links resolve, "
        f"{len(package_modules())} module docstrings present "
        f"across {len(package_inits())} packages, "
        "every package covered by ARCHITECTURE.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
