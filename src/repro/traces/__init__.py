"""Availability traces (S2): the paper's synthetic volunteer-node
outage model, pluggable outage-length laws, correlated "lab session"
outages, an Entropia/SDSC-style generator for Figure 1, persistence,
and statistics."""

from .correlated import (
    CorrelatedConfig,
    generate_correlated_traces,
    merge_intervals,
    peak_simultaneous_down,
)
from .distributions import (
    DISTRIBUTIONS,
    ExponentialOutages,
    LognormalOutages,
    NormalOutages,
    OutageDistribution,
    ParetoOutages,
    WeibullOutages,
    distribution_names,
    make_distribution,
)
from .entropia import (
    DayProfile,
    EntropiaConfig,
    generate_entropia_day,
    generate_week,
    sample_day_profile,
)
from .fitting import FitResult, fit_outages, fit_report
from .generator import empirical_rate, generate_cluster_traces, generate_trace
from .io import (
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
)
from .model import AvailabilityTrace, Interval, availability_matrix
from .stats import TraceStats, compute_stats, measured_unavailability

__all__ = [
    "AvailabilityTrace",
    "Interval",
    "availability_matrix",
    "generate_trace",
    "generate_cluster_traces",
    "empirical_rate",
    "OutageDistribution",
    "NormalOutages",
    "LognormalOutages",
    "WeibullOutages",
    "ExponentialOutages",
    "ParetoOutages",
    "DISTRIBUTIONS",
    "make_distribution",
    "distribution_names",
    "CorrelatedConfig",
    "generate_correlated_traces",
    "merge_intervals",
    "peak_simultaneous_down",
    "EntropiaConfig",
    "DayProfile",
    "generate_entropia_day",
    "generate_week",
    "sample_day_profile",
    "TraceStats",
    "compute_stats",
    "measured_unavailability",
    "FitResult",
    "fit_outages",
    "fit_report",
    "save_traces_csv",
    "load_traces_csv",
    "save_traces_json",
    "load_traces_json",
]
