"""Entropia/SDSC-style production-trace synthesis (paper Figure 1).

Figure 1 of the paper shows, for each of 7 working days (9AM-5PM), the
percentage of unavailable resources sampled in 10-minute intervals on a
production volunteer system at SDSC [Kondo et al. 2004].  The published
characteristics we mimic:

* average per-node unavailability around 0.4,
* strong diurnal structure (monitored working hours; lab occupancy
  rises mid-day),
* large-scale correlated outages - up to ~90% of resources
  simultaneously unavailable, rarely below ~25%,
* mean outage interval 409 seconds.

We model each day with a smooth base occupancy profile plus correlated
"lab session" bursts that knock out a random subset of nodes together,
then sample per-node on/off processes modulated by that profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..config import HOUR, MEAN_OUTAGE_SECONDS
from ..errors import TraceError
from .model import AvailabilityTrace


@dataclass(frozen=True)
class EntropiaConfig:
    """Knobs for the Figure-1 style generator."""

    n_nodes: int = 40
    n_days: int = 7
    day_start_hour: float = 9.0
    day_end_hour: float = 17.0
    #: Mean of the base (uncorrelated) unavailability level.
    base_rate: float = 0.35
    #: Daily peak amplitude added mid-day (lab occupancy).
    diurnal_amplitude: float = 0.25
    #: Expected number of correlated bursts per day ("lab sessions").
    bursts_per_day: float = 2.0
    #: Fraction of nodes taken down by a burst.
    burst_fraction: float = 0.45
    #: Burst length (seconds), mean/sigma.
    burst_mean: float = 45 * 60.0
    burst_sigma: float = 15 * 60.0
    mean_outage: float = MEAN_OUTAGE_SECONDS

    def validate(self) -> None:
        if self.n_nodes < 1 or self.n_days < 1:
            raise TraceError("n_nodes and n_days must be >= 1")
        if not 0 <= self.base_rate < 1:
            raise TraceError("base_rate must be in [0, 1)")
        if not self.day_start_hour < self.day_end_hour <= 24:
            raise TraceError("bad working-day window")


@dataclass(frozen=True)
class DayProfile:
    """Sampled unavailability percentage of one day, Fig.-1 style."""

    day: int
    times: np.ndarray  # seconds since day start (10-min grid)
    pct_unavailable: np.ndarray  # 0..100

    def summary(self) -> str:
        return (
            f"DAY{self.day + 1}: mean {self.pct_unavailable.mean():5.1f}% "
            f"min {self.pct_unavailable.min():5.1f}% "
            f"max {self.pct_unavailable.max():5.1f}%"
        )


def _diurnal_level(cfg: EntropiaConfig, t: float, day_len: float) -> float:
    """Base unavailability probability at offset ``t`` into the day."""
    # A raised-cosine bump peaking mid-day, matching lab-hour occupancy.
    x = t / day_len  # 0..1 across the monitored window
    bump = 0.5 * (1.0 - np.cos(2.0 * np.pi * x))  # 0 at edges, 1 mid-day
    return min(0.97, cfg.base_rate + cfg.diurnal_amplitude * bump)


def generate_entropia_day(
    cfg: EntropiaConfig, rng: np.random.Generator, day: int
) -> List[AvailabilityTrace]:
    """Per-node traces for one monitored day (window-relative times)."""
    cfg.validate()
    day_len = (cfg.day_end_hour - cfg.day_start_hour) * HOUR

    # Correlated bursts: intervals + node subsets.
    n_bursts = rng.poisson(cfg.bursts_per_day)
    bursts = []
    for _ in range(n_bursts):
        start = rng.uniform(0.0, day_len)
        length = max(5 * 60.0, rng.normal(cfg.burst_mean, cfg.burst_sigma))
        members = rng.random(cfg.n_nodes) < cfg.burst_fraction
        bursts.append((start, min(start + length, day_len), members))

    traces: List[AvailabilityTrace] = []
    for node in range(cfg.n_nodes):
        intervals = []
        t = 0.0
        # Alternating renewal process modulated by the diurnal level.
        while t < day_len:
            p = _diurnal_level(cfg, t, day_len)
            # Mean up time chosen so the duty cycle matches p.
            mean_up = cfg.mean_outage * (1.0 - p) / max(p, 1e-6)
            up = rng.exponential(max(mean_up, 30.0))
            t += up
            if t >= day_len:
                break
            down = max(30.0, rng.normal(cfg.mean_outage, cfg.mean_outage / 3))
            intervals.append((t, min(t + down, day_len)))
            t += down
        # Overlay correlated bursts for this node's membership.
        for start, end, members in bursts:
            if members[node]:
                intervals.append((start, end))
        traces.append(AvailabilityTrace(_merge(intervals), day_len))
    return traces


def _merge(intervals: Sequence[tuple]) -> List[tuple]:
    """Merge possibly overlapping intervals into a disjoint sorted list."""
    out: List[list] = []
    for s, e in sorted(intervals):
        if out and s <= out[-1][1]:
            out[-1][1] = max(out[-1][1], e)
        else:
            out.append([s, e])
    return [(s, e) for s, e in out if e > s]


def sample_day_profile(
    traces: Sequence[AvailabilityTrace], day: int, sample_interval: float = 600.0
) -> DayProfile:
    """Percentage of unavailable nodes on a ``sample_interval`` grid,
    i.e. one Fig.-1 curve.  Each sample averages availability over the
    10-minute window, as the paper's caption specifies."""
    if not traces:
        raise TraceError("no traces to sample")
    duration = traces[0].duration
    edges = np.arange(0.0, duration + 1e-9, sample_interval)
    times = (edges[:-1] + edges[1:]) / 2.0
    # Sub-sample each window at 1-minute resolution and average.
    pct = np.empty(len(times))
    for j, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        probes = np.arange(lo, hi, 60.0) + 30.0
        down = [
            np.mean([0.0 if tr.is_available(float(t)) else 1.0 for t in probes])
            for tr in traces
        ]
        pct[j] = 100.0 * float(np.mean(down))
    return DayProfile(day=day, times=times, pct_unavailable=pct)


def generate_week(
    cfg: EntropiaConfig, rng: np.random.Generator
) -> List[DayProfile]:
    """Seven Fig.-1 curves (one per monitored day)."""
    profiles = []
    for day in range(cfg.n_days):
        traces = generate_entropia_day(cfg, rng, day)
        profiles.append(sample_day_profile(traces, day))
    return profiles
