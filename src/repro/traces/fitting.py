"""Fitting outage-length distributions to observed traces.

The paper's ref [15] (Javadi et al., MASCOTS'09) mines real volunteer
availability traces for the statistical family that best describes
them.  This module implements that step for our trace artifacts: given
observed outage lengths (e.g. from :meth:`AvailabilityTrace.
outage_lengths`, or a production log), fit every registered family and
rank by AIC, so users can calibrate :class:`~repro.config.TraceConfig`
from their own environment:

>>> lengths = np.concatenate([t.outage_lengths() for t in traces])
>>> best = fit_outages(lengths)[0]
>>> cfg = TraceConfig(distribution=best.name, mean_outage=best.mean,
...                   outage_sigma=best.sigma)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats

from ..errors import TraceError


@dataclass(frozen=True)
class FitResult:
    """One family's fit to the observed outage lengths."""

    name: str
    #: Linear-scale moments, directly usable in TraceConfig.
    mean: float
    sigma: float
    log_likelihood: float
    n_params: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_params - 2.0 * self.log_likelihood


def _loglik(dist, data: np.ndarray) -> float:
    pdf = dist.pdf(data)
    if np.any(pdf <= 0) or not np.all(np.isfinite(pdf)):
        return -np.inf
    return float(np.log(pdf).sum())


def fit_outages(lengths: Sequence[float]) -> List[FitResult]:
    """Fit every family to positive outage lengths; ranked by AIC.

    Families mirror :mod:`repro.traces.distributions`: normal (the
    paper's generator), log-normal, Weibull, exponential and Pareto.
    Fits are maximum-likelihood via scipy (location pinned at 0 for
    the positive-support families).
    """
    data = np.asarray(list(lengths), dtype=float)
    if data.size < 3:
        raise TraceError("need at least 3 outage lengths to fit")
    if np.any(data <= 0):
        raise TraceError("outage lengths must be positive")

    results: List[FitResult] = []
    mean, sigma = float(data.mean()), float(data.std(ddof=0))

    # normal — MLE is the sample moments.
    results.append(FitResult(
        "normal", mean, sigma,
        _loglik(stats.norm(mean, max(sigma, 1e-12)), data), 2,
    ))

    # lognormal — MLE on log-moments.
    logs = np.log(data)
    mu, s = float(logs.mean()), float(max(logs.std(ddof=0), 1e-12))
    ln = stats.lognorm(s, scale=np.exp(mu))
    results.append(FitResult(
        "lognormal", float(ln.mean()), float(ln.std()),
        _loglik(ln, data), 2,
    ))

    # weibull — scipy MLE with location pinned at 0.
    try:
        k, _loc, scale = stats.weibull_min.fit(data, floc=0)
        wb = stats.weibull_min(k, scale=scale)
        results.append(FitResult(
            "weibull", float(wb.mean()), float(wb.std()),
            _loglik(wb, data), 2,
        ))
    except Exception:  # pragma: no cover - scipy fit corner cases
        pass

    # exponential — MLE scale is the sample mean.
    ex = stats.expon(scale=mean)
    results.append(FitResult("exponential", mean, mean, _loglik(ex, data), 1))

    # pareto — MLE with xm = min(data).
    xm = float(data.min())
    alpha = data.size / float(np.log(data / xm).sum() or 1e-12)
    pa = stats.pareto(alpha, scale=xm)
    p_mean = float(pa.mean()) if alpha > 1 else float("inf")
    p_sigma = float(pa.std()) if alpha > 2 else float("inf")
    results.append(FitResult(
        "pareto", p_mean, p_sigma, _loglik(pa, data), 2,
    ))

    results.sort(key=lambda r: r.aic)
    return results


def fit_report(results: Sequence[FitResult]) -> str:
    """Ranked text table of fits (best first)."""
    lines = [
        f"{'family':<12} {'mean':>9} {'sigma':>9} {'logL':>12} {'AIC':>12}",
    ]
    for r in results:
        sig = f"{r.sigma:9.1f}" if np.isfinite(r.sigma) else "      inf"
        mean = f"{r.mean:9.1f}" if np.isfinite(r.mean) else "      inf"
        lines.append(
            f"{r.name:<12} {mean} {sig} {r.log_likelihood:>12.1f} "
            f"{r.aic:>12.1f}"
        )
    return "\n".join(lines)
