"""Persisting availability traces.

The paper replayed pre-generated trace files on every node ("a
monitoring process on each node reads in the assigned availability
trace", Section VI).  This module provides that artifact format:

* **CSV** — one row per outage: ``node,start,end`` with a duration
  header comment.  Human-diffable; what a monitoring daemon would read.
* **JSON** — a single document with metadata, for programmatic reuse.

Both round-trip exactly (floats serialised with ``repr`` precision).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Union

from ..errors import TraceError
from .model import AvailabilityTrace

PathLike = Union[str, "os.PathLike[str]"]

_CSV_HEADER = "node,start,end"


def save_traces_csv(path: PathLike, traces: Sequence[AvailabilityTrace]) -> None:
    """Write a trace set as CSV (``# duration=...`` comment + rows)."""
    if not traces:
        raise TraceError("no traces to save")
    duration = traces[0].duration
    if any(t.duration != duration for t in traces):
        raise TraceError("traces must share one duration")
    lines = [f"# duration={duration!r}", _CSV_HEADER]
    for node, trace in enumerate(traces):
        for iv in trace:
            lines.append(f"{node},{iv.start!r},{iv.end!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def load_traces_csv(path: PathLike) -> List[AvailabilityTrace]:
    """Read a trace set written by :func:`save_traces_csv`."""
    duration = None
    rows: Dict[int, List[tuple]] = {}
    max_node = -1
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "duration=" in line:
                    duration = float(line.split("duration=", 1)[1])
                continue
            if line == _CSV_HEADER:
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise TraceError(f"{path}:{lineno}: expected 3 fields")
            try:
                node, start, end = int(parts[0]), float(parts[1]), float(parts[2])
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from None
            rows.setdefault(node, []).append((start, end))
            max_node = max(max_node, node)
    if duration is None:
        raise TraceError(f"{path}: missing '# duration=' header")
    return [
        AvailabilityTrace(rows.get(node, []), duration)
        for node in range(max_node + 1)
    ]


def save_traces_json(path: PathLike, traces: Sequence[AvailabilityTrace]) -> None:
    """Write a trace set as a single JSON document."""
    if not traces:
        raise TraceError("no traces to save")
    duration = traces[0].duration
    if any(t.duration != duration for t in traces):
        raise TraceError("traces must share one duration")
    doc = {
        "format": "repro-availability-traces",
        "version": 1,
        "duration": duration,
        "nodes": [
            [[iv.start, iv.end] for iv in trace] for trace in traces
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def load_traces_json(path: PathLike) -> List[AvailabilityTrace]:
    """Read a trace set written by :func:`save_traces_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != "repro-availability-traces":
        raise TraceError(f"{path}: not a trace document")
    duration = float(doc["duration"])
    return [
        AvailabilityTrace([(float(s), float(e)) for s, e in node], duration)
        for node in doc["nodes"]
    ]
