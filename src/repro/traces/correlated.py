"""Correlated resource unavailability (paper Section III).

The paper motivates the dedicated anchor with *"large-scale, correlated
resource inaccessibility can be normal ... many machines in a computer
lab will be occupied simultaneously during a lab session"*, and Figure 1
shows up to 90% of nodes simultaneously unavailable.  The independent
per-node generator in :mod:`repro.traces.generator` cannot produce such
bursts, so this module adds a two-layer model:

* **group events** — "lab sessions": at Poisson arrival times, a whole
  node *group* goes down together for one drawn session length;
* **background noise** — each node additionally suffers independent
  outages per the paper's base model.

The generator targets a total unavailability rate split between the two
layers by ``correlation_weight`` (0 = fully independent, 1 = all
downtime arrives in group sessions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from ..config import TraceConfig
from ..errors import TraceError
from .distributions import make_distribution
from .generator import generate_trace
from .model import AvailabilityTrace


@dataclass(frozen=True)
class CorrelatedConfig:
    """Parameters of the correlated-outage model.

    The total per-node unavailable fraction is
    ``base.unavailability_rate``; a ``correlation_weight`` share of it
    is delivered through simultaneous group sessions and the rest
    through independent background outages.
    """

    base: TraceConfig = TraceConfig()
    #: Number of node groups ("labs"); nodes are assigned round-robin.
    n_groups: int = 4
    #: Share of downtime delivered by group sessions, in [0, 1].
    correlation_weight: float = 0.5
    #: Mean and spread of a group session length (seconds).  Defaults
    #: follow a class-period intuition: ~50 minutes.
    session_mean: float = 3000.0
    session_sigma: float = 600.0
    #: Fraction of a group's nodes captured by each session (a lab
    #: session rarely occupies literally every machine).
    participation: float = 0.9

    def validate(self) -> None:
        self.base.validate()
        if self.n_groups < 1:
            raise TraceError("n_groups must be >= 1")
        if not 0.0 <= self.correlation_weight <= 1.0:
            raise TraceError("correlation_weight must be in [0, 1]")
        if self.session_mean <= 0 or self.session_sigma < 0:
            raise TraceError("bad session length parameters")
        if not 0.0 < self.participation <= 1.0:
            raise TraceError("participation must be in (0, 1]")


def generate_correlated_traces(
    config: CorrelatedConfig, n_nodes: int, rng: np.random.Generator
) -> List[AvailabilityTrace]:
    """Traces for ``n_nodes`` volatile nodes with correlated sessions.

    Each node's final trace is the union of its group's session
    intervals (when it participates) and its independent background
    trace; overlaps are merged.  The realised per-node rate therefore
    lands near, not exactly at, the configured target — callers needing
    the exact figure should measure with
    :func:`repro.traces.empirical_rate`.
    """
    config.validate()
    if n_nodes < 0:
        raise TraceError("n_nodes must be non-negative")
    if n_nodes == 0:
        return []

    base = config.base
    duration = base.duration
    rate = base.unavailability_rate
    if rate == 0.0:
        return [AvailabilityTrace.always_available(duration)] * n_nodes

    group_rate = rate * config.correlation_weight
    solo_rate = rate - group_rate

    # --- group sessions ------------------------------------------------
    groups: List[List[int]] = [[] for _ in range(config.n_groups)]
    for node in range(n_nodes):
        groups[node % config.n_groups].append(node)

    per_node_group_intervals: List[List[tuple]] = [[] for _ in range(n_nodes)]
    if group_rate > 0:
        dist = make_distribution(
            "normal", config.session_mean, config.session_sigma,
            minimum=config.session_mean * 0.1,
        )
        # Sessions must cover group_rate of the window *per member*, but
        # each member only joins `participation` of them; the total
        # session time is capped so it always fits the window.
        target_down = min(
            group_rate * duration / config.participation, 0.95 * duration
        )
        n_sessions = max(1, int(round(target_down / config.session_mean)))
        for members in groups:
            if not members:
                continue
            lengths = dist.sample(rng, n_sessions)
            lengths *= target_down / lengths.sum()
            # Non-overlapping placement (same order-statistics scheme as
            # the independent generator): sessions partition the group's
            # free time, so no downtime is lost to session overlap.
            up_total = duration - float(lengths.sum())
            cuts = np.sort(rng.uniform(0.0, up_total, size=n_sessions))
            gaps = np.diff(np.concatenate(([0.0], cuts, [up_total])))
            t = 0.0
            for gap, length in zip(gaps[:-1], lengths):
                t += float(gap)
                start = t
                t += float(length)
                end = min(t, duration)
                if end <= start:
                    continue
                for node in members:
                    if rng.random() < config.participation:
                        per_node_group_intervals[node].append((start, end))

    # --- independent background -----------------------------------------
    solo_cfg = replace(base, unavailability_rate=solo_rate)
    traces: List[AvailabilityTrace] = []
    for node in range(n_nodes):
        if solo_rate > 0:
            solo = generate_trace(solo_cfg, rng)
            merged = list(per_node_group_intervals[node]) + [
                (iv.start, iv.end) for iv in solo
            ]
        else:
            merged = per_node_group_intervals[node]
        traces.append(AvailabilityTrace(merge_intervals(merged), duration))
    return traces


def merge_intervals(intervals: Sequence[tuple]) -> List[tuple]:
    """Union of possibly-overlapping ``(start, end)`` pairs."""
    out: List[List[float]] = []
    for s, e in sorted(intervals):
        if out and s <= out[-1][1]:
            out[-1][1] = max(out[-1][1], e)
        else:
            out.append([s, e])
    return [(s, e) for s, e in out]


def peak_simultaneous_down(
    traces: Sequence[AvailabilityTrace], sample_interval: float = 60.0
) -> float:
    """Largest fraction of nodes simultaneously down on a sample grid —
    the Figure-1 headline figure (the paper observed up to 90%)."""
    if not traces:
        return 0.0
    duration = traces[0].duration
    times = np.arange(sample_interval / 2.0, duration, sample_interval)
    worst = 0.0
    for t in times:
        down = sum(1 for tr in traces if not tr.is_available(float(t)))
        worst = max(worst, down / len(traces))
    return worst
