"""Availability-trace data model.

A trace is a sorted, non-overlapping list of *unavailable* half-open
intervals ``[start, end)`` within ``[0, duration)``.  Outside those
intervals the node is available.  This is exactly the artifact the MOON
emulation replayed: "a monitoring process on each node reads in the
assigned availability trace, and suspends and resumes all the
Hadoop/MOON related processes on the node accordingly" (paper VI).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceError


@dataclass(frozen=True)
class Interval:
    """One unavailable period ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (self.end > self.start >= 0.0):
            raise TraceError(f"bad interval [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end


class AvailabilityTrace:
    """Immutable per-node unavailability schedule."""

    __slots__ = ("_starts", "_ends", "duration")

    def __init__(self, intervals: Iterable[Tuple[float, float]], duration: float):
        if duration <= 0:
            raise TraceError("trace duration must be positive")
        pairs = sorted((float(s), float(e)) for s, e in intervals)
        starts: List[float] = []
        ends: List[float] = []
        prev_end = -1.0
        for s, e in pairs:
            if e <= s:
                raise TraceError(f"empty or inverted interval [{s}, {e})")
            if s < 0 or e > duration:
                raise TraceError(f"interval [{s}, {e}) outside [0, {duration})")
            if s < prev_end:
                raise TraceError(f"overlapping interval at {s}")
            starts.append(s)
            ends.append(e)
            prev_end = e
        self._starts = tuple(starts)
        self._ends = tuple(ends)
        self.duration = float(duration)

    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return tuple(Interval(s, e) for s, e in zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def is_available(self, t: float) -> bool:
        """True when the node is up at simulated time ``t``.

        Times past the trace end are treated as available (the paper's
        traces cover the full experiment window).
        """
        if t < 0:
            raise TraceError("negative time")
        i = bisect_right(self._starts, t) - 1
        return not (i >= 0 and t < self._ends[i])

    def next_transition(self, t: float) -> Optional[Tuple[float, bool]]:
        """Return ``(time, available_after)`` of the next state change
        strictly after ``t``, or ``None`` if the node stays up forever."""
        i = bisect_right(self._starts, t) - 1
        if i >= 0 and t < self._ends[i]:
            return (self._ends[i], True)
        j = bisect_right(self._starts, t)
        if j < len(self._starts):
            return (self._starts[j], False)
        return None

    # ------------------------------------------------------------------
    def unavailable_seconds(self) -> float:
        return float(sum(e - s for s, e in zip(self._starts, self._ends)))

    def unavailability_rate(self) -> float:
        """Fraction of the trace during which the node is down."""
        return self.unavailable_seconds() / self.duration

    def outage_lengths(self) -> np.ndarray:
        return np.asarray(
            [e - s for s, e in zip(self._starts, self._ends)], dtype=float
        )

    def shifted(self, offset: float) -> "AvailabilityTrace":
        """Trace rotated by ``offset`` within the same window; useful
        for de-correlating copies of one trace.  Total downtime is
        conserved (a rigid rotation), modulo float rounding at the
        wrap boundary."""
        out = []
        for s, e in zip(self._starts, self._ends):
            s2 = (s + offset) % self.duration
            # Carry the *length* rather than shifting both endpoints:
            # immune to float absorption of tiny intervals at large
            # offsets and to ends landing exactly on the window edge.
            e2 = s2 + (e - s)
            if e2 <= self.duration:
                if e2 > s2:
                    out.append((s2, e2))
            else:  # wrapped around the end of the window
                out.append((s2, self.duration))
                tail = e2 - self.duration
                if tail > 0:
                    out.append((0.0, tail))
        # Rotation cannot create genuine overlaps, but float rounding
        # at the wrap boundary can leave touching/epsilon-crossing
        # pairs; merge to keep the constructor's invariant.
        merged: List[List[float]] = []
        for s, e in sorted(out):
            if merged and s <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], e)
            else:
                merged.append([s, e])
        return AvailabilityTrace([(s, e) for s, e in merged], self.duration)

    @staticmethod
    def always_available(duration: float) -> "AvailabilityTrace":
        return AvailabilityTrace([], duration)


def availability_matrix(
    traces: Sequence[AvailabilityTrace], times: np.ndarray
) -> np.ndarray:
    """Boolean matrix ``A[i, j]`` = trace *i* available at ``times[j]``."""
    out = np.empty((len(traces), len(times)), dtype=bool)
    for i, tr in enumerate(traces):
        out[i] = [tr.is_available(float(t)) for t in times]
    return out
