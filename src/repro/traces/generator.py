"""Synthetic availability-trace generation (paper Section VI).

The paper's method: *"We assume that node outage is mutually independent
and generate unavailable intervals using a normal distribution, with the
mean node-outage interval (409 seconds) extracted from the ... Entropia
volunteer computing node trace.  The unavailable intervals are then
inserted into 8-hour traces following a Poisson distribution such that
in each trace, the percentage of unavailable time is equal to a given
node unavailability rate."*

Implementation: draw ``n ≈ rate·duration / mean_outage`` truncated-normal
outage lengths, rescale them so they sum exactly to ``rate·duration``,
then place them at the order statistics of a Poisson process (uniform
order statistics conditioned on the count) over the *available* time,
which yields non-overlapping intervals whose total equals the target.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import TraceConfig
from ..errors import TraceError
from .distributions import make_distribution
from .model import AvailabilityTrace


def generate_trace(
    config: TraceConfig, rng: np.random.Generator
) -> AvailabilityTrace:
    """One node's trace with unavailable fraction equal to the target rate."""
    config.validate()
    rate, duration = config.unavailability_rate, config.duration
    if rate == 0.0:
        return AvailabilityTrace.always_available(duration)

    target_down = rate * duration
    n = max(1, int(round(target_down / config.mean_outage)))
    dist = make_distribution(
        config.distribution, config.mean_outage, config.outage_sigma,
        config.min_outage,
    )
    lengths = dist.sample(rng, n)
    # Rescale so the outages sum exactly to the target downtime.
    lengths *= target_down / lengths.sum()

    up_total = duration - target_down
    if up_total < 0:
        raise TraceError("unavailability rate too high for trace duration")
    # Poisson arrivals over the available time: n uniform order statistics
    # split the uptime into n+1 gaps (Dirichlet equivalently).
    cuts = np.sort(rng.uniform(0.0, up_total, size=n))
    gaps = np.diff(np.concatenate(([0.0], cuts, [up_total])))

    intervals: List[tuple] = []
    t = 0.0
    for gap, down in zip(gaps[:-1], lengths):
        t += gap
        start = t
        t += down
        intervals.append((start, min(t, duration)))
    return AvailabilityTrace(intervals, duration)


def generate_cluster_traces(
    config: TraceConfig, n_nodes: int, rng_factory
) -> List[AvailabilityTrace]:
    """Independent traces for ``n_nodes`` volatile nodes.

    ``rng_factory(i)`` must return node *i*'s random stream (see
    :meth:`repro.simulation.Simulation.rng_indexed`), so node traces are
    independent and stable under changes elsewhere in the system.
    """
    if n_nodes < 0:
        raise TraceError("n_nodes must be non-negative")
    return [generate_trace(config, rng_factory(i)) for i in range(n_nodes)]


def empirical_rate(traces: Sequence[AvailabilityTrace]) -> float:
    """Mean unavailable fraction across a set of traces."""
    if not traces:
        return 0.0
    return float(np.mean([t.unavailability_rate() for t in traces]))
