"""Statistics over availability traces (validation + Fig. 1 analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import TraceError
from .model import AvailabilityTrace, availability_matrix


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a set of per-node traces."""

    n_nodes: int
    mean_unavailability: float
    mean_outage_seconds: float
    max_simultaneous_down_fraction: float
    min_simultaneous_down_fraction: float

    def __str__(self) -> str:
        return (
            f"{self.n_nodes} nodes: mean unavail "
            f"{self.mean_unavailability:.3f}, mean outage "
            f"{self.mean_outage_seconds:.0f}s, simultaneous down "
            f"{100 * self.min_simultaneous_down_fraction:.0f}%"
            f"-{100 * self.max_simultaneous_down_fraction:.0f}%"
        )


def compute_stats(
    traces: Sequence[AvailabilityTrace], sample_interval: float = 60.0
) -> TraceStats:
    """Summary statistics; simultaneous-down figures use a uniform grid."""
    if not traces:
        raise TraceError("no traces")
    duration = traces[0].duration
    if any(t.duration != duration for t in traces):
        raise TraceError("traces must share one duration")

    rates = [t.unavailability_rate() for t in traces]
    lengths = np.concatenate(
        [t.outage_lengths() for t in traces if len(t)] or [np.empty(0)]
    )
    times = np.arange(sample_interval / 2, duration, sample_interval)
    avail = availability_matrix(traces, times)
    down_frac = 1.0 - avail.mean(axis=0)
    return TraceStats(
        n_nodes=len(traces),
        mean_unavailability=float(np.mean(rates)),
        mean_outage_seconds=float(lengths.mean()) if lengths.size else 0.0,
        max_simultaneous_down_fraction=float(down_frac.max()),
        min_simultaneous_down_fraction=float(down_frac.min()),
    )


def measured_unavailability(
    traces: Sequence[AvailabilityTrace], t_from: float, t_to: float
) -> float:
    """Fraction of node-time unavailable within a window — exactly what
    MOON's NameNode estimates as ``p`` over its interval ``I``."""
    if t_to <= t_from:
        raise TraceError("empty measurement window")
    total = 0.0
    for tr in traces:
        for iv in tr:
            lo, hi = max(iv.start, t_from), min(iv.end, t_to)
            if hi > lo:
                total += hi - lo
    return total / ((t_to - t_from) * len(traces))
