"""Pluggable outage-length distributions.

The paper generates outage lengths from a normal distribution with the
Entropia trace's 409-second mean (Section VI).  Its own reference [15]
(Javadi et al., "Mining for Statistical Models of Availability ...")
found that real volunteer-computing availability is better described by
Weibull, log-normal or Gamma laws, so this module makes the law a
pluggable strategy: the paper's normal model is the default, and the
heavier-tailed alternatives let users test MOON's policies against more
realistic outage processes (the hibernate state and two-phase
scheduling react differently to many short vs few long outages).

Every distribution is calibrated by ``(mean, sigma)`` of the outage
length, matching :class:`~repro.config.TraceConfig`, and draws are
truncated below at ``minimum`` seconds.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Type

import numpy as np

from ..errors import TraceError


class OutageDistribution(ABC):
    """Strategy producing outage lengths with a target mean and spread."""

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self, mean: float, sigma: float, minimum: float = 0.0) -> None:
        if mean <= 0:
            raise TraceError("outage mean must be positive")
        if sigma < 0:
            raise TraceError("outage sigma must be non-negative")
        if minimum < 0 or minimum > mean:
            raise TraceError("minimum must be in [0, mean]")
        self.mean = mean
        self.sigma = sigma
        self.minimum = minimum

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` outage lengths, truncated below at ``minimum``."""
        if n < 0:
            raise TraceError("n must be non-negative")
        if n == 0:
            return np.empty(0)
        draws = self._draw(rng, n)
        # A few resampling passes for the sub-minimum tail, then clip:
        # keeps the law's shape without an unbounded rejection loop.
        for _ in range(8):
            bad = draws < self.minimum
            if not bad.any():
                break
            draws[bad] = self._draw(rng, int(bad.sum()))
        return np.maximum(draws, self.minimum)

    @abstractmethod
    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Raw (untruncated) draws with the configured mean/sigma."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(mean={self.mean}, sigma={self.sigma}, "
            f"minimum={self.minimum})"
        )


class NormalOutages(OutageDistribution):
    """The paper's model: normal outage lengths (Section VI)."""

    name = "normal"

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self.mean, self.sigma, size=n)


class LognormalOutages(OutageDistribution):
    """Log-normal lengths: many short outages, a heavy right tail.

    Parameterised so the *linear-scale* mean and standard deviation
    equal the configured ``(mean, sigma)``.
    """

    name = "lognormal"

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.sigma == 0:
            return np.full(n, self.mean)
        var = self.sigma**2
        mu = math.log(self.mean**2 / math.sqrt(var + self.mean**2))
        s = math.sqrt(math.log(1.0 + var / self.mean**2))
        return rng.lognormal(mu, s, size=n)


class WeibullOutages(OutageDistribution):
    """Weibull lengths — the best-fit family in the paper's ref [15].

    The shape ``k`` is solved from the coefficient of variation
    (``sigma/mean``) by bisection on ``CV^2 = Γ(1+2/k)/Γ(1+1/k)^2 - 1``,
    then the scale follows from the mean.
    """

    name = "weibull"

    def __init__(self, mean: float, sigma: float, minimum: float = 0.0) -> None:
        super().__init__(mean, sigma, minimum)
        self._shape = self._solve_shape(sigma / mean) if sigma > 0 else None
        if self._shape is not None:
            self._scale = mean / math.gamma(1.0 + 1.0 / self._shape)

    @staticmethod
    def _cv2(k: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / k)
        g2 = math.gamma(1.0 + 2.0 / k)
        return g2 / (g1 * g1) - 1.0

    @classmethod
    def _solve_shape(cls, cv: float) -> float:
        target = cv * cv
        lo, hi = 0.1, 50.0
        if not (cls._cv2(hi) <= target <= cls._cv2(lo)):
            raise TraceError(f"unreachable Weibull CV {cv:.3f}")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if cls._cv2(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self._shape is None:
            return np.full(n, self.mean)
        return self._scale * rng.weibull(self._shape, size=n)


class ExponentialOutages(OutageDistribution):
    """Memoryless lengths (CV fixed at 1; ``sigma`` is ignored).

    The classic machine-repair abstraction; pairs with the analytical
    two-state Markov model in :mod:`repro.analysis.markov`.
    """

    name = "exponential"

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean, size=n)


class ParetoOutages(OutageDistribution):
    """Pareto (power-law) lengths: rare but enormous outages.

    A stress model for MOON's reliable-file guarantees — with a heavy
    enough tail a node can vanish for most of the trace, which is the
    regime where dedicated replicas matter most.  The tail exponent is
    fitted from the CV when finite-variance is possible (CV < 1 is
    unreachable for Pareto; we then fall back to alpha=2.5).
    """

    name = "pareto"

    def __init__(self, mean: float, sigma: float, minimum: float = 0.0) -> None:
        super().__init__(mean, sigma, minimum)
        cv2 = (sigma / mean) ** 2 if sigma > 0 else 1.0
        # For Pareto(alpha, xm): CV^2 = 1 / (alpha (alpha - 2)) for
        # alpha > 2.  Solve alpha = 1 + sqrt(1 + 1/CV^2).
        self._alpha = 1.0 + math.sqrt(1.0 + 1.0 / cv2) if cv2 > 0 else 2.5
        self._xm = mean * (self._alpha - 1.0) / self._alpha

    def _draw(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._xm * (1.0 + rng.pareto(self._alpha, size=n))


#: Registry of distribution families by name.
DISTRIBUTIONS: Dict[str, Type[OutageDistribution]] = {
    cls.name: cls
    for cls in (
        NormalOutages,
        LognormalOutages,
        WeibullOutages,
        ExponentialOutages,
        ParetoOutages,
    )
}


def make_distribution(
    name: str, mean: float, sigma: float, minimum: float = 0.0
) -> OutageDistribution:
    """Construct a registered outage-length distribution by name."""
    try:
        cls = DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise TraceError(f"unknown distribution {name!r} (known: {known})") from None
    return cls(mean, sigma, minimum)


def distribution_names() -> List[str]:
    """Sorted names of the registered outage-length families."""
    return sorted(DISTRIBUTIONS)
