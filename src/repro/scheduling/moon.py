"""MOON's two-phase, hybrid-aware speculative scheduling (paper V).

Mechanisms, in priority order when a slot frees up:

1. **Pending tasks** (recently failed first) — normal work.
2. **Frozen tasks** (all copies inactive, V-A): always get a new copy,
   bypassing the per-task cap, sorted by progress (lowest first).
3. **Slow tasks** (Hadoop straggler criteria), progress-sorted.
4. **Homestretch replication** (V-B): once remaining tasks < H% of the
   available slots, keep >= R active copies of every remaining task.

A job-level cap bounds concurrent speculative instances to a fraction
(default 20%) of the currently available slots.  With
``hybrid_aware=True`` (MOON-Hybrid) dedicated nodes run speculative
copies; tasks that already hold a dedicated copy are deprioritised for
further replication and skip the homestretch (V-C).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..mapreduce.job import Job
from ..mapreduce.task import Task, TaskType
from ..mapreduce.tasktracker import TaskTracker
from .base import SchedulerPolicy


class MoonScheduler(SchedulerPolicy):
    """MOON's frozen/slow + two-phase + hybrid-aware policy (V)."""
    def select_task(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Tuple[Task, bool]]:
        if tracker.node.is_dedicated:
            if not self.cfg.hybrid_aware:
                # Plain MOON uses dedicated machines as pure data
                # servers (V-C: the hybrid extension is what "takes
                # advantage of the CPU resources available on the
                # dedicated computers").
                return None
            if self.cfg.dedicated_primary:
                # Service mode: the tier is real capacity.  Volatile
                # trackers were walked first, so pending work reaching
                # a dedicated slot found no volatile home this tick.
                pending = self.pick_pending(job, tracker, task_type)
                if pending is not None:
                    return (pending, False)
            # MOON-Hybrid: best-effort speculative hosting only.
            return self._pick_speculative(job, tracker, task_type)
        pending = self.pick_pending(job, tracker, task_type)
        if pending is not None:
            return (pending, False)
        if self.has_pending(job, task_type):
            return None
        return self._pick_speculative(job, tracker, task_type)

    # ------------------------------------------------------------------
    def _pick_speculative(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Tuple[Task, bool]]:
        if not self.allow_speculation(job) or not self.under_job_cap(job):
            return None

        frozen, slow, home = self._spec_candidates(job, task_type)
        # The ordered candidate lists are computed once per tick; only
        # the conditions a same-tick launch can change (a new copy, a
        # per-task cap, co-location) are re-checked per slot.
        for t in frozen:
            # Frozen tasks get a copy regardless of the per-task cap.
            if (
                t.is_frozen()
                and not t.has_dedicated_attempt()
                and self.can_host(t, tracker)
            ):
                job.counters["frozen_speculations"] += 1
                return (t, True)
        # Two passes keep V-C live: tasks that gained a dedicated copy
        # earlier this same tick must drop behind those with none.
        for backed in (False, True):
            for t in slow:
                if (
                    t.has_dedicated_attempt() is backed
                    and not t.is_frozen()
                    and self.under_per_task_cap(t)
                    and self.can_host(t, tracker)
                ):
                    return (t, True)
        want = self.cfg.homestretch_replicas
        for t in home:
            if (
                not t.complete
                and len(t.active_attempts()) < want
                and not t.has_dedicated_attempt()
                and self.can_host(t, tracker)
            ):
                job.counters["homestretch_speculations"] += 1
                return (t, True)
        return None

    # ------------------------------------------------------------------
    def _order(self, tasks: List[Task]) -> List[Task]:
        """Progress-ascending; tasks holding a dedicated copy last
        (they already enjoy reliable backup, V-C)."""
        return sorted(
            tasks,
            key=lambda t: (t.has_dedicated_attempt(), t.best_progress(), t.index),
        )

    def _spec_candidates(
        self, job: Job, task_type: TaskType
    ) -> Tuple[List[Task], List[Task], List[Task]]:
        """(frozen, slow, homestretch) ordered lists, memoised per tick
        — no events fire mid-tick, so progress and judgement state are
        constant and per-slot rebuild+sort would be pure waste."""
        key = ("spec", job.job_id, task_type)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        frozen = self._order(
            [t for t in job.running_tasks(task_type) if t.is_frozen()]
        )
        # Progress-only order for the slow list: its dedicated-backed
        # split is applied *live* at pick time (two-pass), because a
        # backup launched earlier in the tick changes it.
        slow = sorted(
            (
                t
                for t in self.hadoop_stragglers(job, task_type)
                if not t.is_frozen() and self.under_per_task_cap(t)
            ),
            key=lambda t: (t.best_progress(), t.index),
        )
        home = self._order(self._homestretch_candidates(job, task_type))
        cached = (frozen, slow, home)
        self._memo[key] = cached
        return cached

    def _homestretch_candidates(
        self, job: Job, task_type: TaskType
    ) -> List[Task]:
        key = ("homestretch", job.job_id)
        remaining = self._memo.get(key)
        if remaining is None:
            remaining = job.incomplete_tasks()
            self._memo[key] = remaining
        threshold = (
            self.cfg.homestretch_threshold_pct / 100.0 * self.available_slots()
        )
        if not remaining or len(remaining) >= threshold:
            return []
        want = self.cfg.homestretch_replicas
        return [
            t
            for t in remaining
            if t.task_type is task_type
            and t.attempts  # scheduled at least once
            and not t.complete
            and len(t.active_attempts()) < want
            and not t.has_dedicated_attempt()  # V-C exemption
        ]
