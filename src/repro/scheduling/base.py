"""Scheduler policy interface + shared straggler helpers.

Candidate lists (pending tasks, stragglers, frozen tasks) are memoised
for the duration of one JobTracker tick via :meth:`begin_tick`; the
per-tracker constraints (don't co-locate with an existing copy, input
locality) are applied at selection time so they stay exact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

from ..config import SchedulerConfig
from ..mapreduce.job import Job
from ..mapreduce.task import Task, TaskState, TaskType
from ..mapreduce.tasktracker import TaskTracker


class SchedulerPolicy(ABC):
    """Answers one question: given a free slot on ``tracker``, which
    task of ``job`` (if any) should run there, and is it speculative?"""

    def __init__(self, cfg: SchedulerConfig) -> None:
        cfg.validate()
        self.cfg = cfg
        self.jobtracker = None
        self._memo: Dict[tuple, object] = {}

    def bind(self, jobtracker) -> None:
        self.jobtracker = jobtracker

    def begin_tick(self) -> None:
        """Invalidate per-tick memoised candidate lists."""
        self._memo.clear()

    @property
    def now(self) -> float:
        return self.jobtracker.sim.now

    # ------------------------------------------------------------------
    @abstractmethod
    def select_task(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Tuple[Task, bool]]:
        """Return ``(task, is_speculative)`` or ``None``."""

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def reduces_eligible(self, job: Job) -> bool:
        """Slow-start rule: reduces wait for the first maps.

        Memoised per tick: completions only happen on events between
        ticks, and this is asked once per free slot on every tracker.
        """
        key = ("red_elig", job.job_id)
        cached = self._memo.get(key)
        if cached is None:
            if not job.maps:
                cached = True
            else:
                frac = job.maps_completed() / len(job.maps)
                cached = frac >= self.cfg.reduce_slowstart_fraction
            self._memo[key] = cached
        return cached

    def _pending_sorted(self, job: Job, task_type: TaskType) -> List[Task]:
        key = ("pending", job.job_id, task_type)
        cached = self._memo.get(key)
        if cached is None:
            pending = job.pending_tasks(task_type)
            # Recently failed tasks first (II-C), then index order.
            cached = sorted(
                pending, key=lambda t: (t.failed_attempts == 0, t.index)
            )
            self._memo[key] = cached
        return cached

    def pick_pending(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Task]:
        """Non-running task selection: recently-failed tasks first
        (II-C), then input-local maps, then the rest in index order."""
        if job.pending_count(task_type) == 0:
            return None
        if task_type is TaskType.REDUCE and not self.reduces_eligible(job):
            return None
        best: Optional[Task] = None
        for t in self._pending_sorted(job, task_type):
            if t.state is not TaskState.PENDING:
                continue  # launched earlier this same tick
            if tracker.node_id in t.nodes_with_attempts():
                continue
            if t.failed_attempts > 0:
                return t
            if (
                task_type is TaskType.MAP
                and t.input_block is not None
                and tracker.node_id in t.input_block.replicas
            ):
                return t  # data-local hit
            if best is None:
                best = t
        return best

    def has_pending(self, job: Job, task_type: TaskType) -> bool:
        return job.pending_count(task_type) > 0

    def hadoop_stragglers(self, job: Job, task_type: TaskType) -> List[Task]:
        """Hadoop's straggler rule (paper V): running > 1 minute and
        progress >= 0.2 behind the average of the task type.  Memoised
        per tick."""
        key = ("stragglers", job.job_id, task_type)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        avg = job.average_progress(task_type)
        out = []
        for task in job.running_tasks(task_type):
            if task.complete:
                continue
            live = task.live_attempts()
            if not live:
                continue
            oldest = min(a.started_at for a in live)
            if self.now - oldest < self.cfg.speculative_min_runtime:
                continue
            if task.best_progress() <= avg - self.cfg.speculative_progress_gap:
                out.append(task)
        self._memo[key] = out
        return out

    def under_per_task_cap(self, task: Task) -> bool:
        """Hadoop caps backup copies per task (default 1 extra)."""
        extras = len(task.live_attempts()) - 1
        return extras < self.cfg.max_speculative_per_task

    def allow_speculation(self, job: Job) -> bool:
        """Deprioritised jobs (service-layer preemption) yield slots as
        their tasks finish: they may still run *pending* work when the
        walk reaches them last, but no policy grants them new
        speculative copies — backup instances are exactly the extra
        slots the preemption is trying to hand to tighter jobs."""
        return self.cfg.speculative_enabled and not job.deprioritised

    def job_is_candidate(self, job: Job, task_type: TaskType) -> bool:
        """Can :meth:`select_task` possibly return a ``task_type`` task
        of this job on *any* tracker this tick?

        Exact, not heuristic: every selectable task is either PENDING —
        and pending reduces are gated by the slow-start rule — or
        incomplete-with-attempts (the speculative pools draw on running
        tasks plus requeued tasks that ran before).  Both facts are
        cheap reads against the job's per-state indices, so the
        JobTracker can prefilter its assignment walk per tick instead
        of asking every (job, tracker) pair, and a quiet big cluster
        skips the walk entirely.  Jobs failing this gate are exactly
        those every ``select_task`` call would refuse, so the filtered
        walk makes identical decisions.
        """
        speculate = self.cfg.speculative_enabled
        if job.pending_count(task_type) > 0:
            if task_type is TaskType.MAP or self.reduces_eligible(job):
                return True
            # Pending-but-ineligible reduces that ran before remain
            # homestretch material (MOON V-B).
            if speculate and job.any_pending_attempted(task_type):
                return True
        return bool(speculate and job.running_count(task_type))

    def available_slots(self) -> int:
        cached = self._memo.get("avail_slots")
        if cached is None:
            cached = self.jobtracker.available_slots()
            self._memo["avail_slots"] = cached
        return cached

    def under_job_cap(self, job: Job) -> bool:
        """MOON's job-level cap: concurrent speculative instances below
        ``speculative_cap_fraction`` of available slots (V-A)."""
        cap = self.cfg.speculative_cap_fraction * self.available_slots()
        return job.speculative_attempts_active() < cap

    def can_host(self, task: Task, tracker: TaskTracker) -> bool:
        return (
            not task.complete
            and tracker.node_id not in task.nodes_with_attempts()
        )
