"""Task scheduling policies (S7)."""

from ..config import SchedulerConfig
from .base import SchedulerPolicy
from .hadoop import HadoopScheduler
from .late import LateScheduler
from .moon import MoonScheduler

__all__ = [
    "SchedulerPolicy",
    "HadoopScheduler",
    "MoonScheduler",
    "LateScheduler",
    "make_scheduler",
]


def make_scheduler(cfg: SchedulerConfig) -> SchedulerPolicy:
    """Factory keyed on ``SchedulerConfig.kind``."""
    if cfg.kind == "hadoop":
        return HadoopScheduler(cfg)
    if cfg.kind == "moon":
        return MoonScheduler(cfg)
    if cfg.kind == "late":
        return LateScheduler(cfg)
    raise ValueError(f"unknown scheduler kind {cfg.kind!r}")
