"""Task scheduling policies (S7).

Owns the per-slot decision "which task of this job runs here, and is
it speculative?": the shared :class:`SchedulerPolicy` machinery
(per-tick memoised candidate lists, straggler detection, speculative
caps) and three concrete policies — stock Hadoop (paper II-C), LATE,
and MOON's frozen-task/two-phase/hybrid-aware scheduler (paper
Section V: Figs. 4 and 5 compare them).  The service-mode
``dedicated_primary`` extension lets dedicated slots run primary
tasks, making the autoscaled tier real capacity.

See docs/ARCHITECTURE.md#scheduling-policies for the layer map.
"""

from ..config import SchedulerConfig
from .base import SchedulerPolicy
from .hadoop import HadoopScheduler
from .late import LateScheduler
from .moon import MoonScheduler

__all__ = [
    "SchedulerPolicy",
    "HadoopScheduler",
    "MoonScheduler",
    "LateScheduler",
    "make_scheduler",
]


def make_scheduler(cfg: SchedulerConfig) -> SchedulerPolicy:
    """Factory keyed on ``SchedulerConfig.kind``."""
    if cfg.kind == "hadoop":
        return HadoopScheduler(cfg)
    if cfg.kind == "moon":
        return MoonScheduler(cfg)
    if cfg.kind == "late":
        return LateScheduler(cfg)
    raise ValueError(f"unknown scheduler kind {cfg.kind!r}")
