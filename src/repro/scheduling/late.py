"""LATE — Longest Approximate Time to End (Zaharia et al., OSDI'08).

The related-work baseline the paper contrasts with (Section VII): LATE
speculates on the task expected to finish last, assuming constant
per-node progress rates.  That assumption breaks on opportunistic
resources (a suspended node's rate is *zero* for a while, then jumps
back), which is exactly what the XTRA-C ablation bench demonstrates.

Simplified faithful implementation:

* estimate ``time_left = (1 - progress) / progress_rate`` per running
  task (rate measured since the attempt started);
* speculate on the largest ``time_left`` whose progress rate is below
  the SlowTaskThreshold (25th percentile of rates);
* respect a SpeculativeCap (fraction of available slots).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..mapreduce.job import Job
from ..mapreduce.task import Task, TaskType
from ..mapreduce.tasktracker import TaskTracker
from .base import SchedulerPolicy

#: LATE's published defaults.
SLOW_TASK_PERCENTILE = 25.0


class LateScheduler(SchedulerPolicy):
    """LATE: speculate on the longest estimated time-to-end."""
    def select_task(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Tuple[Task, bool]]:
        pending = self.pick_pending(job, tracker, task_type)
        if pending is not None:
            return (pending, False)
        if self.has_pending(job, task_type):
            return None
        if not self.allow_speculation(job) or not self.under_job_cap(job):
            return None
        candidates = self._ranked_by_time_left(job, task_type, tracker)
        if not candidates:
            return None
        return (candidates[0], True)

    # ------------------------------------------------------------------
    def _rate(self, task: Task) -> float:
        live = task.live_attempts()
        if not live:
            return 0.0
        rates = []
        for a in live:
            runtime = max(1e-6, self.now - a.started_at)
            rates.append(a.progress / runtime)
        return max(rates)

    def _ranked_by_time_left(
        self, job: Job, task_type: TaskType, tracker: TaskTracker
    ) -> List[Task]:
        """Memoised per tick.  Two layers:

        * per-task progress rates are launch-invariant within a tick (a
          copy launched this tick contributes rate 0.0, which can never
          raise the per-task ``max``), so they are computed once per
          (job, type) and reused across every slot request;
        * the percentile threshold and the ranking depend on the
          *filtered* candidate subset — which shifts as same-tick
          launches consume per-task caps and co-location slots — so the
          ranked list is cached keyed by that subset.  Identical
          subsets recur for most slot requests in a tick; recomputing
          only on subset change is byte-identical to the per-slot
          recompute (same inputs, same arithmetic).

        ``_ranked_by_time_left_reference`` below is the original
        unmemoised computation; the pinning test drives both over the
        same cluster and asserts identical decisions.
        """
        running = [
            t
            for t in job.running_tasks(task_type)
            if not t.complete
            and t.live_attempts()
            and self.under_per_task_cap(t)
            and self.can_host(t, tracker)
        ]
        if not running:
            return []
        rates_key = ("late_rates", job.job_id, task_type)
        all_rates = self._memo.get(rates_key)
        if all_rates is None:
            all_rates = self._memo[rates_key] = {}
        rank_key = (
            "late_rank",
            job.job_id,
            task_type,
            tuple(t.index for t in running),
        )
        ranked = self._memo.get(rank_key)
        if ranked is not None:
            return ranked
        rates = {}
        for t in running:
            r = all_rates.get(t.index)
            if r is None:
                r = all_rates[t.index] = self._rate(t)
            rates[t.task_id] = r
        threshold = float(
            np.percentile(list(rates.values()), SLOW_TASK_PERCENTILE)
        )
        slow = [t for t in running if rates[t.task_id] <= threshold]

        def time_left(t: Task) -> float:
            r = rates[t.task_id]
            if r <= 0:
                return float("inf")
            return (1.0 - t.best_progress()) / r

        ranked = sorted(slow, key=lambda t: (-time_left(t), t.index))
        self._memo[rank_key] = ranked
        return ranked

    def _ranked_by_time_left_reference(
        self, job: Job, task_type: TaskType, tracker: TaskTracker
    ) -> List[Task]:
        """The original per-slot recompute (no memoisation): the
        equivalence oracle for ``tests/test_late_memo.py``."""
        running = [
            t
            for t in job.running_tasks(task_type)
            if not t.complete
            and t.live_attempts()
            and self.under_per_task_cap(t)
            and self.can_host(t, tracker)
        ]
        if not running:
            return []
        rates = {t.task_id: self._rate(t) for t in running}
        threshold = float(
            np.percentile(list(rates.values()), SLOW_TASK_PERCENTILE)
        )
        slow = [t for t in running if rates[t.task_id] <= threshold]

        def time_left(t: Task) -> float:
            r = rates[t.task_id]
            if r <= 0:
                return float("inf")
            return (1.0 - t.best_progress()) / r

        return sorted(slow, key=lambda t: (-time_left(t), t.index))
