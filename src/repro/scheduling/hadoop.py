"""Hadoop 0.17's default speculative scheduling (paper II-C, V).

Stragglers are treated equally regardless of how far behind they are,
selected in original scheduling order (with input-local preference for
maps); at most one backup copy per task.  The HadoopXMin baselines of
Figures 4/5 are this policy with different TrackerExpiryIntervals.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..mapreduce.job import Job
from ..mapreduce.task import Task, TaskType
from ..mapreduce.tasktracker import TaskTracker
from .base import SchedulerPolicy


class HadoopScheduler(SchedulerPolicy):
    """Stock Hadoop speculative scheduling (paper II-C / V)."""
    def select_task(
        self, job: Job, tracker: TaskTracker, task_type: TaskType
    ) -> Optional[Tuple[Task, bool]]:
        pending = self.pick_pending(job, tracker, task_type)
        if pending is not None:
            return (pending, False)
        # "if all tasks for this job have been scheduled, the JobTracker
        # speculatively issues backup tasks for slow running ones".
        if self.has_pending(job, task_type):
            return None
        if not self.allow_speculation(job):
            return None
        stragglers = [
            t
            for t in self.hadoop_stragglers(job, task_type)
            if self.under_per_task_cap(t) and self.can_host(t, tracker)
        ]
        if not stragglers:
            return None
        if task_type is TaskType.MAP:
            local = [
                t
                for t in stragglers
                if t.input_block is not None
                and tracker.node_id in t.input_block.replicas
            ]
            if local:
                stragglers = local
        # Original scheduling order, not progress order (paper V).
        chosen = min(stragglers, key=lambda t: t.scheduled_order or 0)
        return (chosen, True)
