"""System assembly (S10): MOON and Hadoop-baseline deployments.

Owns the wiring of the whole stack from one
:class:`~repro.config.SystemConfig` — simulation, cluster with traces,
transfer model, MOON-DFS, JobTracker with a scheduling policy — plus
the run entry points (``run_job``, ``run_jobs``, ``run_service``) and
the cross-layer listener ordering (the network's decommission hook
registers last, so replica maps are consistent before transfers
abort).  :func:`hadoop_system` builds the paper's baseline: the same
machines, all presented as volatile (Section VI-C).

Every experiment (Figs. 4-7, Tables I-II) instantiates systems through
this layer; see docs/ARCHITECTURE.md#system-assembly.
"""

from .results import JobResult
from .snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    restore_bytes,
    save_snapshot,
    snapshot_bytes,
)
from .system import MoonSystem, hadoop_system, moon_system

__all__ = [
    "MoonSystem",
    "moon_system",
    "hadoop_system",
    "JobResult",
    "SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "snapshot_bytes",
    "restore_bytes",
]
