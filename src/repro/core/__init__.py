"""System assembly (S10): MOON and Hadoop-baseline deployments."""

from .results import JobResult
from .system import MoonSystem, hadoop_system, moon_system

__all__ = ["MoonSystem", "moon_system", "hadoop_system", "JobResult"]
