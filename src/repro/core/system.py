"""Top-level system assembly (S10).

:class:`MoonSystem` wires the full stack — simulation, cluster with
availability traces, transfer model, MOON-DFS, JobTracker with a
scheduling policy — from one :class:`~repro.config.SystemConfig`.

:func:`hadoop_system` builds the paper's baseline: the same physical
machines, but *"these nodes are all treated as volatile in the Hadoop
tests as Hadoop cannot differentiate between volatile and dedicated"*
(VI-C) — the reliable machines exist, Hadoop just cannot target them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from ..cluster import (
    AvailabilityMonitor,
    Cluster,
    Node,
    NodeKind,
    NodeView,
    build_cluster,
    connect_network,
)
from ..config import SystemConfig
from ..dfs import DfsClient, NameNode
from ..errors import ConfigError
from ..mapreduce import Job, JobTracker
from ..net import make_network
from ..scheduling import make_scheduler
from ..simulation import Observability, Simulation
from ..traces import generate_trace
from ..workloads import JobSpec
from .results import JobResult


class MoonSystem:
    """A fully wired MOON (or Hadoop-baseline) deployment."""

    def __init__(
        self,
        config: SystemConfig,
        cluster: Optional[Cluster] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.sim = Simulation(config.seed, obs=obs)
        #: Observability bundle shared by every component via ``sim.obs``.
        self.obs = self.sim.obs
        self.cluster = cluster or build_cluster(
            self.sim, config.cluster, config.trace
        )
        self.monitor = AvailabilityMonitor(self.sim, self.cluster)
        self.network = make_network(config.network_model, self.sim)
        for node in self.cluster.nodes:
            self.network.register_node(
                node.node_id, node.spec.disk_mbps, node.spec.nic_mbps
            )
        connect_network(self.cluster, self.network)
        # Each observer gets its own view of node liveness (and, in the
        # honest modes, its own detector with independent observation
        # noise — a real NameNode and JobTracker do not share sockets).
        self.nn_view = NodeView("namenode", config.detector)
        self.jt_view = NodeView("jobtracker", config.detector)
        self.namenode = NameNode(
            self.sim, self.cluster, self.network, config.dfs, view=self.nn_view
        )
        self.policy = make_scheduler(config.scheduler)
        self.jobtracker = JobTracker(
            self.sim,
            self.cluster,
            self.namenode,
            config.scheduler,
            config.shuffle,
            self.policy,
            heartbeat_interval=config.cluster.heartbeat_interval,
            view=self.jt_view,
        )
        self.dfs = DfsClient(self.namenode)
        # Decommission wiring, deliberately registered *after* the
        # NameNode's and JobTracker's own listeners: by the time the
        # network aborts a departing node's in-flight transfers, its
        # replicas are already gone from the replica maps, so failure
        # callbacks (fetch failures, pipeline retries) observe a
        # consistent file system.
        self.cluster.on_decommission(self._unregister_node_from_network)

    # ------------------------------------------------------------------
    def _unregister_node_from_network(self, node) -> None:
        self.network.unregister_node(node.node_id)

    def submit(self, spec: JobSpec, priority: int = 0) -> Job:
        return self.jobtracker.submit(spec, priority)

    def run_job(
        self, spec: JobSpec, time_limit: float = 8 * 3600.0, priority: int = 0
    ) -> JobResult:
        """Submit, simulate to completion (or the limit), and report."""
        job = self.submit(spec, priority)
        self.sim.run(until=time_limit, stop_when=lambda: job.finished)
        return JobResult.from_run(self, job)

    def run_jobs(
        self,
        specs: List[JobSpec],
        time_limit: float = 8 * 3600.0,
        priorities: Optional[List[int]] = None,
        arrival_offsets: Optional[List[float]] = None,
    ) -> List[JobResult]:
        """Concurrent multi-job execution (paper VIII future work).

        ``priorities`` mirrors :meth:`run_job`'s knob per job (higher
        runs first at assignment time); ``arrival_offsets`` staggers
        submissions by seconds relative to now, so batch and service
        paths share arrival semantics.
        """
        n = len(specs)
        priorities = priorities if priorities is not None else [0] * n
        arrival_offsets = (
            arrival_offsets if arrival_offsets is not None else [0.0] * n
        )
        if len(priorities) != n or len(arrival_offsets) != n:
            raise ConfigError(
                "priorities and arrival_offsets must match specs in length"
            )
        if any(off < 0 for off in arrival_offsets):
            raise ConfigError("arrival_offsets must be non-negative")
        # A positive offset past the time limit would leave a submission
        # event armed after this run returns, firing mid-way through a
        # later run on the same system — reject it up front instead.
        # (Zero offsets submit immediately and arm nothing.)
        if any(
            off > 0 and self.sim.now + off > time_limit
            for off in arrival_offsets
        ):
            raise ConfigError("arrival_offsets must fall within time_limit")
        jobs: List[Optional[Job]] = [None] * n

        def submit_one(i: int) -> None:
            jobs[i] = self.submit(specs[i], priorities[i])

        for i, offset in enumerate(arrival_offsets):
            if offset == 0.0:
                submit_one(i)
            else:
                self.sim.call_after(offset, submit_one, i)
        self.sim.run(
            until=time_limit,
            stop_when=lambda: all(j is not None and j.finished for j in jobs),
        )
        # Every offset lies within the limit, so every job is submitted
        # by the time the run stops (a job may still be unfinished, and
        # reports elapsed=None like any other DNF).
        return [JobResult.from_run(self, j) for j in jobs]

    def run_service(
        self,
        arrivals,
        service_config=None,
        pattern: str = "replay",
    ):
        """Serve a job-arrival stream through the service layer (S11).

        Returns the :class:`~repro.service.ServiceReport` with queue
        waits, p50/p95/p99 response times, goodput, deadline-miss rate
        and per-tenant fairness.
        """
        from ..service import MoonService

        return MoonService(
            self, service_config, arrivals, pattern=pattern
        ).run()


def moon_system(
    config: SystemConfig, obs: Optional[Observability] = None
) -> MoonSystem:
    """The paper's MOON deployment (dedicated + volatile nodes)."""
    return MoonSystem(config, obs=obs)


def hadoop_system(
    config: SystemConfig, obs: Optional[Observability] = None
) -> MoonSystem:
    """The Hadoop baseline: same machines, all presented as volatile.

    The first ``n_dedicated`` nodes keep their perfect availability
    (they are the same well-maintained machines) but lose their special
    role: no dedicated replicas, no hybrid scheduling, no hibernate
    state (hibernation is collapsed into just below the expiry).
    """
    if config.scheduler.kind == "moon":
        raise ConfigError("hadoop_system expects a non-moon scheduler")
    sim_probe = Simulation(config.seed)  # trace stream identical to MOON's
    nodes = []
    nid = 0
    for _ in range(config.cluster.n_dedicated):
        nodes.append(Node(nid, NodeKind.VOLATILE, config.cluster.dedicated))
        nid += 1
    for i in range(config.cluster.n_volatile):
        trace = None
        if config.trace.unavailability_rate > 0:
            trace = generate_trace(
                config.trace, sim_probe.rng_indexed("trace", i)
            )
        nodes.append(Node(nid, NodeKind.VOLATILE, config.cluster.volatile, trace))
        nid += 1
    # Hadoop's HDFS has no hibernate state: collapse it into expiry.
    dfs = replace(
        config.dfs,
        node_hibernate_interval=config.dfs.node_expiry_interval - 1e-3,
    )
    cfg = config.with_(dfs=dfs)
    system = MoonSystem(cfg, cluster=Cluster(nodes), obs=obs)
    return system
