"""Run results: what an experiment records for each executed job."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mapreduce.job import Job, JobState
from ..metrics import ExecutionProfile, RunMetrics


@dataclass(frozen=True)
class JobResult:
    """Outcome + metrics of one job on one system."""

    job_id: str
    workload: str
    state: str
    elapsed: Optional[float]
    metrics: RunMetrics
    failure_reason: Optional[str]

    @staticmethod
    def from_run(system, job: Job) -> "JobResult":
        policy = system.config.scheduler.kind
        return JobResult(
            job_id=job.job_id,
            workload=job.spec.name,
            state=job.state.value,
            elapsed=job.elapsed,
            metrics=RunMetrics.from_job(job, system.namenode, policy),
            failure_reason=job.failure_reason,
        )

    @property
    def succeeded(self) -> bool:
        return self.state == JobState.SUCCEEDED.value

    @property
    def profile(self) -> ExecutionProfile:
        return self.metrics.profile

    def summary(self) -> str:
        elapsed = f"{self.elapsed:.0f}s" if self.elapsed is not None else "DNF"
        return (
            f"{self.workload:<12} {self.state:<10} {elapsed:>8}  "
            f"dupTasks={self.metrics.duplicated_tasks:<4} "
            f"reexec={self.metrics.map_reexecutions:<4} "
            f"fetchFail={self.metrics.fetch_failures}"
        )
