"""Snapshot/resume checkpoints: pickle a mid-run world to disk.

A week-long serving stream should not have to be re-simulated from
``t=0`` to inspect hour 150: :func:`save_snapshot` captures a *root*
object — typically a :class:`~repro.service.MoonService` mid-
:meth:`~repro.service.MoonService.advance`, or the
:class:`~repro.core.MoonSystem` beneath it — and
:func:`load_snapshot` restores it in a fresh process so the run
continues from the captured instant.

What makes this exact rather than approximate:

* the pickled object graph reaches the :class:`~repro.simulation.
  Simulation` and with it the pending event queue, the named RNG
  registry (every ``Generator``'s bit-stream position) and the
  monotonic event sequence counter, so ``advance(t1); save; load;
  advance(t2)`` replays the *same events with the same draws* as a
  straight ``advance(t2)``;
* the only state the graph cannot reach — process-global id counters
  kept as class attributes (``Transfer._ids``, ``Job._ids``, ...) —
  is captured alongside the root and reassigned on load, so ids
  allocated after a resume continue where the snapshot left off
  instead of colliding with pre-snapshot ones;
* every long-lived callback in the tree (engine events, transfer
  completions, cluster lifecycle listeners, queue estimators) is a
  bound method or a :func:`functools.partial` of one — never a local
  closure — precisely so this module can exist.  A stray lambda shows
  up here as a loud :class:`~repro.errors.SnapshotError`, not a
  corrupted checkpoint.

The composition with the PR 8 NameNode journal is deliberate: the
journal makes *metadata* durable against NameNode crashes inside a
run; a snapshot makes the *whole world* durable against process exits
between runs.  A snapshot taken with journalling on simply carries the
in-memory journal records with it.

Restoring counters is process-global (they are class attributes), so
interleaving a resumed run with unrelated fresh systems in the same
process is not supported — the CLI resume path is one world per
process, which is also the sweep runner's execution model.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, BinaryIO, Dict, Union

from ..errors import SnapshotError

#: Bump on any incompatible change to the payload layout.
SNAPSHOT_VERSION = 1

_MAGIC = b"REPROSNAP\n"


def _counter_classes() -> Dict[str, type]:
    """The class-attribute id counters a pickled instance graph misses.

    Imported lazily: this module sits in ``core`` and must not create
    import cycles with the layers it snapshots.
    """
    from ..dfs.client import WriteOp
    from ..dfs.types import BlockInfo
    from ..mapreduce.job import Job
    from ..mapreduce.task import TaskAttempt
    from ..net.base import Transfer

    return {
        "net.Transfer": Transfer,
        "mapreduce.TaskAttempt": TaskAttempt,
        "mapreduce.Job": Job,
        "dfs.WriteOp": WriteOp,
        "dfs.BlockInfo": BlockInfo,
    }


def snapshot_bytes(root: Any) -> bytes:
    """Serialize ``root`` plus the global id counters to bytes."""
    payload = {
        "version": SNAPSHOT_VERSION,
        "root": root,
        # itertools.count pickles with its current value, so the
        # counters restore mid-sequence for free.
        "counters": {
            name: cls._ids for name, cls in _counter_classes().items()
        },
    }
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"unpicklable state in the snapshot graph: {exc!r} — every "
            "long-lived callback must be a bound method or a partial of "
            "one, never a local closure"
        ) from exc
    return _MAGIC + body


def restore_bytes(data: bytes) -> Any:
    """Inverse of :func:`snapshot_bytes`: reinstate counters, return root."""
    if not data.startswith(_MAGIC):
        raise SnapshotError("not a repro snapshot (bad magic)")
    try:
        payload = pickle.loads(data[len(_MAGIC):])
    except Exception as exc:
        raise SnapshotError(f"corrupt snapshot: {exc!r}") from exc
    if not isinstance(payload, dict) or "version" not in payload:
        raise SnapshotError("corrupt snapshot: missing payload envelope")
    version = payload["version"]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    classes = _counter_classes()
    for name, counter in payload["counters"].items():
        cls = classes.get(name)
        if cls is None:
            raise SnapshotError(f"snapshot carries unknown counter {name!r}")
        cls._ids = counter
    return payload["root"]


def save_snapshot(root: Any, dest: Union[str, BinaryIO]) -> None:
    """Write a snapshot of ``root`` to a path or binary file object."""
    data = snapshot_bytes(root)
    if isinstance(dest, (str, bytes)):
        with open(dest, "wb") as fh:
            fh.write(data)
    else:
        dest.write(data)


def load_snapshot(src: Union[str, BinaryIO]) -> Any:
    """Read a snapshot from a path or binary file object."""
    if isinstance(src, (str, bytes)):
        with open(src, "rb") as fh:
            data = fh.read()
    else:
        data = src.read()
    return restore_bytes(data)


def roundtrip(root: Any) -> Any:
    """snapshot + restore through memory — the property-test helper
    (a resumed world must behave exactly like the original)."""
    buf = io.BytesIO()
    save_snapshot(root, buf)
    buf.seek(0)
    return load_snapshot(buf)
