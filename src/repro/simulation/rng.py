"""Deterministic named random streams.

Every stochastic component of a run draws from its own named
``numpy.random.Generator`` derived from a single root seed, so two
components never perturb each other's draws and full runs are exactly
reproducible (and comparable across policies, which is how the paper's
emulation kept traces identical across schedulers).
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Hands out independent, reproducible generators keyed by name."""

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, int):
            raise TypeError("root_seed must be an int")
        self._root_seed = int(root_seed) & 0xFFFFFFFF
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the root seed with a CRC32 of the name, so
        the mapping is stable across processes and Python versions.
        The handle itself is stable for the registry's lifetime —
        callers on hot paths (the NameNode's read shuffle, placement)
        resolve once and keep it rather than paying a lookup per event.
        """
        try:
            return self._streams[name]
        except KeyError:
            key = zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF
            gen = np.random.default_rng([self._root_seed, key])
            self._streams[name] = gen
            return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Indexed child stream, e.g. one per node: ``spawn("trace", 7)``."""
        return self.stream(f"{name}/{index}")
