"""Discrete-event simulation substrate (S1).

The MOON paper emulated a volunteer system by suspending/resuming real
Hadoop processes from synthetic traces; this package provides the
equivalent simulated clock on which the whole reproduction runs.
"""

from .engine import (
    PRIORITY_HEARTBEAT,
    PRIORITY_NODE_STATE,
    PRIORITY_PERIODIC,
    PRIORITY_TRANSFER,
    PeriodicTask,
    Simulation,
)
from ..obs import Observability, ObsConfig
from .event import Event, EventQueue
from .rng import RngRegistry
from .sampling import StreamSampler

__all__ = [
    "Simulation",
    "Observability",
    "ObsConfig",
    "PeriodicTask",
    "Event",
    "EventQueue",
    "RngRegistry",
    "StreamSampler",
    "PRIORITY_NODE_STATE",
    "PRIORITY_TRANSFER",
    "PRIORITY_HEARTBEAT",
    "PRIORITY_PERIODIC",
]
