"""Vectorised sampling behind the named-stream determinism contract.

Hot loops that draw one variate at a time pay the full numpy Generator
call overhead per draw.  :class:`StreamSampler` prefetches a block of
*standard* draws (``standard_exponential`` / ``standard_normal`` /
``random``) and serves scalars out of the block with the scale/shift
applied per call.

The whole point is that this is **byte-identical** to calling the
Generator's scalar methods in the same order on the same stream:

* numpy guarantees ``gen.standard_exponential(size=n)`` consumes the
  bitstream exactly like ``n`` scalar calls and returns the same
  values (same for ``standard_normal`` and ``random``);
* the scalar distribution methods are thin transforms of the standard
  draw — ``exponential(s) == s * std_exp``, ``normal(m, s) == m + s *
  std_norm``, ``uniform(a, b) == a + (b - a) * u`` — and this class
  applies the identical IEEE-754 double operations.

The contract holds only while the sampler **owns its stream
exclusively** and every draw stays in one distribution *family* (the
uniform family covers both ``random`` and ``uniform``; exponential and
normal each stand alone — mixing families would reorder bitstream
consumption relative to the scalar reference).  The family is locked on
first use and a draw from another family raises.
``tests/test_sampling.py`` pins the equivalence per family with
hypothesis across block sizes, call counts and parameters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SimulationError

#: Draw families.  ``random`` and ``uniform`` share the double stream.
_EXP = "exponential"
_NORM = "normal"
_DBL = "uniform"


class StreamSampler:
    """Block-prefetching scalar sampler over one exclusive stream."""

    __slots__ = ("rng", "block", "_family", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, block: int = 1024) -> None:
        if block < 1:
            raise SimulationError("block size must be >= 1")
        self.rng = rng
        self.block = block
        self._family: Optional[str] = None
        self._buf: Optional[np.ndarray] = None
        self._pos = 0

    # ------------------------------------------------------------------
    def _next(self, family: str) -> float:
        if self._family is None:
            self._family = family
        elif self._family != family:
            raise SimulationError(
                f"StreamSampler is locked to the {self._family} family; "
                f"use a separate named stream for {family} draws"
            )
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            if family is _EXP:
                buf = self.rng.standard_exponential(size=self.block)
            elif family is _NORM:
                buf = self.rng.standard_normal(size=self.block)
            else:
                buf = self.rng.random(size=self.block)
            self._buf = buf
            self._pos = 0
        value = buf[self._pos]
        self._pos += 1
        return value

    # ------------------------------------------------------------------
    def exponential(self, scale: float = 1.0) -> float:
        """Same value as ``Generator.exponential(scale)`` at this point
        of the stream."""
        return float(scale * self._next(_EXP))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Same value as ``Generator.normal(loc, scale)``."""
        return float(loc + scale * self._next(_NORM))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Same value as ``Generator.uniform(low, high)``."""
        return float(low + (high - low) * self._next(_DBL))

    def random(self) -> float:
        """Same value as ``Generator.random()``."""
        return float(self._next(_DBL))


__all__ = ["StreamSampler"]
