"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``: lower priority runs
first at equal times, and the monotonically increasing sequence number
makes execution order fully deterministic.

Events come in two flavours, mirroring thread semantics:

* **foreground** (default) — real work: compute steps, transfers,
  trace-driven suspend/resume.  These keep a drain-style
  :meth:`~repro.simulation.engine.Simulation.run` alive.
* **daemon** — infrastructure that re-arms itself forever (heartbeats,
  replication scans, throttle sampling).  A simulation whose queue
  holds only daemon events is *idle* and a horizonless ``run()``
  terminates.

Performance notes (this is the innermost loop of every experiment):

* heap entries are ``(time, priority, seq, event)`` tuples, so sift
  comparisons stay in C (tuple-vs-tuple on floats/ints) and never call
  back into Python — ``seq`` is unique, so the :class:`Event` payload
  itself is never compared;
* cancellation is *lazy*: a cancelled event stays in the heap (marked
  dead) and is skipped on pop, with a compaction pass once dead
  entries outnumber live ones, so cancel is O(1) and the heap cannot
  grow without bound under heavy cancel traffic (retry storms,
  speculative-copy kills).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

#: Compaction is skipped below this many dead entries — rebuilding a
#: tiny heap costs more than skipping a few stale pops.
COMPACT_MIN_DEAD = 256


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "cancelled", "daemon",
        "_queue", "_in_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue",
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self._queue = queue
        self._in_queue = True

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Cancelling an event that already fired (or was cancelled) is a
        harmless no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._in_queue:
                self._queue._note_cancelled(self)

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        kind = "daemon " if self.daemon else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {kind}{name} {state}>"


class EventQueue:
    """A binary-heap event queue with lazy deletion of cancelled events.

    Tracks live totals separately for foreground and daemon events so
    the engine can detect the *idle* state (only daemons pending).
    """

    def __init__(self) -> None:
        #: Heap of ``(time, priority, seq, Event)`` — see module notes.
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0
        self._live_foreground = 0
        #: Cancelled entries still sitting in the heap.
        self._dead = 0
        #: ``(time, priority)`` of the batch the engine is currently
        #: executing, or ``None`` outside batched dispatch.  While set,
        #: a push that sorts *before* this key raises the preempted
        #: flag so the engine hands control back to the heap — exactly
        #: what the sequential loop's per-event re-peek would do.
        self._batch_key: Optional[Tuple[float, int]] = None
        self._batch_preempted = False

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def foreground(self) -> int:
        """Number of live non-daemon events."""
        return self._live_foreground

    def _note_removed(self, event: Event) -> None:
        self._live -= 1
        if not event.daemon:
            self._live_foreground -= 1
        event._in_queue = False

    def _note_cancelled(self, event: Event) -> None:
        self._note_removed(event)
        self._dead += 1
        if self._dead > COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify (amortised O(1) per cancel)."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    def push(
        self,
        time: float,
        priority: int,
        fn: Callable,
        args: tuple,
        daemon: bool = False,
    ) -> Event:
        seq = next(self._counter)
        event = Event(time, priority, seq, fn, args, self, daemon)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        if not daemon:
            self._live_foreground += 1
        if self._batch_key is not None and (time, priority) < self._batch_key:
            self._batch_preempted = True
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                self._dead -= 1
                continue
            self._note_removed(event)
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, priority)`` of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        head = heap[0]
        return (head[0], head[1])

    def pop_batch(self) -> List[Event]:
        """Pop every live event sharing the earliest ``(time, priority)``.

        Events come out in ``seq`` order — the exact order the
        sequential loop would pop them one at a time.  The caller owns
        dispatch; items it does not execute (early stop, preemption by
        a lower-key push) must go back via :meth:`requeue`.
        """
        heap = self._heap
        batch: List[Event] = []
        time = 0.0
        priority = 0
        while heap:
            entry = heapq.heappop(heap)
            event = entry[3]
            if event.cancelled:
                self._dead -= 1
                continue
            self._note_removed(event)
            batch.append(event)
            time = entry[0]
            priority = entry[1]
            break
        if not batch:
            raise SimulationError("pop from empty event queue")
        while heap and heap[0][0] == time and heap[0][1] == priority:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                self._dead -= 1
                continue
            self._note_removed(event)
            batch.append(event)
        return batch

    def requeue(self, event: Event) -> None:
        """Put back a popped-but-unexecuted live event.

        The original ``(time, priority, seq)`` key is preserved, so a
        requeued batch remainder sorts exactly where the sequential
        loop would have found it — before anything pushed later.
        """
        heapq.heappush(
            self._heap, (event.time, event.priority, event.seq, event)
        )
        event._in_queue = True
        self._live += 1
        if not event.daemon:
            self._live_foreground += 1

    def begin_batch(self, key: Tuple[float, int]) -> None:
        self._batch_key = key
        self._batch_preempted = False

    def end_batch(self) -> None:
        self._batch_key = None
        self._batch_preempted = False
