"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``: lower priority runs
first at equal times, and the monotonically increasing sequence number
makes execution order fully deterministic.

Events come in two flavours, mirroring thread semantics:

* **foreground** (default) — real work: compute steps, transfers,
  trace-driven suspend/resume.  These keep a drain-style
  :meth:`~repro.simulation.engine.Simulation.run` alive.
* **daemon** — infrastructure that re-arms itself forever (heartbeats,
  replication scans, throttle sampling).  A simulation whose queue
  holds only daemon events is *idle* and a horizonless ``run()``
  terminates.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "cancelled", "daemon",
        "_queue", "_in_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: "EventQueue",
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.daemon = daemon
        self._queue = queue
        self._in_queue = True

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        Cancelling an event that already fired (or was cancelled) is a
        harmless no-op.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._in_queue:
                self._queue._note_removed(self)

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        kind = "daemon " if self.daemon else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {kind}{name} {state}>"


class EventQueue:
    """A binary-heap event queue with lazy deletion of cancelled events.

    Tracks live totals separately for foreground and daemon events so
    the engine can detect the *idle* state (only daemons pending).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._live_foreground = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def foreground(self) -> int:
        """Number of live non-daemon events."""
        return self._live_foreground

    def _note_removed(self, event: Event) -> None:
        self._live -= 1
        if not event.daemon:
            self._live_foreground -= 1
        event._in_queue = False

    def push(
        self,
        time: float,
        priority: int,
        fn: Callable,
        args: tuple,
        daemon: bool = False,
    ) -> Event:
        event = Event(time, priority, next(self._counter), fn, args, self, daemon)
        heapq.heappush(self._heap, event)
        self._live += 1
        if not daemon:
            self._live_foreground += 1
        return event

    def pop(self) -> Event:
        """Pop the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._note_removed(event)
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
