"""The discrete-event simulation engine.

A :class:`Simulation` owns the clock, the event queue and the random
streams.  Components schedule callbacks with :meth:`Simulation.call_at`
or :meth:`Simulation.call_after`; both return cancellable
:class:`~repro.simulation.event.Event` handles.

Priorities (lower runs first at the same timestamp):

====================  ======
purpose               value
====================  ======
node suspend/resume   -10
transfer completion     0
heartbeats             10
scheduler/periodic     20
====================  ======

Keeping node state changes first guarantees that anything observing the
cluster at time *t* sees the availability that holds *at* t.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

import numpy as np

from ..errors import SimulationError
from ..obs import Observability, current_default
from .event import Event, EventQueue
from .rng import RngRegistry

PRIORITY_NODE_STATE = -10
PRIORITY_TRANSFER = 0
PRIORITY_HEARTBEAT = 10
PRIORITY_PERIODIC = 20


class Simulation:
    """Clock + event queue + named RNG streams."""

    def __init__(self, seed: int = 0, obs: Optional[Observability] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._rng = RngRegistry(seed)
        self._running = False
        self._executed = 0
        #: Default dispatch mode for :meth:`run`.  Batched dispatch
        #: drains every event sharing ``(time, priority)`` in one heap
        #: pass; it is proven event-checksum-identical to the
        #: sequential loop (``tests/test_batched_dispatch.py``), which
        #: stays available via ``run(batch=False)`` as the reference.
        self.batch_dispatch = True
        #: Observability bundle (tracer/metrics/profiler) — falls back
        #: to the ambient default installed by
        #: :func:`repro.obs.default_observability`, else a fresh
        #: all-off bundle.  Instrumented components reach it via
        #: ``sim.obs``; with everything off the dispatch loop is
        #: untouched.
        if obs is None:
            obs = current_default() or Observability()
        self.obs = obs
        #: Optional trace hook ``fn(time, event)`` for debugging.
        self.trace_hook: Optional[Callable[[float, Event], None]] = None

    # ------------------------------------------------------------------
    # Clock & RNG
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (monitoring/benchmarks)."""
        return self._executed

    def rng(self, name: str) -> np.random.Generator:
        """Named deterministic random stream.

        The returned generator handle is stable for the lifetime of the
        simulation — hot callers (heartbeat judgements, transfer
        completions, the NameNode's read shuffles) should resolve their
        stream once and keep the handle instead of paying a registry
        lookup per event.
        """
        return self._rng.stream(name)

    def rng_indexed(self, name: str, index: int) -> np.random.Generator:
        return self._rng.spawn(name, index)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable,
        *args,
        priority: int = PRIORITY_PERIODIC,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        ``daemon=True`` marks infrastructure events (heartbeats,
        periodic scans) that never keep a horizonless :meth:`run`
        alive on their own.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time:.3f} < now {self._now:.3f}"
            )
        return self._queue.push(time, priority, fn, args, daemon=daemon)

    def call_after(
        self,
        delay: float,
        fn: Callable,
        *args,
        priority: int = PRIORITY_PERIODIC,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, priority, fn, args, daemon=daemon)

    def pending_events(self) -> int:
        return len(self._queue)

    def pending_foreground_events(self) -> int:
        """Live non-daemon events (the ones that represent real work)."""
        return self._queue.foreground

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Execute one popped event: trace hook, profiler bracketing
        and the executed-events count.  The single dispatch path shared
        by :meth:`run` (both modes) and :meth:`step`, so every consumer
        sees identical accounting.

        The wall-clock profiler sits outside the determinism boundary:
        when armed, each callback is bracketed with perf_counter, but
        the event sequence (and everything the sim clock or RNGs see)
        is identical to an unprofiled run.
        """
        if self.trace_hook is not None:
            self.trace_hook(self._now, event)
        profiler = self.obs.profiler
        if profiler is None:
            event.fn(*event.args)
        else:
            t0 = perf_counter()
            event.fn(*event.args)
            profiler.note(
                getattr(event.fn, "__qualname__", repr(event.fn)),
                perf_counter() - t0,
            )
        self._executed += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        batch: Optional[bool] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, a
        ``stop_when`` predicate returns true, or ``max_events`` fire.

        A *horizonless* call (``until is None``) additionally stops as
        soon as only daemon events remain — otherwise self-re-arming
        infrastructure (heartbeats, periodic scans) would spin forever.

        ``batch`` selects the dispatch mode (default: the simulation's
        :attr:`batch_dispatch`).  Batched mode pops every event sharing
        ``(time, priority)`` in one heap drain; ``batch=False`` is the
        sequential reference loop the property suite compares against.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if batch is None:
            batch = self.batch_dispatch
        self._running = True
        try:
            if batch:
                return self._run_batched(until, max_events, stop_when)
            return self._run_sequential(until, max_events, stop_when)
        finally:
            self._running = False

    def _run_sequential(self, until, max_events, stop_when) -> float:
        fired = 0
        # The dispatch loop runs hundreds of thousands of times per
        # experiment: bind the queue internals once instead of paying
        # attribute/property chains per event.
        queue = self._queue
        peek = queue.peek_time
        pop = queue.pop
        dispatch = self._dispatch
        while queue._live:
            if until is None and queue._live_foreground == 0:
                break
            if stop_when is not None and stop_when():
                break
            next_time = peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = pop()
            self._now = event.time
            dispatch(event)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def _run_batched(self, until, max_events, stop_when) -> float:
        """Batched same-instant dispatch.

        Equivalence with the sequential loop hinges on three rules:

        * a push that sorts *before* the executing batch key sets the
          queue's preempted flag — the unexecuted remainder goes back
          on the heap (original keys, so original order) and the outer
          loop re-peeks, exactly like the per-event re-peek would;
        * the sequential loop's pre-pop checks (daemon-idle,
          ``stop_when``) re-run between batch items, with the popped
          remainder counted as still queued for the daemon-idle test;
        * events cancelled by an earlier item in the same batch are
          skipped, matching lazy deletion on pop.
        """
        fired = 0
        queue = self._queue
        peek_key = queue.peek_key
        pop_batch = queue.pop_batch
        dispatch = self._dispatch
        while queue._live:
            if until is None and queue._live_foreground == 0:
                break
            if stop_when is not None and stop_when():
                break
            key = peek_key()
            if key is None:
                break
            if until is not None and key[0] > until:
                self._now = until
                break
            events = pop_batch()
            self._now = key[0]
            queue.begin_batch(key)
            i = 0
            n = len(events)
            executed_any = False
            stop = False
            try:
                while i < n:
                    event = events[i]
                    if event.cancelled:
                        i += 1
                        continue
                    if executed_any:
                        # Re-run the sequential loop's pre-pop checks.
                        # For the daemon-idle test the unexecuted
                        # remainder (events[i:]) still counts as
                        # queued, because sequentially it would be.
                        if until is None and queue._live_foreground == 0:
                            fg_left = sum(
                                1
                                for ev in events[i:]
                                if not ev.daemon and not ev.cancelled
                            )
                            if fg_left == 0:
                                stop = True
                                break
                        if stop_when is not None and stop_when():
                            stop = True
                            break
                    dispatch(event)
                    executed_any = True
                    fired += 1
                    i += 1
                    if max_events is not None and fired >= max_events:
                        stop = True
                        break
                    if queue._batch_preempted:
                        break
            finally:
                queue.end_batch()
                for ev in events[i:]:
                    if not ev.cancelled:
                        queue.requeue(ev)
            if stop:
                break
        else:
            if until is not None and until > self._now:
                self._now = until
        return self._now

    def step(self) -> bool:
        """Execute exactly one event through the same dispatch path as
        :meth:`run` (trace hook, profiler, executed-events accounting);
        return False if the queue is empty."""
        if self._running:
            raise SimulationError("step() is not allowed while run() is active")
        if not self._queue:
            return False
        self._running = True
        try:
            event = self._queue.pop()
            self._now = event.time
            self._dispatch(event)
        finally:
            self._running = False
        return True


class PeriodicTask:
    """Re-schedules ``fn()`` every ``interval`` seconds until stopped.

    Periodic work is infrastructure, so its events default to *daemon*:
    they never keep a horizonless :meth:`Simulation.run` alive.  Pass
    ``daemon=False`` for a periodic task that represents real workload.
    """

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        fn: Callable[[], None],
        *,
        priority: int = PRIORITY_PERIODIC,
        start_after: Optional[float] = None,
        daemon: bool = True,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._priority = priority
        self._daemon = daemon
        self._stopped = False
        first = interval if start_after is None else start_after
        self._event = sim.call_after(
            first, self._tick, priority=priority, daemon=daemon
        )

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.call_after(
                self._interval,
                self._tick,
                priority=self._priority,
                daemon=self._daemon,
            )

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
