"""Dedicated-tier autoscaling for the serving front-end.

The paper sizes the dedicated tier statically and asks how many
dedicated nodes are "enough" (Section VII / Fig. 7); a long-running
service can answer that question *dynamically*.  The
:class:`Autoscaler` runs on the simulation clock as a periodic
controller, observes three signals —

* **queue depth** (:class:`~repro.service.queue.JobQueue` backlog),
* **recent deadline-miss rate** over a sliding window of finalized
  arrivals (completions, failures and front-door rejections alike),
* **dedicated-tier occupancy** (busy slots / total slots on dedicated
  trackers),

— and grows or shrinks the tier through
:meth:`~repro.cluster.Cluster.provision_dedicated` /
:meth:`~repro.cluster.Cluster.decommission_dedicated` (graceful drain:
a decommissioning node finishes its running tasks, accepts nothing
new, then leaves every candidate pool).  Three policies ship:

* **static** — the paper's fixed tier; the controller only meters cost,
* **reactive** — hysteresis bands on queue depth, miss rate and
  cluster saturation, with separate up/down cooldowns,
* **predictive** — an EWMA over the arrival rate maps smoothed demand
  to a target tier size, pre-scaling for the next burst while the
  current one is still draining.

Every action is recorded as a :class:`ScaleDecision` audit row, and
the tier's cost is integrated into **dedicated node-hours** (a
draining node still burns its machine), so policies compare on cost
*and* SLO in the :class:`~repro.service.slo.ServiceReport`.

Determinism: the controller consumes only simulated state and runs on
the simulated clock, so a seeded run — decisions, audit log, report —
is byte-identical across processes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..config import NodeSpec
from ..errors import ConfigError
from ..plotting import table
from ..simulation import PRIORITY_PERIODIC, PeriodicTask

AUTOSCALE_POLICIES = ("static", "reactive", "predictive")

HOUR = 3600.0


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller knobs; defaults tuned for the bursty serve scenario."""

    #: "static" | "reactive" | "predictive".
    policy: str = "static"
    #: Seconds between control rounds.
    interval: float = 30.0
    #: Tier bounds.  ``min_dedicated`` must be >= 1 on clusters with no
    #: volatile capacity (the service would otherwise drain to zero).
    min_dedicated: int = 1
    max_dedicated: int = 6
    #: Reactive bands: scale up when the queue backlog reaches
    #: ``queue_high``, the cluster saturates, or the windowed miss rate
    #: reaches ``miss_high`` while backlog persists; scale down only
    #: when the backlog is at or below ``queue_low`` and occupancy has
    #: fallen (the hysteresis gap between the bands prevents flapping).
    queue_high: int = 4
    queue_low: int = 0
    miss_high: float = 0.10
    #: Scale up when the *whole cluster's* busy-slot fraction reaches
    #: this (a saturated cluster with an empty queue still needs nodes:
    #: admitted jobs hide backlog from the queue-depth signal).
    cluster_occupancy_high: float = 0.85
    #: Dedicated-occupancy ceiling for scale-*down*.  Default 1.0:
    #: the drain is graceful (a shedding node finishes its running
    #: tasks first), so waiting for the tier to idle before shedding
    #: only burns node-hours.
    occupancy_low: float = 1.0
    #: Sliding window (seconds) for the recent deadline-miss rate.
    miss_window: float = 1800.0
    #: Nodes added / drained per decision.
    step_up: int = 2
    step_down: int = 2
    #: Minimum seconds between consecutive scale-ups / scale-downs.
    up_cooldown: float = 30.0
    down_cooldown: float = 90.0
    #: Predictive controller: EWMA smoothing factor per round, and the
    #: demand-to-capacity map (arrivals per hour one dedicated node is
    #: provisioned for).
    ewma_alpha: float = 0.25
    jobs_per_node_hour: float = 4.0
    #: Hardware of provisioned nodes (None = the stock NodeSpec).
    node_spec: Optional[NodeSpec] = None

    def validate(self) -> None:
        if self.policy not in AUTOSCALE_POLICIES:
            raise ConfigError(f"unknown autoscale policy: {self.policy!r}")
        if self.interval <= 0:
            raise ConfigError("autoscale interval must be positive")
        if self.min_dedicated < 0:
            raise ConfigError("min_dedicated must be non-negative")
        if self.max_dedicated < max(1, self.min_dedicated):
            raise ConfigError(
                "max_dedicated must be >= max(1, min_dedicated)"
            )
        if self.queue_low > self.queue_high:
            raise ConfigError("queue_low must not exceed queue_high")
        if not 0.0 <= self.miss_high <= 1.0:
            raise ConfigError("miss_high must be in [0, 1]")
        if not 0.0 <= self.occupancy_low <= 1.0:
            raise ConfigError("occupancy_low must be in [0, 1]")
        if not 0.0 < self.cluster_occupancy_high <= 1.0:
            raise ConfigError("cluster_occupancy_high must be in (0, 1]")
        if self.miss_window <= 0:
            raise ConfigError("miss_window must be positive")
        if self.step_up < 1 or self.step_down < 1:
            raise ConfigError("scale steps must be >= 1")
        if self.up_cooldown < 0 or self.down_cooldown < 0:
            raise ConfigError("cooldowns must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if self.jobs_per_node_hour <= 0:
            raise ConfigError("jobs_per_node_hour must be positive")
        if self.node_spec is not None:
            self.node_spec.validate()


@dataclass(frozen=True)
class ScaleDecision:
    """One audit row: what the controller did and what it saw."""

    time: float
    policy: str
    #: "up" | "down".
    action: str
    #: Nodes requested (positive for both directions).
    count: int
    #: *Serving* tier size (active dedicated nodes, draining excluded)
    #: before the action and targeted after it.  Cost accounting
    #: (node-hours, ``dedicated_final``) additionally counts draining
    #: nodes — they still burn the machine until they leave.
    before: int
    after: int
    queue_depth: int
    miss_rate: Optional[float]
    occupancy: float
    #: Smoothed arrival rate per hour (predictive; None otherwise).
    ewma_rate: Optional[float]
    reason: str

    def row(self) -> list:
        return [
            f"{self.time:.0f}",
            self.action,
            f"{self.before}->{self.after}",
            self.queue_depth,
            "--" if self.miss_rate is None else f"{self.miss_rate:.2f}",
            f"{self.occupancy:.2f}",
            "--" if self.ewma_rate is None else f"{self.ewma_rate:.1f}",
            self.reason,
        ]


def render_decisions(decisions: List[ScaleDecision]) -> str:
    """The audit log as one aligned text table."""
    if not decisions:
        return "autoscale audit: no scale actions"
    return table(
        ["t s", "action", "tier", "queue", "miss", "occ", "ewma/h",
         "reason"],
        [d.row() for d in decisions],
        title=f"autoscale audit - policy={decisions[0].policy}",
    )


class Autoscaler:
    """The provisioning controller: one per :class:`MoonService` run."""

    def __init__(self, service, config: AutoscaleConfig) -> None:
        config.validate()
        self.cfg = config
        self.service = service
        self.system = service.system
        self.sim = service.sim
        self.cluster = self.system.cluster
        self.decisions: List[ScaleDecision] = []
        self.initial_dedicated = len(self.cluster.dedicated)

        volatile_slots = sum(
            n.spec.map_slots + n.spec.reduce_slots
            for n in self.cluster.volatile
        )
        if volatile_slots == 0 and config.min_dedicated < 1:
            raise ConfigError(
                "min_dedicated must be >= 1 on a cluster without volatile "
                "task slots: draining the whole dedicated tier would leave "
                "the service serving with zero capacity"
            )

        # Node-hours integration: dedicated + draining (a draining node
        # still burns the machine until it actually leaves).
        self._node_seconds = 0.0
        self._last_change = self.sim.now
        self._count = len(self.cluster.dedicated) + len(
            self.cluster.draining_nodes()
        )
        self.cluster.on_provision(self._tier_changed)
        self.cluster.on_decommission(self._tier_changed)

        # Controller state.
        self._recent: Deque[Tuple[float, bool]] = deque()
        self._arrivals_since_round = 0
        self._ewma_rate: Optional[float] = None
        self._last_up = -math.inf
        self._last_down = -math.inf
        self._task = PeriodicTask(
            self.sim,
            config.interval,
            self._control,
            priority=PRIORITY_PERIODIC,
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Signals fed by the service loop
    # ------------------------------------------------------------------
    def note_arrival(self) -> None:
        self._arrivals_since_round += 1

    def note_outcome(self, record) -> None:
        """A record reached a terminal state (finished or rejected)."""
        if record.deadline is not None:
            self._recent.append((self.sim.now, record.missed_deadline))

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def recent_miss_rate(self) -> Optional[float]:
        cutoff = self.sim.now - self.cfg.miss_window
        recent = self._recent
        while recent and recent[0][0] < cutoff:
            recent.popleft()
        if not recent:
            return None
        return sum(1 for _, missed in recent if missed) / len(recent)

    def dedicated_occupancy(self) -> float:
        """Busy fraction of the (non-draining) dedicated tier's slots."""
        trackers = self.system.jobtracker.trackers
        total = 0
        busy = 0
        for node in self.cluster.dedicated:
            tracker = trackers[node.node_id]
            total += tracker.total_slots()
            busy += tracker.busy_slots()
        return busy / total if total else 0.0

    def cluster_occupancy(self) -> float:
        """Busy fraction of every *usable* tracker's slots — the
        saturation signal the queue depth hides once jobs are admitted."""
        total = 0
        busy = 0
        for tracker in self.system.jobtracker.trackers.values():
            if not tracker.usable:
                continue
            total += tracker.total_slots()
            busy += tracker.busy_slots()
        return busy / total if total else 1.0

    def tier_size(self) -> int:
        """Dedicated + draining: what the operator is paying for."""
        return len(self.cluster.dedicated) + len(
            self.cluster.draining_nodes()
        )

    def node_hours(self) -> float:
        """Dedicated node-hours consumed so far (cost axis)."""
        return (
            self._node_seconds
            + self._count * (self.sim.now - self._last_change)
        ) / HOUR

    def _tier_changed(self, _node) -> None:
        now = self.sim.now
        self._node_seconds += self._count * (now - self._last_change)
        self._last_change = now
        self._count = self.tier_size()

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _control(self) -> None:
        cfg = self.cfg
        arrived = self._arrivals_since_round
        self._arrivals_since_round = 0
        inst_rate = arrived * (HOUR / cfg.interval)
        if self._ewma_rate is None:
            self._ewma_rate = inst_rate
        else:
            self._ewma_rate += cfg.ewma_alpha * (
                inst_rate - self._ewma_rate
            )
        if cfg.policy == "static":
            return

        queue_depth = len(self.service.queue)
        miss = self.recent_miss_rate()
        occupancy = self.dedicated_occupancy()
        if cfg.policy == "reactive":
            self._reactive(queue_depth, miss, occupancy)
        else:
            self._predictive(queue_depth, miss, occupancy)

    def _reactive(
        self, queue_depth: int, miss: Optional[float], occupancy: float
    ) -> None:
        cfg = self.cfg
        saturation = self.cluster_occupancy()
        # Recent misses justify capacity only while demand persists
        # (queue or saturated cluster): nodes cannot un-miss the past.
        missing = (
            miss is not None
            and miss >= cfg.miss_high
            and queue_depth > cfg.queue_low
        )
        hot = (
            queue_depth >= cfg.queue_high
            or missing
            or saturation >= cfg.cluster_occupancy_high
        )
        # Shedding ignores the (stale) miss window: the drain is
        # graceful, so a wrong shed costs one provision later, while
        # holding nodes for a 30-minute-old burst costs node-hours now.
        cold = (
            queue_depth <= cfg.queue_low
            and occupancy <= cfg.occupancy_low
            and saturation < cfg.cluster_occupancy_high
        )
        if hot:
            reasons = []
            if queue_depth >= cfg.queue_high:
                reasons.append(f"queue {queue_depth}>={cfg.queue_high}")
            if missing:
                reasons.append(f"miss {miss:.2f}>={cfg.miss_high:.2f}")
            if saturation >= cfg.cluster_occupancy_high:
                reasons.append(
                    f"sat {saturation:.2f}>={cfg.cluster_occupancy_high:.2f}"
                )
            self._scale_up(
                cfg.step_up, queue_depth, miss, occupancy,
                reason=" & ".join(reasons),
            )
        elif cold:
            self._scale_down(
                cfg.step_down, queue_depth, miss, occupancy,
                reason=(
                    f"idle: queue {queue_depth}<={cfg.queue_low}, "
                    f"occ {occupancy:.2f}<={cfg.occupancy_low:.2f}"
                ),
            )

    def _predictive(
        self, queue_depth: int, miss: Optional[float], occupancy: float
    ) -> None:
        cfg = self.cfg
        desired = math.ceil(self._ewma_rate / cfg.jobs_per_node_hour)
        desired = max(cfg.min_dedicated, min(cfg.max_dedicated, desired))
        # Compare against the nodes that will remain serving (draining
        # ones are already leaving and must not mask a deficit).
        current = len(self.cluster.dedicated)
        if desired > current:
            self._scale_up(
                desired - current, queue_depth, miss, occupancy,
                reason=(
                    f"ewma {self._ewma_rate:.1f}/h wants {desired} nodes"
                ),
            )
        elif desired < current and queue_depth <= cfg.queue_low:
            # A decayed arrival rate alone must not shed capacity while
            # a backlog from the last burst is still queued.
            self._scale_down(
                min(cfg.step_down, current - desired),
                queue_depth, miss, occupancy,
                reason=(
                    f"ewma {self._ewma_rate:.1f}/h wants {desired} nodes"
                ),
            )

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def _scale_up(
        self,
        count: int,
        queue_depth: int,
        miss: Optional[float],
        occupancy: float,
        reason: str,
    ) -> None:
        cfg = self.cfg
        now = self.sim.now
        if now - self._last_up < cfg.up_cooldown:
            return
        # The ceiling bounds *cost* (draining nodes still count).
        count = min(count, cfg.max_dedicated - self.tier_size())
        if count <= 0:
            return
        before = len(self.cluster.dedicated)
        for _ in range(count):
            self.cluster.provision_dedicated(cfg.node_spec)
        self._last_up = now
        self._record("up", count, before, queue_depth, miss, occupancy,
                     reason, after=before + count)

    def _scale_down(
        self,
        count: int,
        queue_depth: int,
        miss: Optional[float],
        occupancy: float,
        reason: str,
    ) -> None:
        cfg = self.cfg
        now = self.sim.now
        # One cooldown guards both flap directions: shedding right
        # after a scale-up would undo a decision the load just earned.
        if (
            now - self._last_down < cfg.down_cooldown
            or now - self._last_up < cfg.down_cooldown
        ):
            return
        before = len(self.cluster.dedicated)
        # Clamp against the nodes that will actually remain serving:
        # draining ones are already on their way out and must not be
        # counted toward the floor.
        count = min(count, before - cfg.min_dedicated)
        if count <= 0:
            return
        victims = self._pick_victims(count)
        if not victims:
            return
        for node_id in victims:
            self.cluster.decommission_dedicated(node_id)
        self._last_down = now
        self._record("down", len(victims), before, queue_depth, miss,
                     occupancy, reason,
                     after=before - len(victims))

    def _pick_victims(self, count: int) -> List[int]:
        """Idle-most first, newest id breaking ties — deterministic."""
        trackers = self.system.jobtracker.trackers
        candidates = sorted(
            (
                (
                    len(trackers[n.node_id].attempts),
                    -n.node_id,
                    n.node_id,
                )
                for n in self.cluster.dedicated
            ),
        )
        return [node_id for _, _, node_id in candidates[:count]]

    def _record(
        self,
        action: str,
        count: int,
        before: int,
        queue_depth: int,
        miss: Optional[float],
        occupancy: float,
        reason: str,
        after: int,
    ) -> None:
        self.decisions.append(
            ScaleDecision(
                time=self.sim.now,
                policy=self.cfg.policy,
                action=action,
                count=count,
                before=before,
                after=after,
                queue_depth=queue_depth,
                miss_rate=miss,
                occupancy=occupancy,
                ewma_rate=(
                    self._ewma_rate
                    if self.cfg.policy == "predictive"
                    else None
                ),
                reason=reason,
            )
        )
        # Flight recorder: every scale decision doubles as a
        # zero-length span on the autoscale lane plus a registry count.
        obs = self.sim.obs
        obs.metrics.counter(f"service/autoscale/{action}").inc()
        tracer = obs.tracer
        if tracer.enabled:
            tracer.span(
                f"autoscale.{action}",
                "autoscale",
                self.sim.now,
                self.sim.now,
                count=count,
                before=before,
                after=after,
                queue_depth=queue_depth,
                reason=reason,
            )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._task.stop()
