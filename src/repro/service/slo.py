"""SLO accounting: per-job latency records rolled into a ServiceReport.

Response time is arrival-to-completion (queue wait included), the
metric a serving front-end is judged on.  Goodput counts only jobs
completed within their deadline — finishing late is throughput, not
goodput.  Tenant fairness is Jain's index over per-tenant *served*
simulation seconds, so one starved tenant drags the index visibly
below 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import HOUR
from ..metrics.report import latency_quantiles
from ..plotting import table
from .arrivals import JobArrival


class ServedState(enum.Enum):
    """Terminal state of one arrival, from the service's perspective."""

    #: Admitted and finished successfully.
    SUCCEEDED = "succeeded"
    #: Admitted but the job failed inside the cluster.
    FAILED = "failed"
    #: Rejected at the front door (queue saturated).
    REJECTED = "rejected"
    #: Arrived after the admission horizon; never queued.
    DROPPED = "dropped"
    #: Still queued when the service stopped.
    QUEUED = "queued"
    #: Admitted but still running when the service stopped.
    UNFINISHED = "unfinished"


#: States that occupied cluster resources.
_ADMITTED = (ServedState.SUCCEEDED, ServedState.FAILED, ServedState.UNFINISHED)


@dataclass
class JobRecord:
    """Lifecycle of one arrival through the service."""

    seq: int
    arrival: JobArrival
    state: ServedState = ServedState.QUEUED
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def tenant(self) -> str:
        return self.arrival.tenant

    @property
    def workload(self) -> str:
        return self.arrival.spec.name

    @property
    def deadline(self) -> Optional[float]:
        return self.arrival.deadline

    @property
    def queue_wait(self) -> Optional[float]:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.arrival.arrival_time

    @property
    def response_time(self) -> Optional[float]:
        """Arrival to completion; None until the job finishes."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival.arrival_time

    @property
    def missed_deadline(self) -> bool:
        """Whether this job missed its SLO.

        Uniform rule, evaluated once the service has stopped: a
        deadline job misses unless it *succeeded by its deadline*.
        Rejected, dropped, failed, still-queued and still-running jobs
        all count — the paper-VIII QoS view that a drop (or a strand)
        *is* a miss for the user, applied symmetrically so a policy
        cannot lower its miss rate by parking work in the queue.
        """
        if self.deadline is None:
            return False
        if self.state is ServedState.SUCCEEDED:
            return self.finished_at > self.deadline
        return True


@dataclass(frozen=True)
class TenantSlo:
    """Aggregates for one tenant (or the whole service when
    ``tenant == "(all)"``)."""

    tenant: str
    arrived: int
    admitted: int
    completed: int
    failed: int
    rejected: int
    dropped: int
    unserved: int
    deadline_eligible: int
    deadline_misses: int
    mean_queue_wait: Optional[float]
    p50_response: Optional[float]
    p95_response: Optional[float]
    p99_response: Optional[float]
    throughput_per_hour: float
    goodput_per_hour: float
    served_seconds: float

    @property
    def miss_rate(self) -> Optional[float]:
        if self.deadline_eligible == 0:
            return None
        return self.deadline_misses / self.deadline_eligible


def _tenant_slo(
    tenant: str,
    records: Sequence[JobRecord],
    duration: float,
) -> TenantSlo:
    completed = [r for r in records if r.state is ServedState.SUCCEEDED]
    responses = [r.response_time for r in completed]
    waits = [
        r.queue_wait for r in records if r.queue_wait is not None
    ]
    eligible = [r for r in records if r.deadline is not None]
    misses = sum(1 for r in eligible if r.missed_deadline)
    good = sum(
        1
        for r in completed
        if r.deadline is None or r.finished_at <= r.deadline
    )
    hours = max(duration, 1e-9) / HOUR
    quantiles = latency_quantiles(responses)
    served = sum(
        r.finished_at - r.admitted_at
        for r in completed
        if r.admitted_at is not None
    )
    return TenantSlo(
        tenant=tenant,
        arrived=len(records),
        admitted=sum(1 for r in records if r.state in _ADMITTED),
        completed=len(completed),
        failed=sum(1 for r in records if r.state is ServedState.FAILED),
        rejected=sum(1 for r in records if r.state is ServedState.REJECTED),
        dropped=sum(1 for r in records if r.state is ServedState.DROPPED),
        unserved=sum(
            1
            for r in records
            if r.state in (ServedState.QUEUED, ServedState.UNFINISHED)
        ),
        deadline_eligible=len(eligible),
        deadline_misses=misses,
        mean_queue_wait=(sum(waits) / len(waits)) if waits else None,
        p50_response=quantiles["p50"],
        p95_response=quantiles["p95"],
        p99_response=quantiles["p99"],
        throughput_per_hour=len(completed) / hours,
        goodput_per_hour=good / hours,
        served_seconds=served,
    )


def jain_fairness(shares: Sequence[float]) -> Optional[float]:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one winner."""
    if not shares:
        return None
    total = sum(shares)
    if total <= 0:
        return None
    square_sum = sum(s * s for s in shares)
    return (total * total) / (len(shares) * square_sum)


#: Version stamp of :meth:`ServiceReport.to_dict` (and of the
#: ``repro serve/replay --json`` envelope).  Bump on any key change so
#: dashboards can detect incompatible reports instead of misreading
#: them.
REPORT_SCHEMA_VERSION = 1


def _fmt_s(v: Optional[float], decimals: int = 1) -> Optional[str]:
    return None if v is None else f"{v:.{decimals}f}"


def _fmt_pct(v: Optional[float]) -> Optional[str]:
    return None if v is None else f"{100.0 * v:.1f}%"


@dataclass(frozen=True)
class ServiceReport:
    """Everything one service run reports — deterministic given a seed."""

    policy: str
    pattern: str
    seed: int
    horizon: float
    end_time: float
    overall: TenantSlo
    tenants: List[TenantSlo]
    fairness: Optional[float]
    records: List[JobRecord] = field(repr=False, default_factory=list)
    #: Autoscale policy name when the run was autoscaled (None = the
    #: paper's fixed tier; cost fields below are None too).
    autoscale: Optional[str] = None
    #: Dedicated node-hours consumed (the cost axis policies compete
    #: on; includes draining time — a draining node still burns money).
    node_hours: Optional[float] = None
    #: Tier size when the run stopped (dedicated + draining).
    dedicated_final: Optional[int] = None
    #: Per-decision audit records (see repro.service.autoscale).
    scale_events: List = field(repr=False, default_factory=list)
    #: Provenance label of the replayed workload trace (None for
    #: synthetic arrival streams).
    trace: Optional[str] = None
    #: Preemption mode when a controller was configured ("off" |
    #: "deprioritise" | "pause"; None = no controller, the classic
    #: admission-only service).
    preempt: Optional[str] = None
    #: Per-action audit records (see repro.service.preempt).
    preempt_events: List = field(repr=False, default_factory=list)
    #: Saturation evictions by admission price (0 whenever the queue
    #: ran the classic arrival-order bound).
    evicted: int = 0
    #: Failure-detection mode when an honest detector was armed
    #: ("timeout" | "adaptive"; None = the oracle default, whose
    #: detection is perfect and whose wasted work is structurally 0).
    detector: Optional[str] = None
    #: Duplicated attempt-seconds caused by suspicion requeues (the
    #: price of detection mistakes; see ISSUE: Snippet 3 Policy B).
    wasted_work: float = 0.0
    #: Judgement trips on nodes that were actually up.
    false_positives: int = 0
    #: Tasks handed back to the scheduler past the grace window.
    requeues: int = 0
    #: Mean seconds from a real outage to its detection (None when the
    #: run saw no real trips).
    detection_mean: Optional[float] = None
    #: "on" when the NameNode write-ahead journal was enabled (None =
    #: the paper-figure default: immortal NameNode, no journal).
    journal: Optional[str] = None
    #: Simulated NameNode crash/failover events during the run.
    namenode_crashes: int = 0
    #: Mean seconds from crash to reconvergence — journal replay plus
    #: the staggered datanode block reports (None until a crash).
    recovery_mean: Optional[float] = None
    #: Journal records appended / checkpoints taken over the run.
    journal_records: int = 0
    checkpoints: int = 0
    #: Run-wide causal blame components, category -> summed seconds of
    #: response time (tracing runs only; see repro.obs.explain.blame —
    #: per job the components sum to the response time exactly).
    blame: Optional[Dict[str, float]] = None
    #: Same components, keyed per tenant.
    blame_by_tenant: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def preempt_counts(self) -> Dict[str, int]:
        """Action totals of the preemption audit log."""
        out = {"deprioritise": 0, "pause": 0, "resume": 0, "restore": 0}
        for e in self.preempt_events:
            out[e.action] += 1
        return out

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantSlo:
        for t in self.tenants:
            if t.tenant == name:
                return t
        raise KeyError(name)

    def to_dict(self) -> dict:
        """Flat summary for programmatic comparison across runs."""
        def row(t: TenantSlo) -> dict:
            return {
                "arrived": t.arrived,
                "completed": t.completed,
                "rejected": t.rejected,
                "deadline_misses": t.deadline_misses,
                "miss_rate": t.miss_rate,
                "p50": t.p50_response,
                "p95": t.p95_response,
                "p99": t.p99_response,
                "throughput_per_hour": t.throughput_per_hour,
                "goodput_per_hour": t.goodput_per_hour,
            }

        out = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "policy": self.policy,
            "pattern": self.pattern,
            "seed": self.seed,
            "overall": row(self.overall),
            "tenants": {t.tenant: row(t) for t in self.tenants},
            "fairness": self.fairness,
        }
        if self.autoscale is not None:
            out["autoscale"] = {
                "policy": self.autoscale,
                "node_hours": self.node_hours,
                "dedicated_final": self.dedicated_final,
                "scale_events": len(self.scale_events),
            }
        if self.trace is not None:
            out["trace"] = self.trace
        if self.preempt is not None:
            counts = self.preempt_counts
            out["preempt"] = {
                "mode": self.preempt,
                "deprioritisations": counts["deprioritise"],
                "pauses": counts["pause"],
                "resumes": counts["resume"],
                "restores": counts["restore"],
            }
        if self.evicted:
            out["evicted"] = self.evicted
        if self.detector is not None:
            out["detector"] = {
                "mode": self.detector,
                "wasted_work_seconds": self.wasted_work,
                "false_positives": self.false_positives,
                "requeues": self.requeues,
                "detection_mean_seconds": self.detection_mean,
            }
        if self.journal is not None:
            out["journal"] = {
                "mode": self.journal,
                "records": self.journal_records,
                "checkpoints": self.checkpoints,
                "namenode_crashes": self.namenode_crashes,
                "recovery_mean_seconds": self.recovery_mean,
            }
        if self.blame is not None:
            out["blame"] = {
                "totals": dict(self.blame),
                "by_tenant": {
                    t: dict(c) for t, c in (self.blame_by_tenant or {}).items()
                },
            }
        return out

    def summary_row(self) -> list:
        """Formatted overall cells ``[done, p50, p95, p99, miss,
        good/h, fairness]`` — the shape shared by the CLI comparison
        table and the benchmark report."""
        o = self.overall
        return [
            o.completed,
            _fmt_s(o.p50_response, 0),
            _fmt_s(o.p95_response, 0),
            _fmt_s(o.p99_response, 0),
            _fmt_pct(o.miss_rate),
            f"{o.goodput_per_hour:.2f}",
            None if self.fairness is None else f"{self.fairness:.3f}",
        ]

    def cost_row(self) -> list:
        """``summary_row`` plus the autoscale cost cells ``[node-h,
        tier, scale-ops]`` — the shape of the autoscale comparison."""
        return self.summary_row() + [
            None if self.node_hours is None else f"{self.node_hours:.2f}",
            self.dedicated_final,
            len(self.scale_events),
        ]

    def preempt_row(self) -> list:
        """``summary_row`` plus the preemption cells ``[depri,
        pauses]`` — the shape of the ``--preempt all`` comparison."""
        counts = self.preempt_counts
        return self.summary_row() + [
            counts["deprioritise"],
            counts["pause"],
        ]

    def detector_row(self) -> list:
        """``summary_row`` plus the detection-tradeoff cells
        ``[detect s, false+, requeues, wasted s]`` — the shape of the
        ``--detector all`` comparison."""
        return self.summary_row() + [
            _fmt_s(self.detection_mean),
            self.false_positives,
            self.requeues,
            f"{self.wasted_work:.0f}",
        ]

    def blame_row(self) -> list:
        """``summary_row`` plus the dominant blame cells ``[exec s,
        queue s, rework s, other s]`` — the shape of the
        ``repro explain`` comparison footer.  ``rework`` folds both
        re-execution causes (real failures and false-positive
        suspicion); ``other`` is everything else, so the four cells
        still sum to the total attributed seconds."""
        blame = self.blame or {}
        exec_s = blame.get("exec", 0.0)
        queue_s = blame.get("queue_wait", 0.0)
        rework_s = blame.get("reexec_failure", 0.0) + blame.get(
            "reexec_suspicion", 0.0
        )
        other_s = sum(blame.values()) - exec_s - queue_s - rework_s
        return self.summary_row() + [
            f"{exec_s:.0f}",
            f"{queue_s:.0f}",
            f"{rework_s:.0f}",
            f"{other_s:.0f}",
        ]

    def recovery_row(self) -> list:
        """``summary_row`` plus the failover cells ``[crashes,
        recovery s, records, ckpts]``."""
        return self.summary_row() + [
            self.namenode_crashes,
            _fmt_s(self.recovery_mean),
            self.journal_records,
            self.checkpoints,
        ]

    def render(self) -> str:
        """The service run as one aligned text table."""
        rows = []
        for t in self.tenants + [self.overall]:
            rows.append(
                [
                    t.tenant,
                    t.arrived,
                    t.completed,
                    t.rejected + t.dropped,
                    t.unserved,
                    _fmt_s(t.mean_queue_wait),
                    _fmt_s(t.p50_response),
                    _fmt_s(t.p95_response),
                    _fmt_s(t.p99_response),
                    _fmt_pct(t.miss_rate),
                    f"{t.goodput_per_hour:.2f}",
                ]
            )
        unserved = self.overall.unserved
        status = (
            "drained" if unserved == 0
            else f"stopped, {unserved} unserved"
        )
        title = (
            f"service report - pattern={self.pattern} policy={self.policy} "
            f"seed={self.seed} horizon={self.horizon / HOUR:.1f}h "
            f"({status} at {self.end_time:.0f}s)"
        )
        body = table(
            [
                "tenant", "arrived", "done", "rej", "unserved",
                "wait s", "p50 s", "p95 s", "p99 s", "miss", "good/h",
            ],
            rows,
            title=title,
        )
        fair = (
            f"tenant fairness (Jain, served seconds): {self.fairness:.3f}"
            if self.fairness is not None
            else "tenant fairness (Jain, served seconds): --"
        )
        out = body + "\n" + fair
        if self.trace is not None:
            out += f"\nreplayed trace: {self.trace}"
        if self.autoscale is not None:
            out += (
                f"\nautoscale={self.autoscale}: "
                f"{self.node_hours:.2f} dedicated node-hours, "
                f"final tier {self.dedicated_final}, "
                f"{len(self.scale_events)} scale actions"
            )
        if self.preempt is not None:
            counts = self.preempt_counts
            out += (
                f"\npreempt={self.preempt}: "
                f"{counts['deprioritise']} deprioritised, "
                f"{counts['pause']} paused, "
                f"{counts['resume']} resumed, "
                f"{counts['restore']} restored"
            )
        if self.evicted:
            out += (
                f"\nadmission prices: {self.evicted} queued jobs "
                "evicted for dearer arrivals at saturation"
            )
        if self.detector is not None:
            detect = (
                "--" if self.detection_mean is None
                else f"{self.detection_mean:.1f}s mean detection"
            )
            out += (
                f"\ndetector={self.detector}: {detect}, "
                f"{self.false_positives} false positives, "
                f"{self.requeues} suspicion requeues, "
                f"{self.wasted_work:.0f}s wasted work"
            )
        if self.journal is not None:
            recov = (
                "no crash" if self.recovery_mean is None
                else f"{self.namenode_crashes} crash(es), "
                     f"{self.recovery_mean:.1f}s mean recovery"
            )
            out += (
                f"\njournal={self.journal}: {recov}, "
                f"{self.journal_records} records, "
                f"{self.checkpoints} checkpoints"
            )
        return out


def build_report(
    records: Sequence[JobRecord],
    policy: str,
    pattern: str,
    seed: int,
    horizon: float,
    end_time: float,
    autoscale: Optional[str] = None,
    node_hours: Optional[float] = None,
    dedicated_final: Optional[int] = None,
    scale_events: Optional[List] = None,
    trace: Optional[str] = None,
    preempt: Optional[str] = None,
    preempt_events: Optional[List] = None,
    evicted: int = 0,
    detector: Optional[str] = None,
    wasted_work: float = 0.0,
    false_positives: int = 0,
    requeues: int = 0,
    detection_mean: Optional[float] = None,
    journal: Optional[str] = None,
    namenode_crashes: int = 0,
    recovery_mean: Optional[float] = None,
    journal_records: int = 0,
    checkpoints: int = 0,
    blame: Optional[Dict[str, float]] = None,
    blame_by_tenant: Optional[Dict[str, Dict[str, float]]] = None,
) -> ServiceReport:
    """Roll per-job records into the service-level report."""
    by_tenant: Dict[str, List[JobRecord]] = {}
    for r in records:
        by_tenant.setdefault(r.tenant, []).append(r)
    duration = max(end_time, horizon)
    tenants = [
        _tenant_slo(name, rs, duration)
        for name, rs in sorted(by_tenant.items())
    ]
    overall = _tenant_slo("(all)", list(records), duration)
    fairness = jain_fairness(
        [t.served_seconds for t in tenants]
    ) if len(tenants) > 1 else (1.0 if tenants else None)
    return ServiceReport(
        policy=policy,
        pattern=pattern,
        seed=seed,
        horizon=horizon,
        end_time=end_time,
        overall=overall,
        tenants=tenants,
        fairness=fairness,
        records=list(records),
        autoscale=autoscale,
        node_hours=node_hours,
        dedicated_final=dedicated_final,
        scale_events=list(scale_events or []),
        trace=trace,
        preempt=preempt,
        preempt_events=list(preempt_events or []),
        evicted=evicted,
        detector=detector,
        wasted_work=wasted_work,
        false_positives=false_positives,
        requeues=requeues,
        detection_mean=detection_mean,
        journal=journal,
        namenode_crashes=namenode_crashes,
        recovery_mean=recovery_mean,
        journal_records=journal_records,
        checkpoints=checkpoints,
        blame=blame,
        blame_by_tenant=blame_by_tenant,
    )
