"""Parallel sweep runner: policy × scale × seed grids across processes.

One simulated run answers one question; a policy comparison answers it
on *one* stream.  The questions the service layer actually gets asked
— "does EDF still win at 3x load?", "is the SJF advantage just seed
luck?" — need a grid, and a grid is embarrassingly parallel: every
cell is an independent, seed-deterministic world.  :func:`run_sweep`
fans the cells across worker processes and merges the results into a
report that is **byte-stable**: the same grid produces the identical
JSON whether it ran on 1 process or 16, today or tomorrow — cells are
keyed by their grid coordinates, ordered by grid order, and carry no
wall-clock content.  `repro diff` (or plain ``cmp``) on two sweep
files is therefore a regression test.

The scale axis multiplies the offered load (jobs/hour), not the
cluster: the paper's serving question is how policies degrade as the
same machines get busier.  Every cell re-derives its arrival stream
from its own seed, so cells never share RNG state and any subset of
the grid can be re-run in isolation to the same numbers.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from .queue import QUEUE_POLICIES

#: Bump on any incompatible change to the merged-report layout.
SWEEP_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepSpec:
    """The grid and the fixed world every cell shares."""

    policies: Tuple[str, ...] = tuple(QUEUE_POLICIES)
    #: Load multipliers applied to ``jobs_per_hour``.
    scales: Tuple[float, ...] = (1.0,)
    seeds: Tuple[int, ...] = (42,)
    jobs_per_hour: float = 12.0
    hours: float = 1.0
    n_volatile: int = 8
    n_dedicated: int = 2
    unavailability_rate: float = 0.3
    catalog: str = "sleep"
    max_in_flight: int = 4
    max_queue_depth: Optional[int] = 64
    tenants: int = 3
    block_mb: float = 4.0

    def validate(self) -> None:
        if not self.policies or not self.scales or not self.seeds:
            raise ConfigError("sweep needs >=1 policy, scale and seed")
        for p in self.policies:
            if p not in QUEUE_POLICIES:
                raise ConfigError(f"unknown queue policy: {p!r}")
        if len(set(self.policies)) != len(self.policies):
            raise ConfigError("duplicate policies in sweep grid")
        if len(set(self.scales)) != len(self.scales):
            raise ConfigError("duplicate scales in sweep grid")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError("duplicate seeds in sweep grid")
        if any(s <= 0 for s in self.scales):
            raise ConfigError("scales must be positive")
        if self.jobs_per_hour <= 0 or self.hours <= 0:
            raise ConfigError("jobs_per_hour and hours must be positive")
        if self.catalog not in ("sleep", "mixed"):
            raise ConfigError(f"unknown catalog: {self.catalog!r}")

    def cells(self) -> Iterator["SweepCell"]:
        """Grid order — the canonical order of the merged report."""
        for policy in self.policies:
            for scale in self.scales:
                for seed in self.seeds:
                    yield SweepCell(policy, scale, seed)


@dataclass(frozen=True)
class SweepCell:
    policy: str
    scale: float
    seed: int

    @property
    def key(self) -> str:
        return f"{self.policy}/x{self.scale:g}/s{self.seed}"


@dataclass
class SweepResult:
    """The merged, byte-stable sweep report."""

    spec: SweepSpec
    #: One report dict per cell, in grid order.
    cells: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "grid": {
                "policies": list(self.spec.policies),
                "scales": list(self.spec.scales),
                "seeds": list(self.spec.seeds),
                "jobs_per_hour": self.spec.jobs_per_hour,
                "hours": self.spec.hours,
                "volatile": self.spec.n_volatile,
                "dedicated": self.spec.n_dedicated,
                "unavailability_rate": self.spec.unavailability_rate,
                "catalog": self.spec.catalog,
            },
            "cells": self.cells,
        }

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, fixed separators, newline."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"
        )


def run_cell(spec: SweepSpec, cell: SweepCell) -> dict:
    """One grid cell, built from scratch in whatever process runs it.

    Imports live inside the function so a spawned worker pays them
    once, and so this module stays importable without dragging the
    whole stack in for spec validation.
    """
    from ..config import (
        ClusterConfig,
        SystemConfig,
        TraceConfig,
        moon_scheduler_config,
    )
    from ..core import moon_system
    from .arrivals import default_catalog, poisson_arrivals, sleep_catalog
    from .service import MoonService, ServiceConfig

    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=spec.n_volatile, n_dedicated=spec.n_dedicated
            ),
            trace=TraceConfig(
                unavailability_rate=spec.unavailability_rate
            ),
            scheduler=moon_scheduler_config(),
            seed=cell.seed,
        )
    )
    catalog = (
        sleep_catalog()
        if spec.catalog == "sleep"
        else default_catalog(block_mb=spec.block_mb)
    )
    tenants = tuple(f"tenant-{i + 1}" for i in range(spec.tenants))
    arrivals = poisson_arrivals(
        system.sim.rng("service/arrivals"),
        spec.jobs_per_hour * cell.scale,
        spec.hours * 3600.0,
        catalog,
        tenants,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy=cell.policy,
            max_in_flight=spec.max_in_flight,
            max_queue_depth=spec.max_queue_depth,
            horizon=spec.hours * 3600.0,
        ),
        arrivals,
        pattern="poisson",
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "policy": cell.policy,
        "scale": cell.scale,
        "seed": cell.seed,
        "report": report.to_dict(),
    }


def _run_cell_worker(payload: Tuple[SweepSpec, SweepCell]) -> dict:
    spec, cell = payload
    return run_cell(spec, cell)


def run_sweep(spec: SweepSpec, procs: int = 1) -> SweepResult:
    """Run the grid on ``procs`` worker processes; merge in grid order.

    ``procs=1`` runs inline (no pool, easier debugging) and is
    guaranteed byte-identical to any ``procs>1`` run: cell results are
    reassembled by grid position, never by completion order.
    """
    spec.validate()
    if procs < 1:
        raise ConfigError("procs must be >= 1")
    cells = list(spec.cells())
    if procs == 1 or len(cells) == 1:
        results = [run_cell(spec, cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=min(procs, len(cells))) as ex:
            # Executor.map preserves input order regardless of which
            # worker finishes first — the merge is the identity.
            results = list(
                ex.map(_run_cell_worker, [(spec, c) for c in cells])
            )
    return SweepResult(spec=spec, cells=results)


def sweep_summary_rows(result: SweepResult) -> List[List]:
    """Per-cell table rows (policy, scale, seed + the summary columns)
    for the CLI; pure formatting over the canonical dicts."""
    def sec(v) -> str:
        return "-" if v is None else f"{v:.1f}"

    def pct(v) -> str:
        return "-" if v is None else f"{100.0 * v:.1f}%"

    rows: List[List] = []
    for cell in result.cells:
        overall = cell["report"]["overall"]
        rows.append(
            [
                cell["policy"],
                f"x{cell['scale']:g}",
                cell["seed"],
                overall["completed"],
                sec(overall["p50"]),
                sec(overall["p95"]),
                pct(overall["miss_rate"]),
                f"{overall['goodput_per_hour']:.2f}",
            ]
        )
    return rows
