"""Job-arrival streams for continuous serving (paper VIII future work).

The paper studies single jobs submitted at t = 0; a serving front-end
instead sees an *arrival process*: jobs of different classes arriving
over a horizon, each owned by a tenant and carrying a response-time
SLO.  This module turns the existing :class:`~repro.workloads.JobSpec`
catalogue into such streams.

Every generator draws from one caller-supplied
``numpy.random.Generator`` (use the simulation's named streams, e.g.
``sim.rng("service/arrivals")``) so a stream is a pure function of the
root seed: identical across queue policies, which is how policy
comparisons stay apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import HOUR
from ..errors import ConfigError
from ..workloads import JobSpec, grep_spec, sleep_spec, sort_spec, wordcount_spec


@dataclass(frozen=True)
class JobArrival:
    """One job hitting the service front door.

    ``deadline`` is an *absolute* simulated time (arrival + SLO); jobs
    without an SLO carry ``None`` and never count as deadline misses.
    """

    arrival_time: float
    tenant: str
    spec: JobSpec
    deadline: Optional[float] = None
    priority: int = 0

    def validate(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be non-negative")
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise ConfigError("deadline must not precede the arrival")
        self.spec.validate()


@dataclass(frozen=True)
class WorkloadClass:
    """One entry of the service catalogue: a job shape plus its SLO."""

    spec: JobSpec
    #: Response-time SLO in seconds (arrival -> completion); None = none.
    slo_seconds: Optional[float]
    weight: float = 1.0

    def validate(self) -> None:
        if self.weight <= 0:
            raise ConfigError("workload-class weight must be positive")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ConfigError("slo_seconds must be positive")
        self.spec.validate()


def default_catalog(block_mb: float = 4.0) -> List[WorkloadClass]:
    """A small three-class traffic mix built from the Table-I shapes.

    Interactive grep queries dominate the stream (tight SLO), hourly
    word-count reports sit in the middle, and occasional batch sorts
    bring heavy data volume with a loose SLO.
    """
    return [
        WorkloadClass(
            grep_spec(n_maps=6, block_mb=block_mb, map_cpu_seconds=8.0),
            slo_seconds=10 * 60.0,
            weight=0.5,
        ),
        WorkloadClass(
            wordcount_spec(
                n_maps=16, block_mb=block_mb, n_reduces=4,
                map_cpu_seconds=30.0,
            ),
            slo_seconds=30 * 60.0,
            weight=0.3,
        ),
        WorkloadClass(
            # A fixed reduce count: a served job should not size itself
            # from whole-cluster slots it will share with other jobs.
            sort_spec(n_maps=24, block_mb=block_mb).with_(
                n_reduces=8, reduces_per_slot=0.0
            ),
            slo_seconds=60 * 60.0,
            weight=0.2,
        ),
    ]


def sleep_catalog() -> List[WorkloadClass]:
    """A data-free mix (paper VI-A sleep jobs) for fast policy studies.

    Short interactive jobs carry a tight SLO; long batch jobs a loose
    one — the regime where queue ordering (EDF vs FIFO) decides the
    deadline-miss rate under bursts.
    """
    return [
        WorkloadClass(
            sleep_spec(30.0, 10.0, n_maps=8, n_reduces=2).with_(
                name="sleep-interactive"
            ),
            slo_seconds=10 * 60.0,
            weight=0.6,
        ),
        WorkloadClass(
            sleep_spec(300.0, 120.0, n_maps=8, n_reduces=2).with_(
                name="sleep-batch"
            ),
            slo_seconds=90 * 60.0,
            weight=0.4,
        ),
    ]


DEFAULT_TENANTS: Tuple[str, ...] = ("tenant-a", "tenant-b", "tenant-c")


# ======================================================================
# Internals shared by the generators
# ======================================================================
def _validated(
    catalog: Sequence[WorkloadClass], tenants: Sequence[str]
) -> None:
    if not catalog:
        raise ConfigError("catalog must contain at least one workload class")
    for cls in catalog:
        cls.validate()
    if not tenants:
        raise ConfigError("need at least one tenant")


def _class_weights(catalog: Sequence[WorkloadClass]) -> np.ndarray:
    w = np.array([c.weight for c in catalog], dtype=float)
    return w / w.sum()


def _tenant_weights(
    tenants: Sequence[str], weights: Optional[Dict[str, float]]
) -> np.ndarray:
    if weights is None:
        w = np.ones(len(tenants), dtype=float)
    else:
        w = np.array([weights.get(t, 1.0) for t in tenants], dtype=float)
    if (w <= 0).any():
        raise ConfigError("tenant weights must be positive")
    return w / w.sum()


def _make_arrival(
    time: float,
    rng: np.random.Generator,
    catalog: Sequence[WorkloadClass],
    p_class: np.ndarray,
    tenants: Sequence[str],
    p_tenant: np.ndarray,
) -> JobArrival:
    cls = catalog[int(rng.choice(len(catalog), p=p_class))]
    tenant = tenants[int(rng.choice(len(tenants), p=p_tenant))]
    deadline = None if cls.slo_seconds is None else time + cls.slo_seconds
    return JobArrival(time, tenant, cls.spec, deadline)


# ======================================================================
# Generators
# ======================================================================
def poisson_arrivals(
    rng: np.random.Generator,
    rate_per_hour: float,
    horizon: float,
    catalog: Optional[Sequence[WorkloadClass]] = None,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    tenant_weights: Optional[Dict[str, float]] = None,
) -> List[JobArrival]:
    """Homogeneous Poisson stream: exponential inter-arrival gaps."""
    if rate_per_hour <= 0 or horizon <= 0:
        raise ConfigError("rate_per_hour and horizon must be positive")
    catalog = list(catalog) if catalog is not None else default_catalog()
    _validated(catalog, tenants)
    p_class = _class_weights(catalog)
    p_tenant = _tenant_weights(tenants, tenant_weights)
    mean_gap = HOUR / rate_per_hour
    out: List[JobArrival] = []
    t = float(rng.exponential(mean_gap))
    while t < horizon:
        out.append(_make_arrival(t, rng, catalog, p_class, tenants, p_tenant))
        t += float(rng.exponential(mean_gap))
    return out


def bursty_arrivals(
    rng: np.random.Generator,
    bursts_per_hour: float,
    burst_size_mean: float,
    horizon: float,
    catalog: Optional[Sequence[WorkloadClass]] = None,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    tenant_weights: Optional[Dict[str, float]] = None,
    within_burst_gap: float = 5.0,
) -> List[JobArrival]:
    """Burst epochs are Poisson; each epoch drops a geometric batch.

    Models the lab-session pattern of opportunistic environments (cf.
    the correlated-outage traces): quiet stretches punctuated by many
    near-simultaneous submissions — the load shape under which queue
    ordering matters most.
    """
    if bursts_per_hour <= 0 or horizon <= 0:
        raise ConfigError("bursts_per_hour and horizon must be positive")
    if burst_size_mean < 1:
        raise ConfigError("burst_size_mean must be >= 1")
    if within_burst_gap < 0:
        raise ConfigError("within_burst_gap must be non-negative")
    catalog = list(catalog) if catalog is not None else default_catalog()
    _validated(catalog, tenants)
    p_class = _class_weights(catalog)
    p_tenant = _tenant_weights(tenants, tenant_weights)
    mean_gap = HOUR / bursts_per_hour
    out: List[JobArrival] = []
    epoch = float(rng.exponential(mean_gap))
    while epoch < horizon:
        # geometric(1/m) has support {1, 2, ...} and mean m: every
        # burst carries at least one job and averages burst_size_mean.
        size = int(rng.geometric(1.0 / burst_size_mean))
        t = epoch
        for _ in range(size):
            if t >= horizon:
                break
            out.append(
                _make_arrival(t, rng, catalog, p_class, tenants, p_tenant)
            )
            t += float(rng.exponential(within_burst_gap))
        epoch += float(rng.exponential(mean_gap))
    out.sort(key=lambda a: a.arrival_time)
    return out


def diurnal_arrivals(
    rng: np.random.Generator,
    peak_rate_per_hour: float,
    horizon: float,
    catalog: Optional[Sequence[WorkloadClass]] = None,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    tenant_weights: Optional[Dict[str, float]] = None,
    trough_fraction: float = 0.2,
    period: float = 24 * HOUR,
) -> List[JobArrival]:
    """Non-homogeneous Poisson via thinning: a day/night rate cycle.

    The instantaneous rate swings sinusoidally between
    ``trough_fraction * peak`` (midnight) and ``peak`` (midday) — the
    same student-lab rhythm behind the paper's Fig. 1 availability
    profile, applied to the demand side.
    """
    if peak_rate_per_hour <= 0 or horizon <= 0:
        raise ConfigError("peak_rate_per_hour and horizon must be positive")
    if not 0.0 < trough_fraction <= 1.0:
        raise ConfigError("trough_fraction must be in (0, 1]")
    if period <= 0:
        raise ConfigError("period must be positive")
    catalog = list(catalog) if catalog is not None else default_catalog()
    _validated(catalog, tenants)
    p_class = _class_weights(catalog)
    p_tenant = _tenant_weights(tenants, tenant_weights)
    mean_gap = HOUR / peak_rate_per_hour
    out: List[JobArrival] = []
    t = float(rng.exponential(mean_gap))
    while t < horizon:
        # rate(t)/peak in [trough, 1], minimum at t = 0 (midnight).
        shape = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period))
        accept_p = trough_fraction + (1.0 - trough_fraction) * shape
        if float(rng.random()) < accept_p:
            out.append(
                _make_arrival(t, rng, catalog, p_class, tenants, p_tenant)
            )
        t += float(rng.exponential(mean_gap))
    return out


def poisson_arrivals_vectorised(
    gap_rng: np.random.Generator,
    pick_rng: np.random.Generator,
    rate_per_hour: float,
    horizon: float,
    catalog: Optional[Sequence[WorkloadClass]] = None,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    tenant_weights: Optional[Dict[str, float]] = None,
    block: int = 8192,
) -> List[JobArrival]:
    """Batched Poisson stream for day-scale workloads (``scale10k``).

    :func:`poisson_arrivals` draws one exponential gap and two weighted
    picks *per arrival*, which is minutes of pure Generator call
    overhead at a million jobs.  This builder draws gaps in blocks of
    ``block`` standard exponentials and both picks as one doubles
    block, on **two dedicated streams** (gaps vs picks) so each stays
    homogeneous and batchable.

    Determinism contract: byte-identical to
    :func:`poisson_arrivals_reference` — the scalar loop over the same
    two streams — for every ``block`` size.
    ``tests/test_sampling.py`` pins this with hypothesis.  The output
    deliberately differs from :func:`poisson_arrivals` (one interleaved
    stream), whose draws the goldens pin; pick one builder per study
    and keep it.
    """
    if rate_per_hour <= 0 or horizon <= 0:
        raise ConfigError("rate_per_hour and horizon must be positive")
    if block < 1:
        raise ConfigError("block must be >= 1")
    catalog = list(catalog) if catalog is not None else default_catalog()
    _validated(catalog, tenants)
    cum_class = np.cumsum(_class_weights(catalog))
    cum_tenant = np.cumsum(_tenant_weights(tenants, tenant_weights))
    mean_gap = HOUR / rate_per_hour

    times: List[float] = []
    last = 0.0
    while True:
        gaps = mean_gap * gap_rng.standard_exponential(size=block)
        # Left-fold accumulation seeded with the previous block's tail:
        # np.add.accumulate is sequential, so this is bit-for-bit the
        # scalar ``t += gap`` loop.
        acc = np.add.accumulate(np.concatenate(([last], gaps)))[1:]
        cut = int(np.searchsorted(acc, horizon, side="left"))
        times.extend(acc[:cut].tolist())
        if cut < block:
            break
        last = float(acc[-1])

    n = len(times)
    u = pick_rng.random(size=2 * n)
    cls_idx = np.minimum(
        np.searchsorted(cum_class, u[0::2], side="right"), len(catalog) - 1
    )
    ten_idx = np.minimum(
        np.searchsorted(cum_tenant, u[1::2], side="right"), len(tenants) - 1
    )
    out: List[JobArrival] = []
    for i in range(n):
        cls = catalog[int(cls_idx[i])]
        t = times[i]
        deadline = None if cls.slo_seconds is None else t + cls.slo_seconds
        out.append(JobArrival(t, tenants[int(ten_idx[i])], cls.spec, deadline))
    return out


def poisson_arrivals_reference(
    gap_rng: np.random.Generator,
    pick_rng: np.random.Generator,
    rate_per_hour: float,
    horizon: float,
    catalog: Optional[Sequence[WorkloadClass]] = None,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    tenant_weights: Optional[Dict[str, float]] = None,
) -> List[JobArrival]:
    """Scalar equivalence oracle for :func:`poisson_arrivals_vectorised`:
    one draw at a time from the same two streams, same arithmetic."""
    if rate_per_hour <= 0 or horizon <= 0:
        raise ConfigError("rate_per_hour and horizon must be positive")
    catalog = list(catalog) if catalog is not None else default_catalog()
    _validated(catalog, tenants)
    cum_class = np.cumsum(_class_weights(catalog))
    cum_tenant = np.cumsum(_tenant_weights(tenants, tenant_weights))
    mean_gap = HOUR / rate_per_hour
    out: List[JobArrival] = []
    t = 0.0
    while True:
        t = t + mean_gap * float(gap_rng.standard_exponential())
        if t >= horizon:
            break
        ci = min(
            int(np.searchsorted(cum_class, pick_rng.random(), side="right")),
            len(catalog) - 1,
        )
        ti = min(
            int(np.searchsorted(cum_tenant, pick_rng.random(), side="right")),
            len(tenants) - 1,
        )
        cls = catalog[ci]
        deadline = None if cls.slo_seconds is None else t + cls.slo_seconds
        out.append(JobArrival(t, tenants[ti], cls.spec, deadline))
    return out


def replay_arrivals(
    entries: Sequence[Tuple[float, str, JobSpec, Optional[float]]],
) -> List[JobArrival]:
    """Deterministic replay of explicit ``(time, tenant, spec, slo)``
    tuples — the hook for trace-driven serving studies (fed by
    :func:`repro.workload_traces.trace_arrivals`).

    ``slo`` is relative (seconds after arrival), matching how real
    request logs record latency budgets; ``None`` means no deadline.

    **Ordering contract:** the output is sorted by ``arrival_time``
    with a *stable* sort, so entries sharing a timestamp keep their
    input order.  Trace parsers rely on this — a trace replays in
    exactly its stored order, duplicates included — and
    ``tests/test_service_arrivals.py`` locks it.
    """
    out: List[JobArrival] = []
    for time, tenant, spec, slo in entries:
        deadline = None if slo is None else time + slo
        arrival = JobArrival(float(time), tenant, spec, deadline)
        arrival.validate()
        out.append(arrival)
    out.sort(key=lambda a: a.arrival_time)
    return out
