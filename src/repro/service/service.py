"""The service loop: MOON as a long-running job-serving front-end.

:class:`MoonService` layers continuous operation over a fully wired
:class:`~repro.core.MoonSystem`: it schedules arrival events on the
simulation clock, applies admission control at the front door, admits
queued jobs into the JobTracker as in-flight slots free up, and keeps
per-job SLO records the whole way.  The underlying task-level machinery
(hybrid scheduling, replication, suspension handling) runs unchanged —
this is the job-stream layer the paper's Section VIII leaves open —
except when the optional :class:`~repro.service.preempt.
PreemptionController` is armed, which reaches down through the
JobTracker's job-level pause/deprioritise hooks to act on in-flight
work under SLO pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import HOUR
from ..errors import ConfigError
from ..mapreduce.job import Job
from ..simulation import PRIORITY_PERIODIC, PeriodicTask
from .arrivals import JobArrival
from .autoscale import Autoscaler, AutoscaleConfig
from .preempt import PreemptConfig, PreemptionController
from .queue import (
    QUEUE_POLICIES,
    JobQueue,
    QueueContext,
    make_cost_estimator,
    make_queue_policy,
)
from .slo import JobRecord, ServedState, ServiceReport, build_report


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving front-end (not of the cluster beneath it)."""

    #: Queue ordering: "fifo" | "sjf" | "fair" | "edf".
    policy: str = "fifo"
    #: Jobs concurrently admitted into the JobTracker.
    max_in_flight: int = 4
    #: Queue backlog bound; arrivals beyond it are rejected (None = no
    #: bound, i.e. admission control by quota only).
    max_queue_depth: Optional[int] = 64
    #: Max in-flight jobs per tenant (None = no per-tenant quota).
    tenant_quota: Optional[int] = None
    #: Fair-share weights by tenant name (missing tenants weigh 1.0).
    tenant_weights: Optional[Dict[str, float]] = None
    #: Admission horizon: arrivals after this are dropped unserved.
    horizon: float = 4 * HOUR
    #: Extra simulated time after the horizon to drain the backlog.
    drain_limit: float = 4 * HOUR
    #: Seconds between service bookkeeping sweeps (completion detection
    #: granularity for *slot reuse*; response times use exact job ends).
    check_interval: float = 5.0
    #: Dedicated-tier autoscaling controller (None = fixed tier and no
    #: cost metering, today's behaviour).
    autoscale: Optional[AutoscaleConfig] = None
    #: SLO-aware preemption of in-flight jobs (None = admission-only
    #: control, today's behaviour; mode "off" wires the accounting but
    #: arms no controller events — byte-identical to None).
    preempt: Optional[PreemptConfig] = None
    #: Price the saturated queue by cost-of-missing instead of arrival
    #: order: cheapest-to-miss work (deadline-free, then loosest SLO)
    #: is shed first (see repro.service.queue.admission_price).
    admission_prices: bool = False
    #: Capture the offered stream back into a
    #: :class:`~repro.workload_traces.WorkloadTrace` after ``run()``
    #: (exposed as ``MoonService.captured_trace``; what ``repro replay
    #: --capture`` exports).
    capture: bool = False
    #: Provenance label of the workload trace feeding this run
    #: (surfaced in the ServiceReport); None for synthetic streams.
    trace_name: Optional[str] = None
    #: Forget finished jobs in the JobTracker after reaping them
    #: (:class:`JobRecord` keeps everything the report needs).  Opt-in:
    #: day-scale streams keep memory proportional to the in-flight
    #: window instead of the full job history; off, the tracker's
    #: ``jobs`` list stays complete for inspection.
    release_finished: bool = False

    def validate(self, cluster=None) -> None:
        """Validate the config, and — when the serving ``cluster`` is
        supplied — the pairing: a cluster with zero task slots would
        admit jobs that can never run, then spin the drain loop until
        the time limit.  Reject it up front with a clear error."""
        if self.policy not in QUEUE_POLICIES:
            raise ConfigError(f"unknown queue policy: {self.policy!r}")
        if self.max_in_flight < 1:
            raise ConfigError("max_in_flight must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ConfigError("tenant_quota must be >= 1")
        if self.horizon <= 0:
            raise ConfigError("horizon must be positive")
        if self.drain_limit < 0:
            raise ConfigError("drain_limit must be non-negative")
        if self.check_interval <= 0:
            raise ConfigError("check_interval must be positive")
        if self.autoscale is not None:
            self.autoscale.validate()
        if self.preempt is not None:
            self.preempt.validate()
        if cluster is not None:
            slots = sum(
                n.spec.map_slots + n.spec.reduce_slots
                for n in cluster.nodes
            )
            if slots == 0:
                raise ConfigError(
                    "zero-capacity cluster: no dedicated or volatile "
                    "task slots to serve jobs on (the drain loop would "
                    "hang until the time limit); add nodes or slots"
                )
            if self.autoscale is not None:
                volatile_slots = sum(
                    n.spec.map_slots + n.spec.reduce_slots
                    for n in cluster.volatile
                )
                if volatile_slots == 0 and self.autoscale.min_dedicated < 1:
                    raise ConfigError(
                        "min_dedicated must be >= 1 on a cluster "
                        "without volatile task slots: draining the "
                        "whole dedicated tier would leave the service "
                        "serving with zero capacity"
                    )


class MoonService:
    """Continuous job-stream serving on one MOON deployment."""

    def __init__(
        self,
        system,
        config: Optional[ServiceConfig] = None,
        arrivals: Sequence[JobArrival] = (),
        pattern: str = "replay",
    ) -> None:
        self.config = config or ServiceConfig()
        self.config.validate(system.cluster)
        if pattern == "replay" and not arrivals:
            # Config-validation stage (no event armed yet — the guard
            # must precede the autoscaler, whose control loop arms on
            # construction): the default pattern has no generator
            # behind it, so an empty stream is a wiring mistake, not a
            # quiet no-op run.
            raise ConfigError(
                "pattern='replay' needs explicit arrival entries, but "
                "none were supplied; build them from a workload trace "
                "(CLI: `repro replay --trace <file>`; API: "
                "repro.workload_traces.trace_arrivals) or pick a "
                "synthetic pattern (poisson/bursty/diurnal)"
            )
        self.system = system
        self.sim = system.sim
        self.pattern = pattern
        # Flight recorder handles (see repro.obs): trace spans/instants
        # when armed, registry counters and the queue-wait histogram
        # always — neither touches the sim clock.
        self._trace = self.sim.obs.tracer
        metrics = self.sim.obs.metrics
        self._m_admitted = metrics.counter("service/jobs_admitted")
        self._m_rejected = metrics.counter("service/jobs_rejected")
        self._m_completed = metrics.counter("service/jobs_completed")
        self._m_failed = metrics.counter("service/jobs_failed")
        self._m_queue_wait = metrics.histogram("service/queue_wait_seconds")
        #: Set after run() when ``config.capture`` is on.
        self.captured_trace = None
        cfg = self.config
        self.autoscaler: Optional[Autoscaler] = (
            Autoscaler(self, cfg.autoscale)
            if cfg.autoscale is not None
            else None
        )
        self.queue = JobQueue(
            make_queue_policy(cfg.policy, cfg.tenant_weights),
            max_queue_depth=cfg.max_queue_depth,
            tenant_quota=cfg.tenant_quota,
            estimator=make_cost_estimator(
                system.config.cluster.n_volatile or 1,
                system.config.trace.unavailability_rate,
            ),
            admission_prices=cfg.admission_prices,
            on_evict=self._on_evict,
            metrics=self.sim.obs.metrics,
        )
        self.preemptor: Optional[PreemptionController] = (
            PreemptionController(self, cfg.preempt)
            if cfg.preempt is not None
            else None
        )
        self.records: List[JobRecord] = []
        self._in_flight: List[Tuple[JobRecord, Job]] = []
        self._pending_arrivals = 0
        self._record_by_qjob: Dict[int, JobRecord] = {}

        # Validate the whole stream before arming any event: a bad
        # arrival must not leave earlier events scheduled against a
        # half-initialized service on the caller's simulation.
        ordered = sorted(arrivals, key=lambda a: a.arrival_time)
        for arrival in ordered:
            arrival.validate()
            if (
                arrival.arrival_time <= cfg.horizon
                and arrival.arrival_time < self.sim.now
            ):
                raise ConfigError(
                    "arrival scheduled in the simulation's past: "
                    f"{arrival.arrival_time:.1f} < {self.sim.now:.1f}"
                )
        for arrival in ordered:
            record = JobRecord(seq=len(self.records), arrival=arrival)
            self.records.append(record)
            if arrival.arrival_time > cfg.horizon:
                record.state = ServedState.DROPPED
                continue
            self._pending_arrivals += 1
            self.sim.call_at(
                arrival.arrival_time,
                self._on_arrival,
                record,
                priority=PRIORITY_PERIODIC,
            )

        self._sweeper = PeriodicTask(
            self.sim, cfg.check_interval, self._sweep, daemon=True
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, record: JobRecord) -> None:
        self._pending_arrivals -= 1
        if self.autoscaler is not None:
            self.autoscaler.note_arrival()
        qjob = self.queue.offer(record.arrival, self.sim.now)
        if qjob is None:
            record.state = ServedState.REJECTED
            self._m_rejected.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "queue.reject",
                    "queue",
                    self.sim.now,
                    seq=record.seq,
                    tenant=record.tenant,
                    workload=record.arrival.spec.name,
                )
            if self.autoscaler is not None:
                self.autoscaler.note_outcome(record)
            return
        self._record_by_qjob[qjob.seq] = record
        self._pump()

    def _on_evict(self, qjob) -> None:
        """Admission-price eviction: the queued job is rejected late."""
        record = self._record_by_qjob.pop(qjob.seq)
        record.state = ServedState.REJECTED
        self._m_rejected.inc()
        if self._trace.enabled:
            self._trace.instant(
                "queue.evict",
                "queue",
                self.sim.now,
                seq=record.seq,
                tenant=record.tenant,
                workload=record.arrival.spec.name,
            )
        if self.autoscaler is not None:
            self.autoscaler.note_outcome(record)

    def active_in_flight(self) -> int:
        """In-flight jobs that still occupy the admission window —
        paused jobs don't: releasing their slots to tighter work is
        the whole point of pausing them.  (Resuming can transiently
        overshoot ``max_in_flight``; the pump simply admits nothing
        until completions bring the count back down.)"""
        if self.preemptor is None:
            # Only the preemption controller ever pauses jobs: without
            # one armed, every in-flight job is active — O(1) on the
            # admission path instead of a scan per admitted job.
            return len(self._in_flight)
        return sum(1 for _r, job in self._in_flight if not job.paused)

    def _pump(self) -> None:
        """Admit queued jobs while in-flight slots are free."""
        while self.active_in_flight() < self.config.max_in_flight:
            # Tenant counts feed only the quota filter (no ordering
            # policy reads them) — skip the in-flight scan otherwise.
            ctx = QueueContext(
                in_flight_by_tenant=(
                    self._tenant_counts()
                    if self.queue.tenant_quota is not None
                    else {}
                )
            )
            qjob = self.queue.select(ctx)
            if qjob is None:
                return
            record = self._record_by_qjob.pop(qjob.seq)
            record.admitted_at = self.sim.now
            self._m_admitted.inc()
            self._m_queue_wait.observe(
                self.sim.now - record.arrival.arrival_time
            )
            job = self.system.submit(
                qjob.arrival.spec, priority=qjob.arrival.priority
            )
            if self._trace.enabled:
                # Recorded after submit so the span can carry its
                # causal child: the JobTracker job this admission
                # became (the explain layer joins service seq to job
                # id through it).  Tracing never touches the sim, so
                # the ordering swap is invisible outside the trace.
                self._trace.span(
                    "queue.wait",
                    "queue",
                    record.arrival.arrival_time,
                    self.sim.now,
                    seq=record.seq,
                    tenant=record.tenant,
                    workload=record.arrival.spec.name,
                    job=job.job_id,
                )
            self._in_flight.append((record, job))

    def _sweep(self) -> None:
        """Reap finished jobs, then refill the cluster from the queue."""
        still: List[Tuple[JobRecord, Job]] = []
        for record, job in self._in_flight:
            if job.finished:
                self._finalize(record, job)
            else:
                still.append((record, job))
        self._in_flight = still
        self._pump()

    def _finalize(self, record: JobRecord, job: Job) -> None:
        record.finished_at = job.finished_at
        record.state = (
            ServedState.SUCCEEDED if job.state.value == "succeeded"
            else ServedState.FAILED
        )
        if record.state is ServedState.SUCCEEDED:
            self._m_completed.inc()
        else:
            self._m_failed.inc()
        if self.autoscaler is not None:
            self.autoscaler.note_outcome(record)
        if self.config.release_finished:
            self.system.jobtracker.release(job)

    def _tenant_counts(self) -> Dict[str, int]:
        # Paused jobs release their quota seat along with their slots:
        # counting them would let a pause free the global window while
        # the victim's own tenant stays quota-blocked — the tight job
        # the pause was taken for could then never be admitted, and
        # the pressure (hence the pause) would never clear.
        counts: Dict[str, int] = {}
        for record, job in self._in_flight:
            if job.paused:
                continue
            counts[record.tenant] = counts.get(record.tenant, 0) + 1
        return counts

    def _drained(self) -> bool:
        return (
            self._pending_arrivals == 0
            and len(self.queue) == 0
            and not any(not job.finished for _r, job in self._in_flight)
        )

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Serve the stream to drain (or the drain limit) and report."""
        cfg = self.config
        self.advance(cfg.horizon + cfg.drain_limit)
        return self.finalize()

    def advance(self, until: float) -> bool:
        """Advance the stream to ``until`` without finalizing.

        The snapshot/resume entry point: run the simulation up to
        ``min(until, horizon + drain_limit)`` (stopping early if the
        stream drains), leaving every controller, sweeper and queue
        live so the service can be checkpointed mid-stream and later
        advanced again — a resumed run that reaches the drain produces
        the same :meth:`finalize` report as a straight-through
        :meth:`run`.  Returns ``True`` once the stream is drained.
        """
        cfg = self.config
        limit = min(until, cfg.horizon + cfg.drain_limit)
        self.sim.run(until=limit, stop_when=self._drained)
        return self._drained()

    def finalize(self) -> ServiceReport:
        """Stop the controllers, drain decommissions, and report.

        Idempotence is *not* promised — call exactly once, after the
        last :meth:`advance` (or let :meth:`run` do both)."""
        cfg = self.config
        limit = cfg.horizon + cfg.drain_limit
        # Final reap: completions between the last sweep and the stop.
        for record, job in self._in_flight:
            if job.finished:
                self._finalize(record, job)
            else:
                record.state = ServedState.UNFINISHED
        self._in_flight = []
        self._sweeper.stop()
        scaler = self.autoscaler
        if scaler is not None:
            scaler.stop()
        preemptor = self.preemptor
        if preemptor is not None:
            preemptor.stop()
        # Let in-flight decommissions land.  The stream drain stops the
        # sim at the exact event that finishes the last job — which can
        # be the very event that makes a drain gate clearable.  The
        # clearing heartbeat tick is a daemon event three seconds in
        # the future: without this drain-out it never fires and the
        # node is reported as draining forever.  Controllers are
        # stopped above, so no new scale or preempt decisions can fire
        # here; the run is bounded by the same drain limit as the jobs.
        cluster = self.system.cluster
        if cluster.draining_nodes():
            self.sim.run(
                until=limit,
                stop_when=lambda: not cluster.draining_nodes(),
            )
        if cfg.capture and self.records:
            # Imported here: workload_traces sits beside the service
            # layer and imports its arrival model.  A run that saw no
            # arrivals has nothing to capture (an empty trace is
            # invalid) and leaves captured_trace as None.
            from ..workload_traces import capture_trace

            self.captured_trace = capture_trace(
                self, name=cfg.trace_name or "capture"
            )
        # Detection-tradeoff axes (honest detectors only: the oracle
        # emits no detector metrics, and its wasted work is 0 by
        # construction).
        det_cfg = getattr(self.system.config, "detector", None)
        det_mode = None
        wasted = 0.0
        false_pos = 0
        requeues = 0
        detect_mean = None
        if det_cfg is not None and det_cfg.honest:
            det_mode = det_cfg.mode
            m = self.system.obs.metrics
            wasted = float(m.counter("mapreduce/wasted_work_seconds").value)
            false_pos = int(m.counter("detector/false_positives").value)
            requeues = int(m.counter("detector/suspicion_requeues").value)
            latency = m.histogram("detector/detection_latency_seconds")
            if latency.count:
                detect_mean = latency.mean
        # Blame attribution (tracing runs only: the causal graph is
        # rebuilt from the flight recorder, so without spans there is
        # nothing to attribute).  Computed after the drain — a pure
        # read of recorded events, outside the determinism boundary's
        # reach on the sim itself.
        blame = None
        blame_by_tenant = None
        if self._trace.enabled:
            from ..obs.explain import explain_tracer

            explanation = explain_tracer(self._trace)
            if explanation.jobs:
                blame = explanation.totals()
                blame_by_tenant = explanation.by_tenant()
                blame_counters = self.sim.obs.metrics
                for category, seconds in blame.items():
                    blame_counters.counter(
                        f"blame/{category}_seconds"
                    ).inc(seconds)
        # Durable-metadata axes (journal runs only: the paper-figure
        # default keeps the NameNode immortal and journal-free).
        jl_cfg = getattr(self.system.config.dfs, "journal", None)
        jl_mode = None
        nn_crashes = 0
        recov_mean = None
        jl_records = 0
        jl_ckpts = 0
        if jl_cfg is not None and jl_cfg.enabled:
            jl_mode = "on"
            m = self.system.obs.metrics
            nn_crashes = int(m.counter("dfs/namenode_crashes").value)
            jl_records = int(m.counter("dfs/journal_records").value)
            jl_ckpts = int(m.counter("dfs/checkpoints").value)
            recov = m.histogram("dfs/recovery_seconds")
            if recov.count:
                recov_mean = recov.mean
        return build_report(
            self.records,
            policy=cfg.policy,
            pattern=self.pattern,
            seed=self.system.config.seed,
            horizon=cfg.horizon,
            end_time=self.sim.now,
            autoscale=(None if scaler is None else scaler.cfg.policy),
            node_hours=(None if scaler is None else scaler.node_hours()),
            dedicated_final=(
                None if scaler is None else scaler.tier_size()
            ),
            scale_events=(
                [] if scaler is None else list(scaler.decisions)
            ),
            trace=cfg.trace_name,
            preempt=(
                None if preemptor is None else preemptor.cfg.mode
            ),
            preempt_events=(
                [] if preemptor is None else list(preemptor.events)
            ),
            evicted=self.queue.evicted,
            detector=det_mode,
            wasted_work=wasted,
            false_positives=false_pos,
            requeues=requeues,
            detection_mean=detect_mean,
            journal=jl_mode,
            namenode_crashes=nn_crashes,
            recovery_mean=recov_mean,
            journal_records=jl_records,
            checkpoints=jl_ckpts,
            blame=blame,
            blame_by_tenant=blame_by_tenant,
        )
