"""Service layer (S11): continuous job-stream serving on MOON.

The paper's Section VIII names "the scheduling and QoS issues of
concurrent MapReduce jobs on opportunistic environments" as open
future work.  This package supplies that layer: arrival streams
(:mod:`~repro.service.arrivals`), a bounded multi-tenant job queue
with pluggable ordering (:mod:`~repro.service.queue`), the service
loop itself (:mod:`~repro.service.service`), SLO accounting
(:mod:`~repro.service.slo`), and — making the paper's Section VII
provisioning question dynamic — the dedicated-tier autoscaler
(:mod:`~repro.service.autoscale`): static/reactive/predictive
controllers that grow and shrink the dedicated tier against queue
depth, deadline-miss rate and occupancy, with per-decision audit
records and node-hours cost accounting.  SLO-aware preemption
(:mod:`~repro.service.preempt`) closes the remaining gap: when
tight-SLO arrivals queue behind admitted loose-SLO work, a controller
deprioritises — and under sustained pressure pauses — in-flight
victims through the JobTracker's job-level hooks, and the saturated
queue can price admission by cost-of-missing instead of arrival order
(:func:`~repro.service.queue.admission_price`).

See docs/ARCHITECTURE.md#service-layer for the layer map.
"""

from .arrivals import (
    DEFAULT_TENANTS,
    JobArrival,
    WorkloadClass,
    bursty_arrivals,
    default_catalog,
    diurnal_arrivals,
    poisson_arrivals,
    poisson_arrivals_reference,
    poisson_arrivals_vectorised,
    replay_arrivals,
    sleep_catalog,
)
from .autoscale import (
    AUTOSCALE_POLICIES,
    AutoscaleConfig,
    Autoscaler,
    ScaleDecision,
    render_decisions,
)
from .preempt import (
    PREEMPT_MODES,
    PreemptConfig,
    PreemptEvent,
    PreemptionController,
    render_preempt_events,
)
from .queue import (
    QUEUE_POLICIES,
    JobQueue,
    QueueContext,
    QueuedJob,
    admission_price,
    make_cost_estimator,
    make_queue_policy,
)
from .service import MoonService, ServiceConfig
from .sweep import (
    SWEEP_SCHEMA_VERSION,
    SweepCell,
    SweepResult,
    SweepSpec,
    run_sweep,
    sweep_summary_rows,
)
from .slo import (
    REPORT_SCHEMA_VERSION,
    JobRecord,
    ServedState,
    ServiceReport,
    TenantSlo,
    build_report,
    jain_fairness,
)

__all__ = [
    "JobArrival",
    "WorkloadClass",
    "DEFAULT_TENANTS",
    "default_catalog",
    "sleep_catalog",
    "poisson_arrivals",
    "poisson_arrivals_reference",
    "poisson_arrivals_vectorised",
    "bursty_arrivals",
    "diurnal_arrivals",
    "replay_arrivals",
    "QUEUE_POLICIES",
    "JobQueue",
    "QueueContext",
    "QueuedJob",
    "admission_price",
    "make_queue_policy",
    "make_cost_estimator",
    "PREEMPT_MODES",
    "PreemptConfig",
    "PreemptEvent",
    "PreemptionController",
    "render_preempt_events",
    "MoonService",
    "ServiceConfig",
    "SWEEP_SCHEMA_VERSION",
    "SweepSpec",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "sweep_summary_rows",
    "AUTOSCALE_POLICIES",
    "AutoscaleConfig",
    "Autoscaler",
    "ScaleDecision",
    "render_decisions",
    "JobRecord",
    "ServedState",
    "TenantSlo",
    "ServiceReport",
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "jain_fairness",
]
