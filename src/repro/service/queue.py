"""Job queue with admission control and pluggable ordering policies.

Task-level scheduling (Section V of the paper) fills slots *within* a
job; under sustained multi-job traffic the queue decides *which* job
gets those slots next — and that job-level policy dominates response
time (Lee & Lin's hybrid job-driven scheduling; OS4M's global balance
across concurrent jobs).  Four orderings are provided:

* **fifo** — arrival order (the Hadoop default);
* **sjf** — shortest job first, sized with the analytical cost model
  (:func:`repro.analysis.estimate_makespan`);
* **fair** — weighted fair share across tenants by admitted service;
* **edf** — earliest deadline first (jobs without a deadline last).

Admission control is two-layered: a bounded queue rejects work outright
when the backlog exceeds ``max_queue_depth``, and per-tenant in-flight
quotas stop one tenant from monopolising the cluster.

With ``admission_prices=True`` the saturated queue stops rejecting in
pure arrival order: every job class carries an **admission price** —
how expensive its deadline is to miss (:func:`admission_price`: zero
for deadline-free work, reciprocal of the relative SLO otherwise) —
and when the backlog is full the *cheapest-to-miss* entry goes,
whether that is the new arrival or something already queued (evictions
surface through the ``on_evict`` callback so the service records them
as rejected).  Default off: the classic bound is byte-identical to
the historical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..analysis import estimate_makespan
from ..errors import ConfigError
from ..obs import MetricsRegistry
from ..workloads import JobSpec
from .arrivals import JobArrival

QUEUE_POLICIES = ("fifo", "sjf", "fair", "edf")


@dataclass
class QueuedJob:
    """One admitted-to-queue arrival awaiting cluster admission."""

    arrival: JobArrival
    enqueued_at: float
    #: Analytical makespan estimate (seconds) used by sjf/fair.
    cost_estimate: float
    #: Monotone admission sequence number — the universal tie-breaker,
    #: so every policy yields a total, deterministic order.
    seq: int

    @property
    def tenant(self) -> str:
        return self.arrival.tenant

    @property
    def deadline(self) -> Optional[float]:
        return self.arrival.deadline


def admission_price(arrival: JobArrival) -> float:
    """The class's cost-of-missing, used to pick saturation victims.

    Deadline-free work prices at zero (it cannot miss); deadline work
    prices at the reciprocal of its *relative* SLO, so a 10-minute
    budget is nine times dearer than a 90-minute one.  A pure function
    of the arrival's class, hence identical across processes.
    """
    if arrival.deadline is None:
        return 0.0
    return 1.0 / max(arrival.deadline - arrival.arrival_time, 1e-9)


def _zero_cost(spec: JobSpec) -> float:
    """Default estimator for cost-blind policies (module-level so a
    queue built without an estimator pickles)."""
    return 0.0


def make_cost_estimator(
    n_volatile: int, unavailability_rate: float
) -> Callable[[JobSpec], float]:
    """Per-spec analytical cost in seconds, memoised on the frozen spec.

    The estimate deliberately reuses the validation-layer model rather
    than inventing a second one: SJF only needs a consistent relative
    ordering, which the wave model provides.
    """
    if n_volatile < 1:
        raise ConfigError("need at least one volatile node")
    return _MakespanEstimator(n_volatile, unavailability_rate)


class _MakespanEstimator:
    """Memoised wave-model cost — a class, not a closure, so a queue
    holding one survives snapshot/resume pickling (the cache travels)."""

    __slots__ = ("n_volatile", "unavailability_rate", "cache")

    def __init__(self, n_volatile: int, unavailability_rate: float) -> None:
        self.n_volatile = n_volatile
        self.unavailability_rate = unavailability_rate
        self.cache: Dict[JobSpec, float] = {}

    def __call__(self, spec: JobSpec) -> float:
        cost = self.cache.get(spec)
        if cost is None:
            cost = estimate_makespan(
                spec, self.n_volatile, self.unavailability_rate
            ).total
            self.cache[spec] = cost
        return cost

    def __getstate__(self):
        return (self.n_volatile, self.unavailability_rate, self.cache)

    def __setstate__(self, state):
        self.n_volatile, self.unavailability_rate, self.cache = state


# ======================================================================
# Ordering policies
# ======================================================================
class OrderingPolicy:
    """Chooses the next queued job; stateless unless noted."""

    name = "base"

    def select(
        self, pending: List[QueuedJob], ctx: "QueueContext"
    ) -> QueuedJob:
        raise NotImplementedError

    def admitted(self, qjob: QueuedJob) -> None:
        """Hook: called when ``qjob`` is handed to the cluster."""


class FifoPolicy(OrderingPolicy):
    name = "fifo"

    def select(self, pending, ctx):
        return min(pending, key=lambda q: q.seq)


class SjfPolicy(OrderingPolicy):
    """Shortest job first by analytical cost estimate."""

    name = "sjf"

    def select(self, pending, ctx):
        return min(pending, key=lambda q: (q.cost_estimate, q.seq))


class EdfPolicy(OrderingPolicy):
    """Earliest deadline first; deadline-free jobs run last, FIFO."""

    name = "edf"

    def select(self, pending, ctx):
        return min(
            pending,
            key=lambda q: (
                q.deadline if q.deadline is not None else float("inf"),
                q.seq,
            ),
        )


class FairSharePolicy(OrderingPolicy):
    """Weighted fair share: serve the tenant furthest below its share.

    Usage is the sum of admitted cost estimates normalised by the
    tenant's weight (default 1.0), so a tenant that has consumed less
    weighted service is always preferred — OS4M's global balance, at
    job granularity.
    """

    name = "fair"

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(weights or {})
        for tenant, w in self.weights.items():
            if w <= 0:
                raise ConfigError(f"tenant weight must be positive: {tenant}")
        self._usage: Dict[str, float] = {}

    def _normalised_usage(self, tenant: str) -> float:
        return self._usage.get(tenant, 0.0) / self.weights.get(tenant, 1.0)

    def select(self, pending, ctx):
        return min(
            pending,
            key=lambda q: (self._normalised_usage(q.tenant), q.seq),
        )

    def admitted(self, qjob: QueuedJob) -> None:
        self._usage[qjob.tenant] = (
            self._usage.get(qjob.tenant, 0.0) + qjob.cost_estimate
        )


def make_queue_policy(
    name: str, tenant_weights: Optional[Dict[str, float]] = None
) -> OrderingPolicy:
    """Policy factory mirroring :func:`repro.scheduling.make_scheduler`."""
    if name == "fifo":
        return FifoPolicy()
    if name == "sjf":
        return SjfPolicy()
    if name == "edf":
        return EdfPolicy()
    if name == "fair":
        return FairSharePolicy(tenant_weights)
    raise ConfigError(f"unknown queue policy: {name!r}")


# ======================================================================
# The queue itself
# ======================================================================
@dataclass
class QueueContext:
    """Cluster-side state the ordering policies may consult."""

    in_flight_by_tenant: Dict[str, int] = field(default_factory=dict)


class JobQueue:
    """Bounded job queue with per-tenant quotas.

    ``offer`` either enqueues an arrival (returning the
    :class:`QueuedJob`) or rejects it (returning ``None``) when the
    backlog is at ``max_queue_depth``.  ``select`` pops the policy's
    next choice among tenants still under their in-flight quota.
    """

    def __init__(
        self,
        policy: OrderingPolicy,
        max_queue_depth: Optional[int] = None,
        tenant_quota: Optional[int] = None,
        estimator: Optional[Callable[[JobSpec], float]] = None,
        admission_prices: bool = False,
        on_evict: Optional[Callable[[QueuedJob], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ConfigError("tenant_quota must be >= 1")
        if estimator is None and policy.name in ("sjf", "fair"):
            # Without costs, both policies silently collapse to FIFO.
            raise ConfigError(
                f"the {policy.name!r} policy needs a cost estimator "
                "(see make_cost_estimator)"
            )
        self.policy = policy
        self.max_queue_depth = max_queue_depth
        self.tenant_quota = tenant_quota
        self._estimator = estimator or _zero_cost
        self.admission_prices = admission_prices
        self._on_evict = on_evict
        self._pending: List[QueuedJob] = []
        self._seq = 0
        # Shed-work bookkeeping lives in the metrics registry (the
        # service passes the run's shared one; standalone queues get a
        # private registry so the surface is unchanged either way).
        registry = metrics if metrics is not None else MetricsRegistry()
        self._rejected = registry.counter("service/queue/rejected")
        self._evicted = registry.counter("service/queue/evicted")

    @property
    def rejected(self) -> int:
        """Arrivals shed at the front door (backlog full / priced out)."""
        return self._rejected.value

    @property
    def evicted(self) -> int:
        """Queued jobs displaced late by admission pricing."""
        return self._evicted.value

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[QueuedJob]:
        return list(self._pending)

    def offer(self, arrival: JobArrival, now: float) -> Optional[QueuedJob]:
        """Admit to the queue, or shed work when the backlog is full.

        At saturation the classic rule rejects the arrival; with
        admission prices on, the cheapest-to-miss entry of
        ``pending + [arrival]`` goes instead — the arrival itself only
        when nothing queued is strictly cheaper, so equal-price floods
        degrade to exactly the historical arrival-order rejection.
        """
        if (
            self.max_queue_depth is not None
            and len(self._pending) >= self.max_queue_depth
        ):
            if not self.admission_prices:
                self._rejected.inc()
                return None
            price = admission_price(arrival)
            # Cheapest price first; among equals the *newest* goes, so
            # earlier-queued work of a class keeps its place (and the
            # arrival, newest of all, loses every tie).
            victim = min(
                self._pending,
                key=lambda q: (admission_price(q.arrival), -q.seq),
            )
            if admission_price(victim.arrival) >= price:
                self._rejected.inc()
                return None
            self._pending.remove(victim)
            self._rejected.inc()
            self._evicted.inc()
            if self._on_evict is not None:
                self._on_evict(victim)
        qjob = QueuedJob(
            arrival=arrival,
            enqueued_at=now,
            cost_estimate=self._estimator(arrival.spec),
            seq=self._seq,
        )
        self._seq += 1
        self._pending.append(qjob)
        return qjob

    def select(self, ctx: Optional[QueueContext] = None) -> Optional[QueuedJob]:
        """Pop the next job per policy, honouring tenant quotas."""
        ctx = ctx or QueueContext()
        eligible = self._pending
        if self.tenant_quota is not None:
            eligible = [
                q
                for q in self._pending
                if ctx.in_flight_by_tenant.get(q.tenant, 0) < self.tenant_quota
            ]
        if not eligible:
            return None
        qjob = self.policy.select(eligible, ctx)
        self._pending.remove(qjob)
        self.policy.admitted(qjob)
        return qjob
