"""SLO-aware preemption of in-flight jobs (service layer).

Everything before this module reorders work only *before* admission:
the queue policy decides who enters the cluster, and once a loose-SLO
job occupies in-flight slots a tight-SLO arrival can only wait — which
is why EDF still misses deadlines under heavy replay load.  OS4M
(arXiv:1406.3901) reschedules *running* MapReduce operations for
global balance, and hybrid job-driven scheduling (arXiv:1808.08040)
ranks jobs by deadline pressure; this module brings that job-level
control to the opportunistic setting.

The :class:`PreemptionController` runs on the simulation clock as a
periodic daemon, watches **queue pressure** — tight-SLO jobs waiting
whose projected completion (now + analytical cost estimate) already
overruns their deadline budget — and acts on in-flight loose-SLO
victims with two escalating mechanisms:

* **deprioritise** — the victim drops to the back of every scheduler
  candidate walk and gets no new speculative copies
  (:meth:`~repro.mapreduce.jobtracker.JobTracker.deprioritise_job`);
  its running work continues, so slots free up as tasks finish;
* **pause** — after sustained pressure the victim's unfinished
  attempts are suspended outright
  (:meth:`~repro.mapreduce.jobtracker.JobTracker.pause_job`): compute
  progress is banked VM-pause-style, slots release immediately, and
  the paused job stops counting against the service's in-flight
  window, so a queued tight job is admitted at the next pump.
  Completed map output is preserved — resume never re-executes
  finished work.

When pressure stays clear for ``calm_rounds`` control rounds the
controller unwinds in reverse order of severity: paused jobs resume
(their held attempts re-register; nodes that died or drained meanwhile
get their tasks re-queued), then deprioritised jobs are restored.

Determinism: the controller consumes only simulated state, orders
victims by (slack, admission seq) and acts on the simulated clock, so
a seeded run — actions, audit log, report — is byte-identical across
processes.  With ``mode="off"`` (or no config at all) no event is ever
armed and the service's event stream is byte-identical to a build
without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..mapreduce.job import JobState
from ..plotting import table
from ..simulation import PRIORITY_PERIODIC, PeriodicTask

PREEMPT_MODES = ("off", "deprioritise", "pause")


@dataclass(frozen=True)
class PreemptConfig:
    """Controller knobs; defaults tuned for the 3x replay benchmark."""

    #: "off" | "deprioritise" | "pause".  "pause" escalates *through*
    #: deprioritise: a victim is demoted first and suspended only if
    #: pressure persists.
    mode: str = "off"
    #: Seconds between control rounds.
    interval: float = 15.0
    #: A queued deadline job is *tight* (counts as pressure) when its
    #: slack — deadline minus now minus its analytical cost estimate —
    #: is below this many seconds: it is projected to miss unless it
    #: starts roughly now.
    slack_threshold: float = 120.0
    #: An in-flight job is a preemption victim only when its own slack
    #: (deadline minus now; infinite for deadline-free jobs) is at
    #: least this — never rob a job that is itself about to miss.
    victim_slack: float = 600.0
    #: Jobs concurrently paused (bounds the goodput loss).
    max_paused: int = 2
    #: Control rounds of sustained pressure a deprioritised victim
    #: must see before it is escalated to a pause (mode="pause").
    escalate_rounds: int = 2
    #: Control rounds of clear pressure before paused jobs resume and
    #: deprioritised jobs are restored (hysteresis against flapping).
    calm_rounds: int = 2

    def validate(self) -> None:
        if self.mode not in PREEMPT_MODES:
            raise ConfigError(f"unknown preempt mode: {self.mode!r}")
        if self.interval <= 0:
            raise ConfigError("preempt interval must be positive")
        if self.slack_threshold < 0:
            raise ConfigError("slack_threshold must be non-negative")
        if self.victim_slack < 0:
            raise ConfigError("victim_slack must be non-negative")
        if self.max_paused < 1:
            raise ConfigError("max_paused must be >= 1")
        if self.escalate_rounds < 0:
            raise ConfigError("escalate_rounds must be non-negative")
        if self.calm_rounds < 0:
            raise ConfigError("calm_rounds must be non-negative")


@dataclass(frozen=True)
class PreemptEvent:
    """One audit row: what the controller did and what it saw."""

    time: float
    #: "deprioritise" | "pause" | "resume" | "restore".
    action: str
    #: The victim's service sequence number and job id.
    record_seq: int
    job_id: str
    #: Tight-SLO jobs waiting in the queue at decision time.
    tight_waiting: int
    #: The victim's slack in seconds (None = no deadline).
    victim_slack: Optional[float]
    reason: str

    def row(self) -> list:
        # Rendered identity is the service-local admission seq, not
        # the job id: job ids carry a process-global counter, and the
        # audit table must be byte-identical run over run (the
        # fast-lane determinism smoke replays it twice in-process).
        return [
            f"{self.time:.0f}",
            self.action,
            f"#{self.record_seq}",
            self.tight_waiting,
            "--" if self.victim_slack is None
            else f"{self.victim_slack:.0f}",
            self.reason,
        ]


def render_preempt_events(events: List[PreemptEvent]) -> str:
    """The audit log as one aligned text table."""
    if not events:
        return "preemption audit: no actions"
    return table(
        ["t s", "action", "arrival", "tight", "slack s", "reason"],
        [e.row() for e in events],
        title="preemption audit",
    )


class PreemptionController:
    """One per :class:`~repro.service.MoonService` run."""

    def __init__(self, service, config: PreemptConfig) -> None:
        config.validate()
        self.cfg = config
        self.service = service
        self.sim = service.sim
        self.jobtracker = service.system.jobtracker
        self.events: List[PreemptEvent] = []
        #: record seq -> control rounds spent deprioritised under
        #: sustained pressure (escalation counter).
        self._demoted_rounds: Dict[int, int] = {}
        self._calm = 0
        self._task: Optional[PeriodicTask] = None
        if config.mode != "off":
            self._task = PeriodicTask(
                self.sim,
                config.interval,
                self._control,
                priority=PRIORITY_PERIODIC,
                daemon=True,
            )

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def tight_waiting(self) -> int:
        """Queued deadline jobs projected to miss unless started now."""
        now = self.sim.now
        return sum(
            1
            for q in self.service.queue.pending
            if q.deadline is not None
            and q.deadline - now - q.cost_estimate <= self.cfg.slack_threshold
        )

    def _victims(self) -> List[Tuple[float, int, object, object]]:
        """In-flight loose-SLO jobs, loosest first.

        Returns ``(neg_slack, seq, record, job)`` tuples sorted so the
        job that can best afford to wait — deadline-free first, then
        largest slack — is preempted first; the admission sequence
        breaks ties, keeping the order a pure function of the stream.
        """
        now = self.sim.now
        out = []
        for record, job in self.service._in_flight:
            # Only RUNNING jobs are worth preempting: a COMMITTING job
            # (replication wait) holds no task slots, so demoting or
            # pausing it frees nothing and would burn a max_paused
            # seat on a no-op.
            if job.paused or job.state is not JobState.RUNNING:
                continue
            slack = (
                float("inf") if record.deadline is None
                else record.deadline - now
            )
            if slack < self.cfg.victim_slack:
                continue
            out.append((-slack, record.seq, record, job))
        out.sort(key=lambda v: (v[0], v[1]))
        return out

    def paused_count(self) -> int:
        return sum(
            1 for _r, job in self.service._in_flight if job.paused
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _control(self) -> None:
        tight = self.tight_waiting()
        if tight == 0:
            self._calm += 1
            self._demoted_rounds.clear()
            if self._calm >= self.cfg.calm_rounds:
                self._unwind(tight)
            return
        self._calm = 0
        blocked = (
            self.service.active_in_flight()
            >= self.service.config.max_in_flight
        )
        if not blocked:
            # Tight work will be admitted at the next pump; acting on
            # victims now would only burn goodput.
            return
        self._act(tight)

    def _act(self, tight: int) -> None:
        cfg = self.cfg
        victims = self._victims()
        acted = 0
        for neg_slack, seq, record, job in victims:
            if acted >= tight:
                break
            slack = None if neg_slack == float("-inf") else -neg_slack
            if not job.deprioritised:
                self.jobtracker.deprioritise_job(job)
                self._demoted_rounds[seq] = 0
                self._note("deprioritise", record, job, tight, slack,
                           f"{tight} tight queued")
                acted += 1
                continue
            if cfg.mode != "pause":
                continue
            rounds = self._demoted_rounds.get(seq, 0) + 1
            self._demoted_rounds[seq] = rounds
            if (
                rounds >= cfg.escalate_rounds
                and self.paused_count() < cfg.max_paused
            ):
                self.jobtracker.pause_job(job)
                self._note("pause", record, job, tight, slack,
                           f"pressure held {rounds} rounds")
                # A pause frees an in-flight slot immediately: admit
                # the tight work it was taken for at this same instant
                # instead of waiting for the next bookkeeping sweep.
                self.service._pump()
                acted += 1

    def _unwind(self, tight: int) -> None:
        """Pressure cleared: resume paused jobs, restore demoted ones.

        Unwinds in admission order (earliest preempted first) — the
        deterministic mirror of the preemption order."""
        for record, job in self.service._in_flight:
            if job.paused and not job.finished:
                self.jobtracker.resume_job(job)
                self._note("resume", record, job, tight, None,
                           "pressure clear")
        for record, job in self.service._in_flight:
            if job.deprioritised and not job.finished:
                self.jobtracker.restore_job(job)
                self._note("restore", record, job, tight, None,
                           "pressure clear")

    def _note(
        self, action, record, job, tight, slack, reason
    ) -> None:
        self.events.append(
            PreemptEvent(
                time=self.sim.now,
                action=action,
                record_seq=record.seq,
                job_id=job.job_id,
                tight_waiting=tight,
                victim_slack=slack,
                reason=reason,
            )
        )
        # Flight recorder: every controller action doubles as a
        # zero-length span on the preempt lane plus a registry count.
        obs = self.sim.obs
        obs.metrics.counter(f"service/preempt/{action}").inc()
        tracer = obs.tracer
        if tracer.enabled:
            tracer.span(
                f"preempt.{action}",
                "preempt",
                self.sim.now,
                self.sim.now,
                seq=record.seq,
                job=job.job_id,
                tight_waiting=tight,
                reason=reason,
            )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the control task (a job still paused at the drain
        limit stays paused and reports UNFINISHED — that *is* the
        faithful accounting of what the run left behind)."""
        if self._task is not None:
            self._task.stop()
