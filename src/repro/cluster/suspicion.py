"""Observed node state: the suspicion layer between ground truth and
every consumer.

Real MOON observers (JobTracker, NameNode) never see the availability
trace — they see heartbeats, and silence.  A :class:`NodeView` is one
observer's belief about the cluster: in ``oracle`` mode it delegates to
ground truth exactly as every paper figure always has; in the honest
modes (``timeout``, ``adaptive``) belief is driven only by an
:class:`HonestDetector`, whose judgements can be wrong in both
directions — real outages are noticed late (detection latency), and
bursty heartbeat silence on a healthy node trips false suspicion whose
requeued work is pure waste.

The honest detector keeps the analytical trick of
:class:`FailureDetector` (never simulate individual 3-second beats):

* Real outages are judged exactly as before, except the effective
  threshold may be scaled (``timeout_scale``) or learned per node
  (``adaptive``).
* Observation noise is modelled as silence episodes: per observer and
  node, silences arrive as a Poisson process (``silences_per_hour``)
  with Exp(``mean_silence``)-distributed duration.  A silence of
  length ``S`` falsely trips every judgement whose effective threshold
  ``T`` satisfies ``T + h <= S``, at ``T + h`` past silence start; the
  silence ending recovers everything it tripped.
* The adaptive (phi-accrual-style) detector feeds every observed
  silence gap — false episodes and real outages alike — into a
  per-node Welford estimator and sets the effective suspicion
  threshold to ``mean + phi * std``, clamped to
  ``[adaptive_floor * h, adaptive_cap * base]``.  Nodes with flappy
  histories earn wide tolerances; an under-sampled node is judged with
  the configured (fixed-timeout) threshold — phi-accrual bootstraps
  conservatively, never from a guess.

Only suspicion-scale judgements adapt (``add_threshold(...,
adapt=True)``); expiry judgements keep their configured threshold so a
noisy link can never expire a node — and drop its replicas or kill its
attempts — after a few seconds of silence.

Determinism: every silence draw comes from the per-observer, per-node
stream ``detector/<observer>/<node_id>``, and all detector events carry
``PRIORITY_HEARTBEAT``, so honest runs are byte-stable across
processes.  In oracle mode :meth:`NodeView.make_detector` returns the
plain :class:`FailureDetector` — zero extra events, zero rng draws.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..config import DETECTOR_MODES, DetectorConfig
from ..simulation import PRIORITY_HEARTBEAT, Simulation, StreamSampler
from .cluster import Cluster
from .detector import FailureDetector
from .node import Node

__all__ = ["DETECTOR_MODES", "NodeView", "HonestDetector", "_Welford"]


class _Welford:
    """Streaming mean/variance of one node's observed silence gaps."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        return math.sqrt(self.m2 / self.n) if self.n else 0.0


class NodeView:
    """One observer's belief about node liveness.

    ``believes_up`` is the drop-in replacement for the old direct
    ``node.available`` reads: ground truth under the oracle, and
    constant ``True`` under the honest modes — an honest observer has
    no channel to liveness other than its own suspicion state, which
    consumers already carry (``TaskTracker.suspected``, the NameNode's
    per-node :class:`NodeState`) and which the detector's trip/recover
    callbacks keep updated.  ``is_suspect``/``is_expired`` expose the
    detector's raw judgement state for tests and diagnostics.
    """

    __slots__ = ("name", "config", "detector")

    def __init__(self, name: str, config: Optional[DetectorConfig] = None) -> None:
        self.name = name
        self.config = config if config is not None else DetectorConfig()
        #: Set by :meth:`make_detector`.
        self.detector: Optional[FailureDetector] = None

    @property
    def honest(self) -> bool:
        return self.config.honest

    # -- the routed reads ----------------------------------------------
    def believes_up(self, node: Node) -> bool:
        if self.config.honest:
            return True
        return node.available

    # -- judgement state (tests / diagnostics) -------------------------
    def is_suspect(self, node: Node) -> bool:
        """Has any of this observer's judgements tripped for ``node``?"""
        det = self.detector
        if det is None:
            return not node.available
        return bool(det._tripped.get(node.node_id))

    def is_expired(self, node: Node) -> bool:
        """Has the longest-threshold (expiry-scale) judgement tripped?"""
        det = self.detector
        if det is None or not det._judgements:
            return False
        tripped = det._tripped.get(node.node_id)
        if not tripped:
            return False
        expiry_idx = max(
            range(len(det._judgements)), key=lambda i: det._judgements[i].threshold
        )
        return expiry_idx in tripped

    # -- factory -------------------------------------------------------
    def make_detector(
        self,
        sim: Simulation,
        cluster: Cluster,
        heartbeat_interval: float = 3.0,
    ) -> FailureDetector:
        """Build this observer's detector: the untouched analytical
        :class:`FailureDetector` under the oracle, an
        :class:`HonestDetector` otherwise."""
        if self.config.honest:
            det: FailureDetector = HonestDetector(
                sim, cluster, self, heartbeat_interval
            )
        else:
            det = FailureDetector(sim, cluster, heartbeat_interval)
        self.detector = det
        return det


class HonestDetector(FailureDetector):
    """Heartbeat judgement with delayed detection, observation noise,
    and (optionally) per-node adaptive thresholds."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        view: NodeView,
        heartbeat_interval: float = 3.0,
    ) -> None:
        super().__init__(sim, cluster, heartbeat_interval)
        self.view = view
        self.config = view.config
        self._silence_rate = self.config.silences_per_hour / 3600.0
        #: node_id -> Welford stats over observed silence gaps
        self._gaps: Dict[int, _Welford] = {}
        #: node_id -> block-prefetching sampler over the node's stream.
        #: Both draw sites (silence gap and silence duration) are
        #: exponential, so the sampler stays byte-identical to the
        #: scalar Generator calls it replaced.
        self._rngs: Dict[int, StreamSampler] = {}
        #: node_id -> pending silence-arrival event
        self._silence_arrival: Dict[int, object] = {}
        #: node_id -> events of the silence currently in progress
        self._silence_live: Dict[int, List[object]] = {}
        metrics = sim.obs.metrics
        self._m_trips = metrics.counter("detector/trips")
        self._m_false = metrics.counter("detector/false_positives")
        self._m_recovers = metrics.counter("detector/recoveries")
        self._h_latency = metrics.histogram("detector/detection_latency_seconds")
        self._tracer = sim.obs.tracer
        for node in cluster.nodes:
            self._arm_silence(node)
        cluster.on_provision(self._node_provisioned)
        cluster.on_decommission(self._node_decommissioned)

    # ------------------------------------------------------------------
    # Effective thresholds
    # ------------------------------------------------------------------
    def _effective_threshold(self, node: Node, idx: int) -> float:
        j = self._judgements[idx]
        base = j.threshold * self.config.timeout_scale
        if not j.adapt or self.config.mode != "adaptive":
            return base
        gaps = self._gaps.get(node.node_id)
        if gaps is None or gaps.n < self.config.adaptive_min_samples:
            return base  # bootstrap like the fixed timeout, never guess
        eff = gaps.mean + self.config.phi * gaps.std
        lo = self.config.adaptive_floor * self.heartbeat_interval
        hi = self.config.adaptive_cap * base
        return min(max(eff, lo), hi)

    def _observe_gap(self, node: Node, gap: float) -> None:
        stats = self._gaps.get(node.node_id)
        if stats is None:
            stats = self._gaps[node.node_id] = _Welford()
        stats.add(gap)

    # ------------------------------------------------------------------
    # Silence episodes (observation noise on a healthy node)
    # ------------------------------------------------------------------
    def _rng_for(self, node: Node) -> StreamSampler:
        rng = self._rngs.get(node.node_id)
        if rng is None:
            rng = StreamSampler(
                self.sim.rng_indexed(f"detector/{self.view.name}", node.node_id),
                block=64,
            )
            self._rngs[node.node_id] = rng
        return rng

    def _arm_silence(self, node: Node) -> None:
        if self._silence_rate <= 0.0:
            return
        gap = float(self._rng_for(node).exponential(1.0 / self._silence_rate))
        self._silence_arrival[node.node_id] = self.sim.call_after(
            gap, self._silence_begin, node, priority=PRIORITY_HEARTBEAT, daemon=True
        )

    def _silence_begin(self, node: Node) -> None:
        self._silence_arrival.pop(node.node_id, None)
        if not node.available:
            # Actually down: the real-outage machinery owns judgement.
            self._arm_silence(node)
            return
        duration = float(self._rng_for(node).exponential(self.config.mean_silence))
        h = self.heartbeat_interval
        events: List[object] = []
        for i in range(len(self._judgements)):
            notice = self._effective_threshold(node, i) + h
            if notice <= duration:
                events.append(
                    self.sim.call_after(
                        notice,
                        self._false_trip,
                        node,
                        i,
                        priority=PRIORITY_HEARTBEAT,
                        daemon=True,
                    )
                )
        events.append(
            self.sim.call_after(
                duration,
                self._silence_end,
                node,
                duration,
                priority=PRIORITY_HEARTBEAT,
                daemon=True,
            )
        )
        self._silence_live[node.node_id] = events

    def _false_trip(self, node: Node, idx: int) -> None:
        if not node.available:  # a real outage took over (stale timer)
            return
        tripped = self._tripped.setdefault(node.node_id, set())
        if idx in tripped:
            return
        tripped.add(idx)
        self._m_trips.inc()
        self._m_false.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "detector.false_positive",
                "detector",
                self.sim.now,
                node=node.node_id,
                judgement=self._judgements[idx].name,
                observer=self.view.name,
            )
        self._judgements[idx].on_trip(node)

    def _silence_end(self, node: Node, duration: float) -> None:
        self._silence_live.pop(node.node_id, None)
        self._observe_gap(node, duration + self.heartbeat_interval)
        if node.available:
            tripped = self._tripped.pop(node.node_id, set())
            for idx in sorted(tripped):
                self._recover(node, idx)
        self._arm_silence(node)

    # ------------------------------------------------------------------
    # Real outages
    # ------------------------------------------------------------------
    def _node_suspended(self, node: Node) -> None:
        # The silence (if any) just became a real outage: cancel its
        # machinery but keep whatever it already tripped.
        arrival = self._silence_arrival.pop(node.node_id, None)
        if arrival is not None:
            arrival.cancel()
        for ev in self._silence_live.pop(node.node_id, ()):
            ev.cancel()
        super()._node_suspended(node)

    def _node_resumed(self, node: Node) -> None:
        down = self._down_since.get(node.node_id)
        if down is not None:
            self._observe_gap(node, self.sim.now - down + self.heartbeat_interval)
        super()._node_resumed(node)
        self._arm_silence(node)

    def _note_trip(self, node: Node, idx: int) -> None:
        self._m_trips.inc()
        down = self._down_since.get(node.node_id)
        if down is not None:
            self._h_latency.observe(self.sim.now - down)
        if self._tracer.enabled:
            self._tracer.instant(
                "detector.trip",
                "detector",
                self.sim.now,
                node=node.node_id,
                judgement=self._judgements[idx].name,
                observer=self.view.name,
            )

    def _recover(self, node: Node, idx: int) -> None:
        self._m_recovers.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "detector.recover",
                "detector",
                self.sim.now,
                node=node.node_id,
                judgement=self._judgements[idx].name,
                observer=self.view.name,
            )
        super()._recover(node, idx)

    # ------------------------------------------------------------------
    # Membership churn
    # ------------------------------------------------------------------
    def _node_provisioned(self, node: Node) -> None:
        self._arm_silence(node)

    def _node_decommissioned(self, node: Node) -> None:
        arrival = self._silence_arrival.pop(node.node_id, None)
        if arrival is not None:
            arrival.cancel()
        for ev in self._silence_live.pop(node.node_id, ()):
            ev.cancel()
        self._cancel_pending(node)
        self._tripped.pop(node.node_id, None)
        self._down_since.pop(node.node_id, None)
