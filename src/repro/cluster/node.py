"""Cluster nodes: volatile volunteer PCs and dedicated anchors."""

from __future__ import annotations

import enum
from typing import Optional

from ..config import NodeSpec
from ..traces import AvailabilityTrace


class NodeKind(enum.Enum):
    """Resource class: DEDICATED anchors vs VOLATILE volunteer PCs."""
    VOLATILE = "volatile"
    DEDICATED = "dedicated"


class Node:
    """One machine.  ``available`` tracks the *instantaneous* trace
    state; failure-detector states (suspended / hibernated / dead) are
    judgements made by observers with heartbeat delay, and live in the
    observing components (JobTracker, NameNode), not here.

    Nodes start ``available``; a trace that is down at t=0 delivers its
    suspend through the :class:`~repro.cluster.monitor.AvailabilityMonitor`
    as a priority event at t=0, so every observer sees the transition.
    """

    __slots__ = (
        "node_id", "kind", "spec", "trace", "available", "name", "draining"
    )

    def __init__(
        self,
        node_id: int,
        kind: NodeKind,
        spec: NodeSpec,
        trace: Optional[AvailabilityTrace] = None,
    ) -> None:
        self.node_id = node_id
        self.kind = kind
        self.spec = spec
        self.trace = trace
        self.available = True
        #: Graceful decommission in progress: the node finishes running
        #: work but accepts no new tasks or replicas (service autoscale).
        self.draining = False
        self.name = f"{kind.value}-{node_id}"

    @property
    def is_dedicated(self) -> bool:
        return self.kind is NodeKind.DEDICATED

    @property
    def is_volatile(self) -> bool:
        return self.kind is NodeKind.VOLATILE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.available else "down"
        return f"<Node {self.name} {state}>"
