"""Cluster container + availability fan-out to observers."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..config import ClusterConfig, TraceConfig
from ..errors import ConfigError
from ..simulation import Simulation
from ..traces import AvailabilityTrace, generate_trace
from .node import Node, NodeKind

SuspendListener = Callable[[Node], None]
ResumeListener = Callable[[Node], None]


class Cluster:
    """All nodes of one run.  Dedicated nodes get ids ``0..D-1`` so the
    placement code can iterate them cheaply; volatile nodes follow."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ConfigError("empty cluster")
        self.nodes: List[Node] = list(nodes)
        self._by_id: Dict[int, Node] = {n.node_id: n for n in nodes}
        if len(self._by_id) != len(self.nodes):
            raise ConfigError("duplicate node ids")
        self.dedicated: List[Node] = [n for n in nodes if n.is_dedicated]
        self.volatile: List[Node] = [n for n in nodes if n.is_volatile]
        self._suspend_listeners: List[SuspendListener] = []
        self._resume_listeners: List[ResumeListener] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    def available_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.available]

    def unavailable_fraction(self) -> float:
        down = sum(1 for n in self.nodes if not n.available)
        return down / len(self.nodes)

    # ------------------------------------------------------------------
    def on_suspend(self, listener: SuspendListener) -> None:
        self._suspend_listeners.append(listener)

    def on_resume(self, listener: ResumeListener) -> None:
        self._resume_listeners.append(listener)

    def _notify_suspend(self, node: Node) -> None:
        node.available = False
        for listener in self._suspend_listeners:
            listener(node)

    def _notify_resume(self, node: Node) -> None:
        node.available = True
        for listener in self._resume_listeners:
            listener(node)


def connect_network(cluster: Cluster, network) -> None:
    """Wire node availability into a transfer model: suspending a node
    aborts its in-flight transfers (the VM-pause semantics of III)."""
    cluster.on_suspend(lambda node: network.node_down(node.node_id))
    cluster.on_resume(lambda node: network.node_up(node.node_id))


def build_cluster(
    sim: Simulation,
    cluster_cfg: ClusterConfig,
    trace_cfg: Optional[TraceConfig],
    dedicated_traces: Optional[Sequence[AvailabilityTrace]] = None,
) -> Cluster:
    """Construct nodes with per-node synthetic traces.

    Volatile nodes follow ``trace_cfg``; dedicated nodes are always
    available unless explicit ``dedicated_traces`` are supplied (the
    paper assumes dedicated unavailability < 0.4^3 ~ 0.06, effectively 0
    at experiment scale).
    """
    cluster_cfg.validate()
    nodes: List[Node] = []
    nid = 0
    for i in range(cluster_cfg.n_dedicated):
        trace = None
        if dedicated_traces is not None and i < len(dedicated_traces):
            trace = dedicated_traces[i]
        nodes.append(Node(nid, NodeKind.DEDICATED, cluster_cfg.dedicated, trace))
        nid += 1
    for i in range(cluster_cfg.n_volatile):
        trace = None
        if trace_cfg is not None and trace_cfg.unavailability_rate > 0:
            trace = generate_trace(trace_cfg, sim.rng_indexed("trace", i))
        nodes.append(Node(nid, NodeKind.VOLATILE, cluster_cfg.volatile, trace))
        nid += 1
    return Cluster(nodes)
