"""Cluster container + availability fan-out to observers.

Membership is no longer fixed for a run: the service layer's
autoscaler grows and shrinks the *dedicated* tier at runtime through
:meth:`Cluster.provision_dedicated` / :meth:`Cluster.decommission_dedicated`.
Decommissioning is graceful: the node is immediately removed from the
placement/scheduling candidate pools (``on_drain_begin``), keeps
running whatever work it already holds, and only leaves the cluster —
``on_decommission`` fan-out, in-flight transfers aborted by the
observers — once its owner (the JobTracker) declares the drain
complete via :meth:`finish_decommission`.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

from ..config import ClusterConfig, NodeSpec, TraceConfig
from ..errors import ConfigError
from ..simulation import Simulation
from ..traces import AvailabilityTrace, generate_trace
from .node import Node, NodeKind

SuspendListener = Callable[[Node], None]
ResumeListener = Callable[[Node], None]
LifecycleListener = Callable[[Node], None]


class Cluster:
    """All nodes of one run.  Dedicated nodes get ids ``0..D-1`` so the
    placement code can iterate them cheaply; volatile nodes follow.
    Nodes provisioned later reuse retired dedicated ids when possible
    (lowest first), else extend past the current maximum."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ConfigError("empty cluster")
        self.nodes: List[Node] = list(nodes)
        self._by_id: Dict[int, Node] = {n.node_id: n for n in nodes}
        if len(self._by_id) != len(self.nodes):
            raise ConfigError("duplicate node ids")
        self.dedicated: List[Node] = [n for n in nodes if n.is_dedicated]
        self.volatile: List[Node] = [n for n in nodes if n.is_volatile]
        self._suspend_listeners: List[SuspendListener] = []
        self._resume_listeners: List[ResumeListener] = []
        # Dynamic-membership plumbing (dedicated tier autoscaling).
        self._provision_listeners: List[LifecycleListener] = []
        self._drain_listeners: List[LifecycleListener] = []
        self._decommission_listeners: List[LifecycleListener] = []
        #: node_id -> Node for nodes mid-drain (insertion-ordered).
        self._draining: Dict[int, Node] = {}
        #: Retired dedicated ids available for reuse, kept sorted.
        self._retired_ids: List[int] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self._by_id[node_id]

    def available_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.available]

    def unavailable_fraction(self) -> float:
        down = sum(1 for n in self.nodes if not n.available)
        return down / len(self.nodes)

    # ------------------------------------------------------------------
    def on_suspend(self, listener: SuspendListener) -> None:
        self._suspend_listeners.append(listener)

    def on_resume(self, listener: ResumeListener) -> None:
        self._resume_listeners.append(listener)

    def _notify_suspend(self, node: Node) -> None:
        node.available = False
        for listener in self._suspend_listeners:
            listener(node)

    def _notify_resume(self, node: Node) -> None:
        node.available = True
        for listener in self._resume_listeners:
            listener(node)

    # ------------------------------------------------------------------
    # Dynamic dedicated-tier membership (service autoscaling)
    # ------------------------------------------------------------------
    def on_provision(self, listener: LifecycleListener) -> None:
        """``listener(node)`` fires after a new node joins the cluster."""
        self._provision_listeners.append(listener)

    def on_drain_begin(self, listener: LifecycleListener) -> None:
        """``listener(node)`` fires when a node starts its graceful
        drain: still running existing work, accepting nothing new."""
        self._drain_listeners.append(listener)

    def on_decommission(self, listener: LifecycleListener) -> None:
        """``listener(node)`` fires after a drained node has left the
        membership maps; observers drop their per-node state (and abort
        any I/O still touching it) here."""
        self._decommission_listeners.append(listener)

    def draining_nodes(self) -> List[Node]:
        return list(self._draining.values())

    def provision_dedicated(self, spec: Optional[NodeSpec] = None) -> Node:
        """Add one dedicated node, reusing the lowest retired id if any
        (a long-lived service must not grow ids without bound)."""
        if spec is None:
            spec = NodeSpec()
        spec.validate()
        if self._retired_ids:
            node_id = self._retired_ids.pop(0)
        else:
            node_id = max(self._by_id) + 1 if self._by_id else 0
        node = Node(node_id, NodeKind.DEDICATED, spec)
        self.nodes.append(node)
        self._by_id[node_id] = node
        self.dedicated.append(node)
        for listener in self._provision_listeners:
            listener(node)
        return node

    def decommission_dedicated(self, node_id: int) -> Node:
        """Start a graceful drain of one dedicated node.

        The node immediately leaves ``self.dedicated`` (so placement
        and hybrid scheduling stop offering it) but stays in
        ``self.nodes``: running attempts finish, stored replicas keep
        serving reads.  The JobTracker watches the drain and calls
        :meth:`finish_decommission` once the node is idle.
        """
        node = self._by_id.get(node_id)
        if node is None:
            raise ConfigError(f"unknown node id: {node_id}")
        if not node.is_dedicated:
            raise ConfigError(f"node {node_id} is not dedicated")
        if node.draining:
            raise ConfigError(f"node {node_id} is already draining")
        if len(self.nodes) - len(self._draining) <= 1:
            raise ConfigError("cannot decommission the last cluster node")
        node.draining = True
        self.dedicated.remove(node)
        self._draining[node_id] = node
        for listener in self._drain_listeners:
            listener(node)
        return node

    def finish_decommission(self, node_id: int) -> Node:
        """Complete a drain: remove the node and notify observers.

        Observers run in registration order — in a wired system the
        NameNode (drops replicas, queues re-replication) before the
        network (aborts in-flight transfers, so e.g. a reducer
        mid-fetch fails over through the normal fetch-failure path).
        """
        node = self._draining.pop(node_id, None)
        if node is None:
            raise ConfigError(f"node {node_id} is not draining")
        self.nodes.remove(node)
        del self._by_id[node_id]
        self._retired_ids.append(node_id)
        self._retired_ids.sort()
        for listener in self._decommission_listeners:
            listener(node)
        return node


def connect_network(cluster: Cluster, network) -> None:
    """Wire node availability into a transfer model: suspending a node
    aborts its in-flight transfers (the VM-pause semantics of III).

    Provisioned nodes register their ports here, *before* any other
    observer can direct I/O at them.  The decommission side is wired
    separately (see :class:`~repro.core.MoonSystem`): the network must
    abort transfers only after the NameNode has dropped the node's
    replicas, i.e. it must be the *last* decommission listener.
    """
    # Partials of module-level adapters, not lambdas: these listeners
    # live on the cluster for the whole run and must survive
    # snapshot/resume pickling.
    cluster.on_suspend(partial(_net_suspend, network))
    cluster.on_resume(partial(_net_resume, network))
    cluster.on_provision(partial(_net_provision, network))


def _net_suspend(network, node) -> None:
    network.node_down(node.node_id)


def _net_resume(network, node) -> None:
    network.node_up(node.node_id)


def _net_provision(network, node) -> None:
    network.register_node(
        node.node_id, node.spec.disk_mbps, node.spec.nic_mbps
    )


def build_cluster(
    sim: Simulation,
    cluster_cfg: ClusterConfig,
    trace_cfg: Optional[TraceConfig],
    dedicated_traces: Optional[Sequence[AvailabilityTrace]] = None,
) -> Cluster:
    """Construct nodes with per-node synthetic traces.

    Volatile nodes follow ``trace_cfg``; dedicated nodes are always
    available unless explicit ``dedicated_traces`` are supplied (the
    paper assumes dedicated unavailability < 0.4^3 ~ 0.06, effectively 0
    at experiment scale).
    """
    cluster_cfg.validate()
    nodes: List[Node] = []
    nid = 0
    for i in range(cluster_cfg.n_dedicated):
        trace = None
        if dedicated_traces is not None and i < len(dedicated_traces):
            trace = dedicated_traces[i]
        nodes.append(Node(nid, NodeKind.DEDICATED, cluster_cfg.dedicated, trace))
        nid += 1
    for i in range(cluster_cfg.n_volatile):
        trace = None
        if trace_cfg is not None and trace_cfg.unavailability_rate > 0:
            trace = generate_trace(trace_cfg, sim.rng_indexed("trace", i))
        nodes.append(Node(nid, NodeKind.VOLATILE, cluster_cfg.volatile, trace))
        nid += 1
    return Cluster(nodes)
