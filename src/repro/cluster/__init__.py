"""Cluster substrate (S4): nodes, availability replay, failure
detection, and dynamic dedicated-tier membership.

Owns the physical layer of the reproduction: :class:`Node` (volatile
volunteer PCs vs dedicated anchors, paper Section III),
:class:`Cluster` (membership maps + listener fan-out),
:class:`AvailabilityMonitor` (replays each node's outage trace as
suspend/resume events — the paper's per-node monitoring process,
Section VI), and :class:`FailureDetector` (heartbeat judgements
computed analytically instead of simulating every 3-second beat).
The provision / graceful-drain / decommission API that the service
layer's autoscaler drives lives on :class:`Cluster`.

Reproduces the machinery behind Figs. 1 and 4 (node volatility and
its detection); see docs/ARCHITECTURE.md#cluster for the layer map.
"""

from .cluster import Cluster, build_cluster, connect_network
from .detector import FailureDetector
from .monitor import AvailabilityMonitor
from .node import Node, NodeKind
from .suspicion import DETECTOR_MODES, HonestDetector, NodeView

__all__ = [
    "Node",
    "NodeKind",
    "Cluster",
    "build_cluster",
    "connect_network",
    "AvailabilityMonitor",
    "FailureDetector",
    "NodeView",
    "HonestDetector",
    "DETECTOR_MODES",
]
