"""Cluster substrate (S4): nodes, availability replay, failure detection."""

from .cluster import Cluster, build_cluster, connect_network
from .detector import FailureDetector
from .monitor import AvailabilityMonitor
from .node import Node, NodeKind

__all__ = [
    "Node",
    "NodeKind",
    "Cluster",
    "build_cluster",
    "connect_network",
    "AvailabilityMonitor",
    "FailureDetector",
]
