"""Availability monitor: replays each node's trace as suspend/resume
events, exactly like the paper's per-node monitoring process that
suspends and resumes all Hadoop/MOON processes (Section VI)."""

from __future__ import annotations

from ..simulation import PRIORITY_NODE_STATE, Simulation
from .cluster import Cluster
from .node import Node


class AvailabilityMonitor:
    """Schedules every trace transition for every node at start-up.

    Transitions carry ``PRIORITY_NODE_STATE`` so at any timestamp the
    cluster state is updated before heartbeats, transfers or scheduler
    work run at that same instant.
    """

    def __init__(self, sim: Simulation, cluster: Cluster) -> None:
        self.sim = sim
        self.cluster = cluster
        self._scheduled = 0
        # Flight recorder: transition counts plus per-node instants.
        self._trace = sim.obs.tracer
        metrics = sim.obs.metrics
        self._m_suspends = metrics.counter("cluster/suspensions")
        self._m_resumes = metrics.counter("cluster/resumes")
        for node in cluster.nodes:
            if node.trace is None:
                continue
            for interval in node.trace:
                if interval.start >= 0:
                    sim.call_at(
                        interval.start,
                        self._suspend,
                        node,
                        priority=PRIORITY_NODE_STATE,
                    )
                    sim.call_at(
                        interval.end,
                        self._resume,
                        node,
                        priority=PRIORITY_NODE_STATE,
                    )
                    self._scheduled += 2

    @property
    def scheduled_transitions(self) -> int:
        return self._scheduled

    def _suspend(self, node: Node) -> None:
        if node.available:
            self._m_suspends.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "node.suspend", "node", self.sim.now, node=node.node_id
                )
            self.cluster._notify_suspend(node)

    def _resume(self, node: Node) -> None:
        if not node.available:
            self._m_resumes.inc()
            if self._trace.enabled:
                self._trace.instant(
                    "node.resume", "node", self.sim.now, node=node.node_id
                )
            self.cluster._notify_resume(node)
