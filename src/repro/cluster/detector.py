"""Heartbeat-based failure detection, computed analytically.

Hadoop decides a worker is gone when no heartbeat arrived for an expiry
interval.  Simulating each 3-second heartbeat would cost ~600k events
per run, so we use the exact equivalent: when a node suspends at time
``t``, a judgement for threshold ``T`` fires at ``t + T + h`` (``h`` =
heartbeat interval, the last beat seen before the outage) *iff* the
node is still down.  Resuming cancels pending judgements and notifies
recovery for all judgements already delivered.

One :class:`FailureDetector` serves one observer (JobTracker or
NameNode) and can carry several thresholds, e.g. MOON's NameNode
watches NodeHibernateInterval *and* NodeExpiryInterval.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from ..simulation import PRIORITY_HEARTBEAT, Simulation
from .cluster import Cluster
from .node import Node

DownCallback = Callable[[Node], None]
UpCallback = Callable[[Node], None]


class _Judgement(NamedTuple):
    name: str
    threshold: float
    on_trip: DownCallback
    on_recover: Optional[UpCallback]
    #: May this threshold be tightened/widened by an adaptive detector?
    #: Expiry-scale judgements keep their configured value (an adaptive
    #: detector must never expire a node after a few seconds of silence).
    adapt: bool = False


class FailureDetector:
    """Per-observer heartbeat watcher with multiple named thresholds."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        heartbeat_interval: float = 3.0,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.heartbeat_interval = heartbeat_interval
        self._judgements: List[_Judgement] = []
        #: node_id -> list of pending timer events (parallel to judgements)
        self._pending: Dict[int, List[Optional[object]]] = {}
        #: node_id -> set of judgement indices already tripped
        self._tripped: Dict[int, set] = {}
        #: node_id -> sim time of the current (actual) suspension
        self._down_since: Dict[int, float] = {}
        cluster.on_suspend(self._node_suspended)
        cluster.on_resume(self._node_resumed)

    def add_threshold(
        self,
        name: str,
        threshold: float,
        on_trip: DownCallback,
        on_recover: Optional[UpCallback] = None,
        adapt: bool = False,
    ) -> None:
        """Register: call ``on_trip(node)`` once the node has been silent
        for ``threshold`` seconds; ``on_recover(node)`` when it returns
        after tripping."""
        self._judgements.append(
            _Judgement(name, threshold, on_trip, on_recover, adapt)
        )

    def has_tripped(self, node: Node, name: str) -> bool:
        idx = self._index(name)
        return idx in self._tripped.get(node.node_id, set())

    def _index(self, name: str) -> int:
        for i, j in enumerate(self._judgements):
            if j.name == name:
                return i
        raise KeyError(name)

    def _effective_threshold(self, node: Node, idx: int) -> float:
        """Seconds of silence before judgement ``idx`` trips for ``node``.

        The oracle detector uses the configured value verbatim; honest
        subclasses scale it or learn it per node (phi-accrual style).
        """
        return self._judgements[idx].threshold

    # ------------------------------------------------------------------
    def _node_suspended(self, node: Node) -> None:
        self._down_since[node.node_id] = self.sim.now
        events: List[Optional[object]] = []
        for i in range(len(self._judgements)):
            # Last heartbeat was at most `heartbeat_interval` before the
            # outage; the observer notices silence at threshold past it.
            delay = self._effective_threshold(node, i) + self.heartbeat_interval
            events.append(
                self.sim.call_after(
                    delay, self._trip, node, i, priority=PRIORITY_HEARTBEAT
                )
            )
        self._pending[node.node_id] = events

    def _trip(self, node: Node, idx: int) -> None:
        if node.available:  # stale timer (resume races are cancelled, but be safe)
            return
        tripped = self._tripped.setdefault(node.node_id, set())
        if idx in tripped:  # already suspected by an earlier (false) trip
            return
        pending = self._pending.get(node.node_id)
        if pending is not None:
            pending[idx] = None
        tripped.add(idx)
        self._note_trip(node, idx)
        self._judgements[idx].on_trip(node)

    def _note_trip(self, node: Node, idx: int) -> None:
        """Observability hook; honest detectors record trip metrics."""

    def _node_resumed(self, node: Node) -> None:
        self._down_since.pop(node.node_id, None)
        self._cancel_pending(node)
        tripped = self._tripped.pop(node.node_id, set())
        for idx in sorted(tripped):
            self._recover(node, idx)

    def _cancel_pending(self, node: Node) -> None:
        for ev in self._pending.pop(node.node_id, []):
            if ev is not None:
                ev.cancel()

    def _recover(self, node: Node, idx: int) -> None:
        j = self._judgements[idx]
        if j.on_recover is not None:
            j.on_recover(node)
