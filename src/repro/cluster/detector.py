"""Heartbeat-based failure detection, computed analytically.

Hadoop decides a worker is gone when no heartbeat arrived for an expiry
interval.  Simulating each 3-second heartbeat would cost ~600k events
per run, so we use the exact equivalent: when a node suspends at time
``t``, a judgement for threshold ``T`` fires at ``t + T + h`` (``h`` =
heartbeat interval, the last beat seen before the outage) *iff* the
node is still down.  Resuming cancels pending judgements and notifies
recovery for all judgements already delivered.

One :class:`FailureDetector` serves one observer (JobTracker or
NameNode) and can carry several thresholds, e.g. MOON's NameNode
watches NodeHibernateInterval *and* NodeExpiryInterval.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from ..simulation import PRIORITY_HEARTBEAT, Simulation
from .cluster import Cluster
from .node import Node

DownCallback = Callable[[Node], None]
UpCallback = Callable[[Node], None]


class _Judgement(NamedTuple):
    name: str
    threshold: float
    on_trip: DownCallback
    on_recover: Optional[UpCallback]


class FailureDetector:
    """Per-observer heartbeat watcher with multiple named thresholds."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        heartbeat_interval: float = 3.0,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.heartbeat_interval = heartbeat_interval
        self._judgements: List[_Judgement] = []
        #: node_id -> list of pending timer events (parallel to judgements)
        self._pending: Dict[int, List[Optional[object]]] = {}
        #: node_id -> set of judgement indices already tripped
        self._tripped: Dict[int, set] = {}
        cluster.on_suspend(self._node_suspended)
        cluster.on_resume(self._node_resumed)

    def add_threshold(
        self,
        name: str,
        threshold: float,
        on_trip: DownCallback,
        on_recover: Optional[UpCallback] = None,
    ) -> None:
        """Register: call ``on_trip(node)`` once the node has been silent
        for ``threshold`` seconds; ``on_recover(node)`` when it returns
        after tripping."""
        self._judgements.append(_Judgement(name, threshold, on_trip, on_recover))

    def has_tripped(self, node: Node, name: str) -> bool:
        idx = self._index(name)
        return idx in self._tripped.get(node.node_id, set())

    def _index(self, name: str) -> int:
        for i, j in enumerate(self._judgements):
            if j.name == name:
                return i
        raise KeyError(name)

    # ------------------------------------------------------------------
    def _node_suspended(self, node: Node) -> None:
        events: List[Optional[object]] = []
        for i, j in enumerate(self._judgements):
            # Last heartbeat was at most `heartbeat_interval` before the
            # outage; the observer notices silence at threshold past it.
            delay = j.threshold + self.heartbeat_interval
            events.append(
                self.sim.call_after(
                    delay, self._trip, node, i, priority=PRIORITY_HEARTBEAT
                )
            )
        self._pending[node.node_id] = events

    def _trip(self, node: Node, idx: int) -> None:
        if node.available:  # stale timer (resume races are cancelled, but be safe)
            return
        pending = self._pending.get(node.node_id)
        if pending is not None:
            pending[idx] = None
        self._tripped.setdefault(node.node_id, set()).add(idx)
        self._judgements[idx].on_trip(node)

    def _node_resumed(self, node: Node) -> None:
        for ev in self._pending.pop(node.node_id, []):
            if ev is not None:
                ev.cancel()
        tripped = self._tripped.pop(node.node_id, set())
        for idx in sorted(tripped):
            j = self._judgements[idx]
            if j.on_recover is not None:
                j.on_recover(node)
