"""Perf-regression harness: timed macro-scenarios + baseline checks.

``repro perf`` times named end-to-end scenarios (figure-pipeline
slices, 2k-job service streams — ``service2k`` and the autoscaled
``autoscale2k`` — and a fair-share network stress), writes
``BENCH_PR2.json`` at the repo root and fails when a scenario runs
>20% slower than the committed baseline in
``benchmarks/perf/baseline.json``.  Each scenario's simulated-event
count doubles as a behaviour checksum (drift vs the baseline means
the simulation changed, not just its speed).

See docs/ARCHITECTURE.md#perf-harness and
docs/ARCHITECTURE.md#invariants for the golden re-pinning workflow.
"""

from .runner import (
    REGRESSION_THRESHOLD_PCT,
    load_baseline,
    run_perf,
    time_scenario,
)
from .scenarios import PERF_SCALE, SCENARIOS, Scenario

__all__ = [
    "PERF_SCALE",
    "REGRESSION_THRESHOLD_PCT",
    "SCENARIOS",
    "Scenario",
    "load_baseline",
    "run_perf",
    "time_scenario",
]
