"""Timing, baseline comparison and JSON emission for `repro perf`.

The committed baseline (``benchmarks/perf/baseline.json``) records the
wall-clock each scenario took at the harness's introduction, measured
pre-optimization on the reference machine.  Every ``repro perf`` run
re-times the requested scenarios, writes ``BENCH_PR2.json`` at the
repo root and — under ``--check`` — fails when a scenario's wall-clock
regresses more than :data:`REGRESSION_THRESHOLD_PCT` percent against
the baseline.  ``--update-baseline`` re-pins the baseline file after a
deliberate change (new machine, new scenario, accepted slowdown).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

from .scenarios import SCENARIOS

#: A scenario slower than baseline by more than this fails ``--check``.
REGRESSION_THRESHOLD_PCT = 20.0

#: Under ``--check``, one scenario is re-run with tracing armed; the
#: traced run failing to stay within this overhead — or drifting on
#: the event checksum — fails the gate (the obs-on half of the ISSUE-6
#: invariant: tracing observes the simulation, never perturbs it).
OBS_OVERHEAD_THRESHOLD_PCT = 10.0

#: Baseline location relative to the repo root.
BASELINE_RELPATH = os.path.join("benchmarks", "perf", "baseline.json")
#: Report emitted at the repo root.
REPORT_NAME = "BENCH_PR2.json"


def find_repo_root(start: Optional[str] = None) -> Optional[str]:
    """Walk upward from ``start`` (default cwd) to the directory that
    holds the committed baseline; None when run outside the repo."""
    d = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.exists(os.path.join(d, BASELINE_RELPATH)):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


def load_baseline(path: Optional[str] = None) -> Dict[str, dict]:
    """Baseline entries keyed by scenario name ({} when absent)."""
    if path is None:
        root = find_repo_root()
        if root is None:
            return {}
        path = os.path.join(root, BASELINE_RELPATH)
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return data.get("scenarios", {})


def time_scenario(name: str, repeat: int = 1) -> dict:
    """Run one scenario ``repeat`` times; report the fastest wall."""
    scenario = SCENARIOS[name]
    best_wall = None
    work: Dict[str, float] = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        work = scenario.run()
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    entry = {
        "description": scenario.description,
        "wall_s": round(best_wall, 6),
        "events": int(work.get("events", 0)),
        "events_per_s": (
            round(work.get("events", 0) / best_wall) if best_wall > 0 else 0
        ),
    }
    for key, value in sorted(work.items()):
        if key != "events":
            entry[key] = round(value, 3)
    return entry


def run_perf(
    names: Optional[List[str]] = None,
    repeat: int = 1,
    check: bool = False,
    update_baseline: bool = False,
    output: Optional[str] = None,
    baseline_path: Optional[str] = None,
    out=sys.stdout,
) -> int:
    """Drive the harness; returns a process exit code."""
    names = list(names or SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            print(f"unknown scenario: {name!r} "
                  f"(have: {', '.join(SCENARIOS)})", file=out)
            return 2
    baseline = load_baseline(baseline_path)

    results: Dict[str, dict] = {}
    regressions: List[str] = []
    for name in names:
        print(f"[perf] {name}: {SCENARIOS[name].description}", file=out)
        entry = time_scenario(name, repeat=repeat)
        base = baseline.get(name)
        if base and base.get("wall_s"):
            wall = max(entry["wall_s"], 1e-9)
            entry["baseline_wall_s"] = base["wall_s"]
            entry["speedup_vs_baseline"] = round(base["wall_s"] / wall, 2)
            slowdown_pct = 100.0 * (wall / base["wall_s"] - 1.0)
            entry["regressed"] = slowdown_pct > REGRESSION_THRESHOLD_PCT
            if entry["regressed"]:
                regressions.append(
                    f"{name}: {entry['wall_s']:.2f}s vs baseline "
                    f"{base['wall_s']:.2f}s (+{slowdown_pct:.0f}%)"
                )
        if base and "events" in base and base["events"] != entry["events"]:
            # Wall-clock aside, the event count is a behaviour
            # checksum: a drift vs the baseline means the simulation
            # itself changed (expected only when behaviour-changing
            # work re-pins the baseline, e.g. this PR's determinism
            # fixes).  Recorded + surfaced, but not a failure.
            entry["events_match_baseline"] = False
            print(
                f"[perf] note: {name} simulated {entry['events']} events "
                f"vs {base['events']} at baseline — behaviour changed "
                "since the baseline was pinned",
                file=out,
            )
        elif base and "events" in base:
            entry["events_match_baseline"] = True
        results[name] = entry
        line = (
            f"[perf] {name}: {entry['wall_s']:.2f}s wall, "
            f"{entry['events']} events ({entry['events_per_s']}/s)"
        )
        if "speedup_vs_baseline" in entry:
            line += f", {entry['speedup_vs_baseline']:.2f}x vs baseline"
        print(line, file=out)

    obs_failures: List[str] = []
    if check:
        obs_failures = _obs_check(names[0], repeat, results, out)

    root = find_repo_root()
    out_path = output or os.path.join(root or os.getcwd(), REPORT_NAME)
    # Merge over any prior report so a partial run (e.g. CI's fig6
    # smoke) refreshes its own scenarios without clobbering the rest.
    merged_scenarios: Dict[str, dict] = {}
    if os.path.exists(out_path):
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                merged_scenarios = json.load(fh).get("scenarios", {})
        except (OSError, ValueError):
            merged_scenarios = {}
    merged_scenarios.update(results)
    report = {
        "bench": "MOON perf-regression harness (PR 2)",
        "threshold_pct": REGRESSION_THRESHOLD_PCT,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "scenarios": merged_scenarios,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[perf] wrote {out_path}", file=out)

    if update_baseline:
        base_path = baseline_path or os.path.join(
            root or os.getcwd(), BASELINE_RELPATH
        )
        merged = load_baseline(base_path)
        for name, entry in results.items():
            merged[name] = {
                "description": entry["description"],
                "wall_s": entry["wall_s"],
                "events": entry["events"],
            }
        os.makedirs(os.path.dirname(base_path), exist_ok=True)
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump({"scenarios": merged}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[perf] baseline re-pinned at {base_path}", file=out)

    if check and (regressions or obs_failures):
        for r in regressions:
            print(f"[perf] REGRESSION {r}", file=out)
        for r in obs_failures:
            print(f"[perf] OBS-CHECK FAILED {r}", file=out)
        return 1
    if check and not any("baseline_wall_s" in e for e in results.values()):
        print("[perf] --check requested but no baseline found", file=out)
        return 1
    return 0


def _obs_check(name: str, repeat: int, results: Dict[str, dict], out) -> List[str]:
    """Re-time ``name`` with tracing armed; fail on checksum drift or
    obs-on overhead beyond :data:`OBS_OVERHEAD_THRESHOLD_PCT`.

    The off-reference is the *better* of the main timing and a fresh
    untraced re-run, so warm-up effects (first-run imports, allocator
    growth) never read as tracing overhead; both sides take the
    fastest of at least two runs, because a single sample on a busy
    machine swings more than the threshold by itself.  Results land in
    the scenario's report entry under ``"obs_check"``.
    """
    from ..obs import Observability, ObsConfig, default_observability

    print(
        f"[perf] obs-check: re-timing {name} untraced, then with "
        "tracing armed",
        file=out,
    )
    reps = max(2, repeat)
    off_entry = time_scenario(name, repeat=reps)
    off_wall = min(results[name]["wall_s"], off_entry["wall_s"])
    with default_observability(Observability(ObsConfig(trace=True))):
        on_entry = time_scenario(name, repeat=reps)
    overhead_pct = 100.0 * (on_entry["wall_s"] / max(off_wall, 1e-9) - 1.0)
    events_match = (
        on_entry["events"] == results[name]["events"]
        and off_entry["events"] == results[name]["events"]
    )
    failures: List[str] = []
    if not events_match:
        failures.append(
            f"{name}: event checksum drift with tracing on — "
            f"{on_entry['events']} traced vs {results[name]['events']} "
            f"untraced (off re-run: {off_entry['events']})"
        )
    if overhead_pct > OBS_OVERHEAD_THRESHOLD_PCT:
        failures.append(
            f"{name}: obs-on overhead {overhead_pct:.1f}% exceeds "
            f"{OBS_OVERHEAD_THRESHOLD_PCT:.0f}% "
            f"({on_entry['wall_s']:.2f}s traced vs {off_wall:.2f}s off)"
        )
    results[name]["obs_check"] = {
        "events_match": events_match,
        "overhead_pct": round(overhead_pct, 1),
        "traced_wall_s": on_entry["wall_s"],
        "untraced_wall_s": off_wall,
        "threshold_pct": OBS_OVERHEAD_THRESHOLD_PCT,
    }
    print(
        f"[perf] obs-check {name}: {on_entry['wall_s']:.2f}s traced vs "
        f"{off_wall:.2f}s untraced ({overhead_pct:+.1f}%), events "
        f"{'match' if events_match else 'DRIFTED'}",
        file=out,
    )
    return failures
