"""Named macro-scenarios for the perf-regression harness.

Each scenario is an end-to-end slice of a paper pipeline (or of the
service layer) sized to run in seconds, built fresh on every call so
wall-clock timings never hit the experiment memo cache.  Scenarios pin
the reduced scale explicitly — timings must stay comparable across
machines and across ``REPRO_FULL_SCALE`` settings.

The work counters a scenario returns (simulated events, completed
jobs) double as a behaviour checksum: the same code must report the
same counts on every run.  The runner records a per-scenario
``events_match_baseline`` flag (and prints a notice on drift) so a
count change vs the committed baseline reads as "the simulation's
behaviour changed", not just its speed — expected only when a
behaviour-changing PR re-pins the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import ClusterConfig, SchedulerConfig, SystemConfig, TraceConfig
from ..core import hadoop_system, moon_system
from ..dfs import ReplicationFactor
from ..experiments.harness import hadoop_policy, moon_policy
from ..experiments.scale import Scale, sort_at
from ..workloads import JobSpec

#: The scale every scenario runs at (the benchmarks' reduced scale,
#: pinned here so env overrides cannot skew baseline comparisons).
PERF_SCALE = Scale(
    n_volatile=60,
    n_dedicated=6,
    sort_maps=384,
    wc_maps=320,
    data_factor=0.5,
    seeds=(42,),
    time_limit=4 * 3600.0,
)


def _rf(d: int, v: int) -> ReplicationFactor:
    return ReplicationFactor(d, v)


def _cell_config(
    rate: float,
    scheduler: SchedulerConfig,
    n_dedicated: Optional[int] = None,
    network_model: str = "fifo",
) -> SystemConfig:
    return SystemConfig(
        cluster=ClusterConfig(
            n_volatile=PERF_SCALE.n_volatile,
            n_dedicated=(
                PERF_SCALE.n_dedicated if n_dedicated is None else n_dedicated
            ),
        ),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=scheduler,
        seed=PERF_SCALE.seeds[0],
        network_model=network_model,
    )


def _run_cells(
    cells: List[Tuple[JobSpec, float, SchedulerConfig, bool, Optional[int], str]]
) -> Dict[str, float]:
    """Run (spec, rate, sched, hadoop_mode, n_dedicated, net) cells."""
    events = 0
    jobs_done = 0
    sim_seconds = 0.0
    for spec, rate, sched, hadoop_mode, n_ded, net in cells:
        cfg = _cell_config(rate, sched, n_dedicated=n_ded, network_model=net)
        system = hadoop_system(cfg) if hadoop_mode else moon_system(cfg)
        result = system.run_job(spec, time_limit=PERF_SCALE.time_limit)
        system.jobtracker.stop()
        system.namenode.stop()
        events += system.sim.executed_events
        sim_seconds += system.sim.now
        if result.succeeded:
            jobs_done += 1
    return {
        "events": float(events),
        "jobs_done": float(jobs_done),
        "sim_seconds": sim_seconds,
    }


# ----------------------------------------------------------------------
# Scenario bodies
# ----------------------------------------------------------------------
def _fig6_slice() -> Dict[str, float]:
    """Fig. 6 pipeline slice: sort under HA-V1 and VO-V1 at rate 0.5.

    The two intermediate-replication extremes exercise the shuffle
    pump, write pipelines and the replication queue back to back.
    """
    def spec(inter: ReplicationFactor) -> JobSpec:
        return sort_at(PERF_SCALE).with_(
            intermediate_rf=inter, input_rf=_rf(1, 3), output_rf=_rf(1, 3)
        )

    return _run_cells(
        [
            (spec(_rf(1, 1)), 0.5, moon_policy(True), False, None, "fifo"),
            (spec(_rf(0, 1)), 0.5, moon_policy(True), False, None, "fifo"),
        ]
    )


def _fig7_slice() -> Dict[str, float]:
    """Fig. 7 pipeline slice: Hadoop-VO vs MOON-Hybrid D6 at rate 0.5.

    The Hadoop-VO cell (six uniform replicas) floods the DFS layers;
    the MOON cell covers hybrid scheduling plus hibernation handling.
    """
    base = sort_at(PERF_SCALE)
    hadoop_spec = base.with_(
        input_rf=_rf(0, 6), output_rf=_rf(0, 6), intermediate_rf=_rf(0, 3)
    )
    moon_spec = base.with_(
        input_rf=_rf(1, 3), output_rf=_rf(1, 3), intermediate_rf=_rf(1, 1)
    )
    return _run_cells(
        [
            (hadoop_spec, 0.5, hadoop_policy(1), True, None, "fifo"),
            (moon_spec, 0.5, moon_policy(True), False, 6, "fifo"),
        ]
    )


def _service_2k() -> Dict[str, float]:
    """2k-job service stream: Poisson arrivals on the sleep catalog.

    ~2000 arrivals over an 8-hour horizon through admission control,
    the EDF queue and the full task machinery underneath.
    """
    from ..service import ServiceConfig, poisson_arrivals, sleep_catalog

    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_policy(True),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    arrivals = poisson_arrivals(
        system.sim.rng("service/arrivals"),
        rate_per_hour=250.0,
        horizon=8 * 3600.0,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=8 * 3600.0,
            drain_limit=4 * 3600.0,
        ),
        pattern="poisson",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
    }


def _autoscale_2k() -> Dict[str, float]:
    """2k-job bursty stream with the reactive provisioning controller.

    Exercises the dynamic-membership machinery end to end: control
    rounds on the sim clock, repeated provision / graceful-drain /
    decommission cycles (tracker and DataNode registries churn, ids
    get reused), and the node-hours accounting — on top of the same
    admission/queue/task stack as ``service2k``.
    """
    from dataclasses import replace

    from ..service import (
        AutoscaleConfig,
        ServiceConfig,
        bursty_arrivals,
        sleep_catalog,
    )

    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=replace(moon_policy(True), dedicated_primary=True),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    arrivals = bursty_arrivals(
        system.sim.rng("service/arrivals"),
        bursts_per_hour=8.0,
        burst_size_mean=30.0,
        horizon=8 * 3600.0,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=8 * 3600.0,
            drain_limit=4 * 3600.0,
            autoscale=AutoscaleConfig(
                policy="reactive", min_dedicated=1, max_dedicated=12
            ),
        ),
        pattern="bursty",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
        "scale_actions": float(len(report.scale_events)),
        "node_hours": float(report.node_hours),
    }


def _replay_2k() -> Dict[str, float]:
    """2k-job trace replay: the full workload-trace pipeline, timed.

    Synthesizes a ~2000-job stream from the bundled Hadoop-style
    sample's fitted inter-arrival law (18x load over a 4x horizon),
    calibrates every job onto the catalogue, and serves the replay
    through the EDF queue — fit + sample + calibrate + replay end to
    end, on the same cluster shape as ``service2k``.
    """
    import numpy as np

    from ..service import ServiceConfig
    from ..workload_traces import (
        SynthesisConfig,
        sample_hadoop_trace,
        synthesize,
        trace_arrivals,
    )

    trace = synthesize(
        sample_hadoop_trace(),
        np.random.default_rng(PERF_SCALE.seeds[0]),
        SynthesisConfig(load_factor=18.0, horizon_factor=4.0),
    )
    arrivals = trace_arrivals(trace)
    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_policy(True),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=trace.horizon,
            drain_limit=4 * 3600.0,
            trace_name=trace.name,
        ),
        pattern=trace.pattern,
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
    }


def _preempt_2k() -> Dict[str, float]:
    """2k-job bursty stream under SLO-aware pause preemption.

    The same admission/queue/task stack as ``service2k`` with the
    PreemptionController armed in its heaviest mode: tight-SLO bursts
    repeatedly demote and pause in-flight batch jobs, exercising the
    job-level hold/release machinery (slot release, tracker
    re-registration, shuffle re-pump on resume) at trace scale.
    """
    from ..service import (
        PreemptConfig,
        ServiceConfig,
        bursty_arrivals,
        sleep_catalog,
    )

    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_policy(True),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    arrivals = bursty_arrivals(
        system.sim.rng("service/arrivals"),
        bursts_per_hour=8.0,
        burst_size_mean=30.0,
        horizon=8 * 3600.0,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=8 * 3600.0,
            drain_limit=4 * 3600.0,
            preempt=PreemptConfig(mode="pause"),
            admission_prices=True,
        ),
        pattern="bursty",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    counts = report.preempt_counts
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
        "preempt_actions": float(len(report.preempt_events)),
        "pauses": float(counts["pause"]),
    }


def _detect_2k() -> Dict[str, float]:
    """2k-job service stream judged by the adaptive honest detector.

    The same admission/queue/task stack as ``service2k``, but node
    state is *observed* rather than oracle-fed: per-node silence
    processes, phi-accrual threshold updates on every gap, grace-period
    requeues and late-result reconciliation all run at trace scale.
    The detector counters double as a behaviour checksum for the whole
    suspicion layer.
    """
    from ..config import DetectorConfig
    from ..service import ServiceConfig, poisson_arrivals, sleep_catalog

    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_policy(True),
        detector=DetectorConfig(mode="adaptive"),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    arrivals = poisson_arrivals(
        system.sim.rng("service/arrivals"),
        rate_per_hour=250.0,
        horizon=8 * 3600.0,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=8 * 3600.0,
            drain_limit=4 * 3600.0,
        ),
        pattern="poisson",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    metrics = system.obs.metrics
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
        "trips": float(metrics.counter("detector/trips").value),
        "false_positives": float(
            metrics.counter("detector/false_positives").value
        ),
        "requeues": float(
            metrics.counter("detector/suspicion_requeues").value
        ),
    }


def _recover_2k() -> Dict[str, float]:
    """2k-job service stream with the journal on and a mid-stream
    NameNode crash.

    The same admission/queue/task stack as ``service2k``, but every
    namespace/block-map mutation appends a journal record, checkpoints
    fire on the sim clock, and at t=2h the master dies: unsynced tail
    lost, checkpoint + durable log replayed, datanode block reports
    reconverge the replica maps while the stream keeps arriving.  The
    journal counters double as a behaviour checksum for the whole
    durable-metadata layer.
    """
    from ..config import DfsConfig, JournalConfig
    from ..service import ServiceConfig, poisson_arrivals, sleep_catalog

    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_policy(True),
        dfs=DfsConfig(
            journal=JournalConfig(
                enabled=True,
                checkpoint_interval=600.0,
                crash_at=2 * 3600.0,
            )
        ),
        seed=PERF_SCALE.seeds[0],
    )
    system = moon_system(cfg)
    arrivals = poisson_arrivals(
        system.sim.rng("service/arrivals"),
        rate_per_hour=250.0,
        horizon=8 * 3600.0,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=16,
            max_queue_depth=256,
            horizon=8 * 3600.0,
            drain_limit=4 * 3600.0,
        ),
        pattern="poisson",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    metrics = system.obs.metrics
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
        "journal_records": float(
            metrics.counter("dfs/journal_records").value
        ),
        "checkpoints": float(metrics.counter("dfs/checkpoints").value),
        "replicas_recovered": float(
            metrics.counter("dfs/replicas_recovered").value
        ),
    }


def scale_stream(
    n_nodes: int = 10000,
    jobs_per_hour: float = 41667.0,
    hours: float = 24.0,
) -> Dict[str, float]:
    """Service-scale stress: an ``n_nodes``-node cluster serving a
    day-long Poisson stream (defaults: 10k nodes, ~1M jobs over 24h).

    This is the engine-scale-out checksum: batched dispatch, the
    vectorised arrival sampler, the candidacy-indexed assignment walk
    and the busy-tracker registry all run at their design scale.  The
    configuration keeps per-event cost independent of cluster size on
    purpose — every choice below is a documented scaling lever, not an
    accident:

    * ``speculative_enabled=False``: pure pending-task placement, so
      jobs whose tasks are all running drop out of the walk in O(1)
      and the per-tick progress refresh is skipped entirely;
    * dedicated-only replication (``rf {1,0}``) on a 100-node
      dedicated tier: write placement scans the tier, never the 9,900
      volatile nodes (volatile placement is rng-driven over the full
      servable pool and cannot be subsampled decision-preservingly);
    * ``release_finished=True``: the JobTracker forgets reaped jobs,
      so memory tracks the in-flight window, not the full million;
    * explicit ``n_reduces`` skips the cluster-wide slot census per
      submit, and a 15 s heartbeat bounds idle-tick overhead.

    CI runs this subsampled (see ``.github/workflows/ci.yml``); the
    committed baseline pins the full size.
    """
    from dataclasses import replace

    from ..service import MoonService, ServiceConfig
    from ..service.arrivals import WorkloadClass, poisson_arrivals_vectorised
    from ..workloads import sleep_spec

    n_dedicated = min(100, max(1, n_nodes // 100))
    sched = replace(
        moon_policy(True),
        speculative_enabled=False,
        dedicated_primary=True,
    )
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=n_nodes - n_dedicated,
                n_dedicated=n_dedicated,
                heartbeat_interval=15.0,
            ),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=sched,
            seed=PERF_SCALE.seeds[0],
        )
    )
    spec = replace(
        sleep_spec(12.0, 4.0, n_maps=1, n_reduces=1),
        intermediate_rf=_rf(1, 0),
        output_rf=_rf(1, 0),
    )
    horizon = hours * 3600.0
    arrivals = poisson_arrivals_vectorised(
        system.sim.rng("service/arrival_gaps"),
        system.sim.rng("service/arrival_picks"),
        jobs_per_hour,
        horizon,
        [WorkloadClass(spec, slo_seconds=None)],
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="fifo",
            max_in_flight=2048,
            max_queue_depth=None,
            horizon=horizon,
            drain_limit=2 * 3600.0,
            release_finished=True,
        ),
        arrivals,
        pattern="poisson",
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "events": float(system.sim.executed_events),
        "jobs_done": float(report.overall.completed),
        "sim_seconds": system.sim.now,
        "arrivals": float(len(arrivals)),
    }


def _scale10k() -> Dict[str, float]:
    return scale_stream()


def _fairshare_sort() -> Dict[str, float]:
    """Max-min fair-share network under a data-heavy sort at rate 0.3.

    Dominated by water-filling recomputation on every flow start and
    finish — the target of the incremental allocator.
    """
    spec = sort_at(PERF_SCALE).with_(
        n_maps=192,
        input_rf=_rf(1, 3),
        output_rf=_rf(1, 3),
        intermediate_rf=_rf(1, 1),
    )
    return _run_cells(
        [(spec, 0.3, moon_policy(True), False, None, "fairshare")]
    )


@dataclass(frozen=True)
class Scenario:
    """One named macro-scenario of the perf harness."""

    name: str
    description: str
    run: Callable[[], Dict[str, float]]


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("fig6", "Fig. 6 slice: sort HA-V1 + VO-V1 at rate 0.5",
                 _fig6_slice),
        Scenario("fig7", "Fig. 7 slice: Hadoop-VO + MOON-Hybrid D6 at 0.5",
                 _fig7_slice),
        Scenario("service2k", "2k-job Poisson service stream (EDF queue)",
                 _service_2k),
        Scenario("autoscale2k",
                 "2k-job bursty stream with reactive tier autoscaling",
                 _autoscale_2k),
        Scenario("replay2k",
                 "2k-job synthesized trace replay (fit + calibrate + EDF)",
                 _replay_2k),
        Scenario("preempt2k",
                 "2k-job bursty stream under SLO-aware pause preemption",
                 _preempt_2k),
        Scenario("detect2k",
                 "2k-job Poisson stream under the adaptive honest detector",
                 _detect_2k),
        Scenario("recover2k",
                 "2k-job Poisson stream, journal on, NameNode crash at 2h",
                 _recover_2k),
        Scenario("fairshare", "192-map sort on the fair-share network",
                 _fairshare_sort),
        Scenario("scale10k",
                 "10k-node cluster, ~1M-job day-long Poisson stream",
                 _scale10k),
    )
}
