"""Synthesizing scaled workload variants from one loaded trace.

One real trace is a single data point; scheduling and autoscaling
studies need a *family* of heavier scenarios.  This module fits the
trace's inter-arrival process (every family from
:mod:`repro.traces.fitting`, ranked by AIC — the same idiom the
availability layer uses for outage lengths) and its tenant / job-class
mixes, then samples new traces from the fit:

* ``load_factor`` — 2x/10x the arrival rate at the same horizon,
* ``horizon_factor`` — stretch the stream over a longer day,
* ``tenant_weights`` — perturb the tenant mix (hot-tenant what-ifs),

Job *shapes* are bootstrapped empirically: each synthetic arrival
copies the task counts, sizes, durations and SLO of a uniformly drawn
same-class job from the source trace, so synthetic jobs are always
jobs the calibration layer can build.  Given one
``numpy.random.Generator`` the output is a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import TraceError
from ..traces.distributions import OutageDistribution, make_distribution
from ..traces.fitting import FitResult, fit_outages
from .model import TraceJob, WorkloadTrace


@dataclass(frozen=True)
class SynthesisConfig:
    """Scaling knobs for one synthetic variant."""

    #: Arrival-rate multiplier (2.0 = twice the load).
    load_factor: float = 1.0
    #: Horizon multiplier (2.0 = the same process over a doubled day).
    horizon_factor: float = 1.0
    #: Tenant-mix perturbation: relative weights by tenant name
    #: (missing tenants keep their empirical share; weights rescale it).
    tenant_weights: Optional[Dict[str, float]] = None
    #: Pin the inter-arrival family by name instead of best-by-AIC.
    family: Optional[str] = None

    def validate(self) -> None:
        if self.load_factor <= 0:
            raise TraceError("load_factor must be positive")
        if self.horizon_factor <= 0:
            raise TraceError("horizon_factor must be positive")
        if self.tenant_weights is not None and any(
            w < 0 for w in self.tenant_weights.values()
        ):
            raise TraceError("tenant weights must be non-negative")


@dataclass(frozen=True)
class TraceFit:
    """The fitted statistical description of one workload trace."""

    #: Inter-arrival families ranked by AIC (best first).
    inter_arrival: List[FitResult] = field(repr=False)
    #: Empirical class mix, first-appearance order (sums to 1).
    class_mix: Dict[str, float] = field(default_factory=dict)
    #: Empirical tenant mix, first-appearance order (sums to 1).
    tenant_mix: Dict[str, float] = field(default_factory=dict)

    @property
    def best_family(self) -> FitResult:
        return self.inter_arrival[0]


def fit_trace(trace: WorkloadTrace) -> TraceFit:
    """Fit inter-arrival and mix distributions from a loaded trace.

    Traces with fewer than 4 distinct arrival instants fall back to an
    exponential fit at the trace's mean rate (too few gaps to rank
    families).
    """
    gaps = trace.inter_arrival_gaps()
    positive = gaps[gaps > 0]
    if positive.size >= 3:
        families = fit_outages(positive)
    else:
        mean = trace.horizon / max(len(trace), 1)
        families = [FitResult("exponential", mean, mean, 0.0, 1)]
    n = len(trace)
    class_mix: Dict[str, float] = {}
    tenant_mix: Dict[str, float] = {}
    for job in trace.jobs:
        class_mix[job.job_class] = class_mix.get(job.job_class, 0.0) + 1.0
        tenant_mix[job.tenant] = tenant_mix.get(job.tenant, 0.0) + 1.0
    return TraceFit(
        inter_arrival=families,
        class_mix={k: v / n for k, v in class_mix.items()},
        tenant_mix={k: v / n for k, v in tenant_mix.items()},
    )


def _gap_distribution(
    fit: TraceFit, cfg: SynthesisConfig
) -> OutageDistribution:
    """The inter-arrival sampler, rate-scaled by ``load_factor``."""
    chosen = fit.best_family
    if cfg.family is not None:
        for result in fit.inter_arrival:
            if result.name == cfg.family:
                chosen = result
                break
        else:
            known = ", ".join(r.name for r in fit.inter_arrival)
            raise TraceError(
                f"family {cfg.family!r} was not fitted (have: {known})"
            )
    name, mean, sigma = chosen.name, chosen.mean, chosen.sigma
    if not (np.isfinite(mean) and np.isfinite(sigma)):
        # An infinite-moment fit (e.g. a Pareto tail exponent <= 2)
        # cannot parameterise a sampler; fall back to memorylessness,
        # keeping the fitted mean when it is finite.
        name = "exponential"
        if not np.isfinite(mean):
            mean = float(np.mean([r.mean for r in fit.inter_arrival
                                  if np.isfinite(r.mean)]))
        sigma = mean
    return make_distribution(
        name, mean / cfg.load_factor, sigma / cfg.load_factor
    )


def synthesize(
    trace: WorkloadTrace,
    rng: np.random.Generator,
    config: Optional[SynthesisConfig] = None,
) -> WorkloadTrace:
    """Sample one scaled synthetic variant of ``trace``.

    Deterministic given ``rng``; iteration orders are pinned to the
    trace's first-appearance orders so the output is byte-stable
    across processes.
    """
    cfg = config or SynthesisConfig()
    cfg.validate()
    fit = fit_trace(trace)
    dist = _gap_distribution(fit, cfg)
    horizon = trace.horizon * cfg.horizon_factor

    classes = list(fit.class_mix)
    p_class = np.array([fit.class_mix[c] for c in classes], dtype=float)
    tenants = list(fit.tenant_mix)
    t_weights = np.array([fit.tenant_mix[t] for t in tenants], dtype=float)
    if cfg.tenant_weights is not None:
        t_weights = t_weights * np.array(
            [cfg.tenant_weights.get(t, 1.0) for t in tenants], dtype=float
        )
        if t_weights.sum() <= 0:
            raise TraceError("tenant weights zero out every tenant")
    p_tenant = t_weights / t_weights.sum()

    by_class: Dict[str, List[TraceJob]] = {}
    for job in trace.jobs:
        by_class.setdefault(job.job_class, []).append(job)

    jobs: List[TraceJob] = []
    t = float(dist.sample(rng, 1)[0])
    while t < horizon:
        cls = classes[int(rng.choice(len(classes), p=p_class))]
        tenant = tenants[int(rng.choice(len(tenants), p=p_tenant))]
        pool = by_class[cls]
        template = pool[int(rng.integers(len(pool)))]
        jobs.append(
            TraceJob(
                arrival_time=t,
                tenant=tenant,
                job_class=cls,
                n_maps=template.n_maps,
                n_reduces=template.n_reduces,
                block_mb=template.block_mb,
                map_seconds=template.map_seconds,
                reduce_seconds=template.reduce_seconds,
                slo_seconds=template.slo_seconds,
            )
        )
        # Clamp so a degenerate fit (near-zero mean gap) still advances
        # the clock instead of spinning at one instant.
        t += max(float(dist.sample(rng, 1)[0]), 1e-3)
    if not jobs:
        raise TraceError(
            "synthesis produced an empty trace (horizon too short for "
            "the fitted inter-arrival law)"
        )
    suffix = f"-x{cfg.load_factor:g}"
    if cfg.horizon_factor != 1.0:
        suffix += f"-h{cfg.horizon_factor:g}"
    return WorkloadTrace.build(
        jobs,
        horizon=horizon,
        name=trace.name + suffix,
        pattern=trace.pattern,
    )
