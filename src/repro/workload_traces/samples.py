"""Deterministic sample workload traces bundled with the repo.

Two small, seeded traces are committed under ``benchmarks/data/`` so
``repro replay`` has something real-shaped to chew on out of the box
(and so tests, docs and the perf harness share one fixture):

* ``google_cluster_sample.csv`` — a Google-cluster-style job-events
  file: a grep/word-count/sort mix from three users over 90 minutes,
  tiny block sizes so a full ``--policy all`` comparison replays in
  seconds.
* ``hadoop_jobhistory_sample.json`` — a Hadoop JobHistory-style job
  list: the data-free sleep catalogue's interactive/batch mix over two
  hours, the fast fixture the determinism smoke replays twice.

Everything is a pure function of the hard-coded seeds;
``tools/make_workload_samples.py`` regenerates the files and
``tests/test_workload_traces.py`` asserts the committed bytes match.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np

from ..config import HOUR
from .io import save_google_csv, save_hadoop_json
from .model import TraceJob, WorkloadTrace

GOOGLE_SAMPLE = "google_cluster_sample.csv"
HADOOP_SAMPLE = "hadoop_jobhistory_sample.json"

#: (job_class, n_maps range, block_mb, n_reduces range, map_s, reduce_s,
#:  slo_s, weight) — shapes mirror the service catalogue at toy scale.
_GOOGLE_CLASSES = (
    ("grep", (4, 8), 2.0, (1, 1), 8.0, 2.0, 600.0, 0.5),
    ("word count", (6, 12), 2.0, (2, 4), 30.0, 12.0, 1800.0, 0.3),
    ("sort", (8, 16), 2.0, (4, 6), 12.0, 6.0, 3600.0, 0.2),
)
_SLEEP_CLASSES = (
    ("sleep-interactive", (6, 10), 0.0, (2, 2), 30.0, 10.0, 600.0, 0.6),
    ("sleep-batch", (6, 10), 0.0, (2, 2), 300.0, 120.0, 5400.0, 0.4),
)


def _mixed_trace(
    seed: int,
    n_jobs: int,
    horizon: float,
    classes,
    tenants: List[str],
    name: str,
) -> WorkloadTrace:
    """A seeded trace: exponential gaps over a weighted class mix."""
    rng = np.random.default_rng(seed)
    weights = np.array([c[7] for c in classes], dtype=float)
    p_class = weights / weights.sum()
    mean_gap = horizon / (n_jobs + 1)
    jobs: List[TraceJob] = []
    t = 0.0
    for _ in range(n_jobs):
        t += float(rng.exponential(mean_gap))
        cls, maps_rng, block, red_rng, map_s, red_s, slo, _w = classes[
            int(rng.choice(len(classes), p=p_class))
        ]
        n_maps = int(rng.integers(maps_rng[0], maps_rng[1] + 1))
        n_reduces = int(rng.integers(red_rng[0], red_rng[1] + 1))
        jobs.append(
            TraceJob(
                arrival_time=t,
                tenant=tenants[int(rng.integers(len(tenants)))],
                job_class=cls,
                n_maps=n_maps,
                n_reduces=n_reduces,
                block_mb=block,
                map_seconds=map_s,
                reduce_seconds=red_s,
                slo_seconds=slo,
            )
        )
    # Gap accumulation can overshoot the nominal horizon for some
    # seeds; widen rather than truncate so every seed yields n_jobs.
    return WorkloadTrace.build(jobs, horizon=max(horizon, t), name=name)


def sample_google_trace(seed: int = 20100621, n_jobs: int = 32) -> WorkloadTrace:
    """The committed Google-style sample (90 min, three users)."""
    return _mixed_trace(
        seed, n_jobs, 1.5 * HOUR, _GOOGLE_CLASSES,
        ["alice", "bob", "carol"], "google_cluster_sample",
    )


def sample_hadoop_trace(seed: int = 20130709, n_jobs: int = 28) -> WorkloadTrace:
    """The committed Hadoop JobHistory-style sample (2 h, sleep mix)."""
    return _mixed_trace(
        seed, n_jobs, 2 * HOUR, _SLEEP_CLASSES,
        ["etl", "reports"], "hadoop_jobhistory_sample",
    )


def write_samples(directory) -> List[str]:
    """(Re)generate both sample files; returns the paths written."""
    google = os.path.join(str(directory), GOOGLE_SAMPLE)
    hadoop = os.path.join(str(directory), HADOOP_SAMPLE)
    save_google_csv(google, sample_google_trace())
    save_hadoop_json(hadoop, sample_hadoop_trace())
    return [google, hadoop]
