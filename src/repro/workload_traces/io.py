"""Workload-trace file formats: canonical JSON + two foreign parsers.

Three on-disk shapes, one in-memory model:

* **Canonical JSON** (``repro-workload-trace`` v1) — the package's own
  format; floats serialised at ``repr`` precision so save -> load is
  an exact round trip.  What :func:`repro.workload_traces.capture_trace`
  exports and ``repro replay --capture`` writes.
* **Google-cluster-style CSV** — one row per job event, microsecond
  timestamps, byte-denominated input sizes, ``user`` as the tenant and
  ``logical_job_name`` as the job class; the shape of the job-events
  table in the Google cluster traces, collapsed to one file.
* **Hadoop JobHistory-style JSON** — one object per job with the
  JobHistory field names (``submitTime``/``avgMapTime`` in epoch /
  duration *milliseconds*, ``totalMaps``, ``hdfsBytesRead``).  Arrival
  times are normalised to the earliest ``submitTime`` in the file.

:func:`load_workload_trace` sniffs the format from the extension and
document shape.  All parsers tolerate unsorted rows (the model
stable-sorts) and raise :class:`~repro.errors.TraceError` with
``path:line`` (CSV) or ``path + job id`` (JSON) context on malformed
or semantically invalid input.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Union

from ..errors import TraceError
from .model import TraceJob, WorkloadTrace

PathLike = Union[str, "os.PathLike[str]"]

MB = float(2 ** 20)

CANONICAL_FORMAT = "repro-workload-trace"

_GOOGLE_HEADER = (
    "timestamp_us,job_id,user,logical_job_name,scheduling_class,"
    "num_map_tasks,num_reduce_tasks,input_bytes,"
    "avg_map_time_s,avg_reduce_time_s,relative_slo_s"
)

#: Fixed epoch base for Hadoop-style exports (2013-07-09T08:00:00Z) so
#: generated sample files are deterministic and realistically dated.
HADOOP_EPOCH_MS = 1373356800000


def _stem(path: PathLike) -> str:
    base = os.path.basename(str(path))
    return os.path.splitext(base)[0] or "trace"


# ======================================================================
# Canonical JSON
# ======================================================================
def save_workload_json(path: PathLike, trace: WorkloadTrace) -> None:
    """Write the canonical JSON document (exact float round trip)."""
    doc = {
        "format": CANONICAL_FORMAT,
        "version": 1,
        "name": trace.name,
        "pattern": trace.pattern,
        "horizon": trace.horizon,
        "jobs": [
            {
                "arrival": j.arrival_time,
                "tenant": j.tenant,
                "class": j.job_class,
                "maps": j.n_maps,
                "reduces": j.n_reduces,
                "block_mb": j.block_mb,
                "map_s": j.map_seconds,
                "reduce_s": j.reduce_seconds,
                "slo_s": j.slo_seconds,
            }
            for j in trace.jobs
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def _load_canonical(doc: dict, name: str) -> WorkloadTrace:
    jobs = [
        TraceJob(
            arrival_time=float(j["arrival"]),
            tenant=str(j["tenant"]),
            job_class=str(j["class"]),
            n_maps=int(j["maps"]),
            n_reduces=int(j["reduces"]),
            block_mb=float(j["block_mb"]),
            map_seconds=float(j["map_s"]),
            reduce_seconds=float(j["reduce_s"]),
            slo_seconds=(
                None if j.get("slo_s") is None else float(j["slo_s"])
            ),
        )
        for j in doc.get("jobs", [])
    ]
    return WorkloadTrace.build(
        jobs,
        horizon=(
            None if doc.get("horizon") is None else float(doc["horizon"])
        ),
        name=str(doc.get("name", name)),
        pattern=str(doc.get("pattern", "replay")),
    )


# ======================================================================
# Google-cluster-style CSV
# ======================================================================
def save_google_csv(path: PathLike, trace: WorkloadTrace) -> None:
    """Export as the Google-cluster-style job-events CSV."""
    lines = ["# format=google-cluster-jobs version=1", _GOOGLE_HEADER]
    for i, j in enumerate(trace.jobs, 1):
        slo = "" if j.slo_seconds is None else repr(j.slo_seconds)
        lines.append(
            f"{int(round(j.arrival_time * 1e6))},{6250000000 + i},"
            f"{j.tenant},{j.job_class},1,{j.n_maps},{j.n_reduces},"
            f"{int(round(j.input_mb * MB))},"
            f"{j.map_seconds!r},{j.reduce_seconds!r},{slo}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def load_google_csv(path: PathLike) -> WorkloadTrace:
    """Parse a Google-cluster-style job-events CSV."""
    jobs: List[TraceJob] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#") or line == _GOOGLE_HEADER:
                continue
            parts = line.split(",")
            if len(parts) != 11:
                raise TraceError(
                    f"{path}:{lineno}: expected 11 fields, got {len(parts)}"
                )
            try:
                row = TraceJob(
                    arrival_time=int(parts[0]) / 1e6,
                    tenant=parts[2],
                    job_class=parts[3],
                    n_maps=int(parts[5]),
                    n_reduces=int(parts[6]),
                    block_mb=int(parts[7]) / MB / int(parts[5]),
                    map_seconds=float(parts[8]),
                    reduce_seconds=float(parts[9]),
                    slo_seconds=(
                        None if parts[10] == "" else float(parts[10])
                    ),
                )
                row.validate()
            except (ValueError, ZeroDivisionError, TraceError) as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from None
            jobs.append(row)
    if not jobs:
        raise TraceError(f"{path}: empty workload trace: no jobs to replay")
    return WorkloadTrace.build(jobs, name=_stem(path))


# ======================================================================
# Hadoop JobHistory-style JSON
# ======================================================================
def save_hadoop_json(path: PathLike, trace: WorkloadTrace) -> None:
    """Export as a Hadoop JobHistory-style job list (millisecond times)."""
    doc = {
        "jobs": [
            {
                "jobid": f"job_201307091600_{i:04d}",
                "user": j.tenant,
                "queue": "default",
                "jobname": j.job_class,
                "submitTime": HADOOP_EPOCH_MS
                + int(round(j.arrival_time * 1000.0)),
                "totalMaps": j.n_maps,
                "totalReduces": j.n_reduces,
                "hdfsBytesRead": int(round(j.input_mb * MB)),
                "avgMapTime": int(round(j.map_seconds * 1000.0)),
                "avgReduceTime": int(round(j.reduce_seconds * 1000.0)),
                **(
                    {}
                    if j.slo_seconds is None
                    else {"slo": int(round(j.slo_seconds * 1000.0))}
                ),
            }
            for i, j in enumerate(trace.jobs, 1)
        ]
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def _load_hadoop(doc, path: PathLike) -> WorkloadTrace:
    entries = doc.get("jobs", doc) if isinstance(doc, dict) else doc
    if not isinstance(entries, list) or not entries:
        raise TraceError(f"{path}: empty workload trace: no jobs to replay")
    jobs: List[TraceJob] = []
    try:
        base = min(int(e["submitTime"]) for e in entries)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed JobHistory entry: {exc}") from None
    for i, e in enumerate(entries, 1):
        label = e.get("jobid", f"entry {i}") if isinstance(e, dict) else i
        try:
            row = TraceJob(
                arrival_time=(int(e["submitTime"]) - base) / 1000.0,
                tenant=str(e.get("user") or e.get("queue", "")),
                job_class=str(e.get("jobname", "")),
                n_maps=int(e["totalMaps"]),
                n_reduces=int(e.get("totalReduces", 0)),
                block_mb=(
                    int(e.get("hdfsBytesRead", 0)) / MB
                    / int(e["totalMaps"])
                ),
                map_seconds=int(e.get("avgMapTime", 0)) / 1000.0,
                reduce_seconds=int(e.get("avgReduceTime", 0)) / 1000.0,
                slo_seconds=(
                    None if e.get("slo") is None else int(e["slo"]) / 1000.0
                ),
            )
            row.validate()
        except (KeyError, TypeError, ValueError, ZeroDivisionError,
                TraceError) as exc:
            raise TraceError(
                f"{path}: malformed JobHistory entry ({label}): {exc}"
            ) from None
        jobs.append(row)
    return WorkloadTrace.build(jobs, name=_stem(path))


# ======================================================================
# Format sniffing
# ======================================================================
def load_workload_trace(path: PathLike) -> WorkloadTrace:
    """Load any supported trace format, sniffing by extension + shape.

    ``.csv`` -> Google-cluster-style; ``.json`` -> the canonical format
    when the document carries ``format == "repro-workload-trace"``,
    otherwise Hadoop JobHistory-style.
    """
    text_path = str(path)
    if text_path.endswith(".csv"):
        return load_google_csv(path)
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise TraceError(f"{path}: not valid JSON: {exc}") from None
    if isinstance(doc, dict) and doc.get("format") == CANONICAL_FORMAT:
        return _load_canonical(doc, _stem(path))
    return _load_hadoop(doc, path)
