"""Workload traces (S14): real cluster traffic in, replayable streams out.

The service layer's synthetic Poisson/bursty/diurnal generators shape
a *hypothesis* about demand; this package replays *evidence*.  It owns
the full trace lifecycle:

* **ingest** — parse Google-cluster-style CSV and Hadoop
  JobHistory-style JSON job logs (plus the package's own canonical
  JSON) into the validated :class:`WorkloadTrace` /:class:`TraceJob`
  model (:mod:`~repro.workload_traces.io`,
  :mod:`~repro.workload_traces.model`);
* **calibrate** — map trace jobs onto the simulator's
  :class:`~repro.workloads.JobSpec` catalogue, scaling task counts and
  durations into sim cost parameters
  (:mod:`~repro.workload_traces.calibrate`);
* **synthesize** — fit inter-arrival and mix distributions (reusing
  :mod:`repro.traces.fitting`) and emit scaled variants: 2x/10x load,
  stretched horizons, perturbed tenant mixes
  (:mod:`~repro.workload_traces.synthesize`);
* **replay** — :func:`trace_arrivals` feeds
  :func:`repro.service.replay_arrivals`, driven end to end by the
  ``repro replay`` CLI verb;
* **capture** — record any live :class:`~repro.service.MoonService`
  run back into a trace (:mod:`~repro.workload_traces.capture`), with
  a byte-exact capture -> replay round-trip guarantee.

Deterministic sample traces live under ``benchmarks/data/``
(:mod:`~repro.workload_traces.samples`).

See docs/ARCHITECTURE.md#workload-traces for the layer map.
"""

from .calibrate import (
    JOB_CLASS_BUILDERS,
    CalibrationConfig,
    calibrate_job,
    known_job_classes,
    trace_arrivals,
)
from .capture import capture_trace
from .io import (
    load_google_csv,
    load_workload_trace,
    save_google_csv,
    save_hadoop_json,
    save_workload_json,
)
from .model import TraceJob, TraceSummary, WorkloadTrace, summarize
from .samples import (
    GOOGLE_SAMPLE,
    HADOOP_SAMPLE,
    sample_google_trace,
    sample_hadoop_trace,
    write_samples,
)
from .synthesize import SynthesisConfig, TraceFit, fit_trace, synthesize

__all__ = [
    "TraceJob",
    "WorkloadTrace",
    "TraceSummary",
    "summarize",
    "load_workload_trace",
    "load_google_csv",
    "save_google_csv",
    "save_hadoop_json",
    "save_workload_json",
    "CalibrationConfig",
    "JOB_CLASS_BUILDERS",
    "known_job_classes",
    "calibrate_job",
    "trace_arrivals",
    "SynthesisConfig",
    "TraceFit",
    "fit_trace",
    "synthesize",
    "capture_trace",
    "GOOGLE_SAMPLE",
    "HADOOP_SAMPLE",
    "sample_google_trace",
    "sample_hadoop_trace",
    "write_samples",
]
