"""Calibrating trace jobs onto the simulator's JobSpec catalogue.

A trace row says *what happened* (16 maps, 64 MB, ~30 s per map); a
:class:`~repro.workloads.JobSpec` says *what to simulate*.  This module
bridges the two: each known job class has a builder that feeds the
trace job's task counts, per-map block size and mean task durations
into the matching workload factory, so every contention effect still
emerges from the simulated I/O system rather than from replayed
wall-clock times.

The mapping is exact for the service catalogue's classes (grep,
word count, sort, sleep-*): a job captured from a live service run
calibrates back to a ``JobSpec`` **equal to the original**, which is
what makes the capture -> replay round trip reproduce a run
byte for byte.

:class:`CalibrationConfig` optionally rescales foreign traces into sim
range: ``max_maps`` / ``max_reduces`` cap task counts while scaling
per-task durations up proportionally (total compute preserved), and
``time_scale`` stretches or compresses durations uniformly.  The
defaults are the identity mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import TraceError
from ..service.arrivals import JobArrival, replay_arrivals
from ..workloads import (
    JobSpec,
    grep_spec,
    sleep_spec,
    sort_spec,
    wordcount_spec,
)
from .model import TraceJob, WorkloadTrace


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs for mapping trace jobs into simulator range.

    Defaults are the identity mapping — required for the capture ->
    replay round-trip guarantee.
    """

    #: Cap on map tasks per job (None = keep trace counts).  Capped
    #: jobs scale per-map duration up by the same factor, preserving
    #: total compute.
    max_maps: Optional[int] = None
    #: Cap on reduce tasks per job (same duration compensation).
    max_reduces: Optional[int] = None
    #: Uniform stretch/compress factor on per-task durations.
    time_scale: float = 1.0

    def validate(self) -> None:
        if self.max_maps is not None and self.max_maps < 1:
            raise TraceError("max_maps must be >= 1")
        if self.max_reduces is not None and self.max_reduces < 1:
            raise TraceError("max_reduces must be >= 1")
        if self.time_scale <= 0:
            raise TraceError("time_scale must be positive")


# ----------------------------------------------------------------------
# Per-class builders: (job, n_maps, n_reduces, block_mb, map_s, reduce_s)
# -> JobSpec.  Counts/durations arrive pre-capped and pre-scaled.
# ----------------------------------------------------------------------
def _build_grep(job, n_maps, n_reduces, block_mb, map_s, reduce_s) -> JobSpec:
    return grep_spec(
        n_maps=n_maps, block_mb=block_mb, map_cpu_seconds=map_s
    ).with_(n_reduces=max(1, n_reduces), reduce_cpu_seconds=reduce_s)


def _build_wordcount(
    job, n_maps, n_reduces, block_mb, map_s, reduce_s
) -> JobSpec:
    return wordcount_spec(
        n_maps=n_maps,
        block_mb=block_mb,
        n_reduces=max(1, n_reduces),
        map_cpu_seconds=map_s,
        reduce_cpu_seconds=reduce_s,
    )


def _build_sort(job, n_maps, n_reduces, block_mb, map_s, reduce_s) -> JobSpec:
    spec = sort_spec(
        n_maps=n_maps,
        block_mb=block_mb,
        map_cpu_seconds=map_s,
        reduce_cpu_seconds=reduce_s,
    )
    if n_reduces > 0:
        # A fixed reduce count from the trace (a served job must not
        # size itself from whole-cluster slots); 0 keeps sort's
        # slot-derived 0.9 x AvailSlots sizing.
        spec = spec.with_(n_reduces=n_reduces, reduces_per_slot=0.0)
    return spec


def _build_sleep(job, n_maps, n_reduces, block_mb, map_s, reduce_s) -> JobSpec:
    if n_reduces > 0:
        spec = sleep_spec(
            map_seconds=map_s, reduce_seconds=reduce_s,
            n_maps=n_maps, n_reduces=n_reduces,
        )
    else:
        # 0 = slot-derived, like sleep_like_sort (0.9 x AvailSlots).
        spec = sleep_spec(
            map_seconds=map_s, reduce_seconds=reduce_s,
            n_maps=n_maps, reduces_per_slot=0.9,
        )
    return spec.with_(name=job.job_class)


#: Builders by job-class name.  Any class whose name starts with
#: "sleep" falls back to the sleep builder (the catalogue's
#: sleep-interactive / sleep-batch variants keep their names).
JOB_CLASS_BUILDERS: Dict[str, Callable[..., JobSpec]] = {
    "grep": _build_grep,
    "word count": _build_wordcount,
    "wordcount": _build_wordcount,
    "sort": _build_sort,
    "sleep": _build_sleep,
}


def known_job_classes() -> List[str]:
    """Sorted class names the calibration layer can build (plus any
    ``sleep-*`` variant)."""
    return sorted(JOB_CLASS_BUILDERS)


def _builder_for(job_class: str) -> Callable[..., JobSpec]:
    builder = JOB_CLASS_BUILDERS.get(job_class)
    if builder is None and job_class.startswith("sleep"):
        builder = _build_sleep
    if builder is None:
        known = ", ".join(known_job_classes())
        raise TraceError(
            f"unknown job class {job_class!r} in trace "
            f"(known: {known}, plus sleep-* variants)"
        )
    return builder


def calibrate_job(
    job: TraceJob, config: Optional[CalibrationConfig] = None
) -> JobSpec:
    """Map one trace job onto a validated :class:`JobSpec`."""
    cfg = config or CalibrationConfig()
    cfg.validate()
    job.validate()
    n_maps, map_s = job.n_maps, job.map_seconds * cfg.time_scale
    block_mb = job.block_mb
    if cfg.max_maps is not None and n_maps > cfg.max_maps:
        # Fewer, proportionally longer and larger maps: total compute
        # and total input are both preserved.
        map_s *= n_maps / cfg.max_maps
        block_mb *= n_maps / cfg.max_maps
        n_maps = cfg.max_maps
    n_reduces, reduce_s = job.n_reduces, job.reduce_seconds * cfg.time_scale
    if cfg.max_reduces is not None and n_reduces > cfg.max_reduces:
        reduce_s *= n_reduces / cfg.max_reduces
        n_reduces = cfg.max_reduces
    spec = _builder_for(job.job_class)(
        job, n_maps, n_reduces, block_mb, map_s, reduce_s
    )
    spec.validate()
    return spec


def trace_arrivals(
    trace: WorkloadTrace, config: Optional[CalibrationConfig] = None
) -> List[JobArrival]:
    """Calibrate a whole trace into :class:`JobArrival` entries.

    The bridge to the service layer: feeds
    :func:`~repro.service.replay_arrivals`, whose stable equal-timestamp
    ordering means the stream admits in exactly the trace's stored
    order.
    """
    return replay_arrivals(
        [
            (job.arrival_time, job.tenant, calibrate_job(job, config),
             job.slo_seconds)
            for job in trace.jobs
        ]
    )
