"""Canonical workload-trace model: jobs arriving over a horizon.

The availability-trace package answers "when are the *machines* up?";
this package answers "when does the *work* arrive?".  A
:class:`WorkloadTrace` is the canonical in-memory form every on-disk
format (Google-cluster-style CSV, Hadoop JobHistory-style JSON, the
package's own canonical JSON) parses into, the synthesizer samples
from, and the capture path records into.  One :class:`TraceJob` is one
job submission: *when* (arrival time), *who* (tenant), *what* (a named
job class plus task counts, data volume and per-task durations), and
*how urgent* (a relative response-time SLO).

SLOs are **relative** (seconds after arrival), matching how request
logs record latency budgets; the calibration layer turns them into
absolute deadlines when it builds
:func:`~repro.service.replay_arrivals` entries.

Jobs are kept **stably sorted by arrival time**: parsers may hand in
unsorted rows, and equal-timestamp jobs keep their input order — the
same contract :func:`repro.service.arrivals.replay_arrivals` pins, so
a trace replays in exactly the order it is stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import HOUR
from ..errors import TraceError
from ..plotting import table


@dataclass(frozen=True)
class TraceJob:
    """One job submission in a workload trace.

    ``block_mb`` is the *per-map* input volume — stored directly (not
    derived from a total) so capture -> calibrate recovers a live
    run's ``JobSpec`` bit-exactly; parsers of formats that record
    total input bytes divide by the task count at parse time.
    ``map_seconds`` / ``reduce_seconds`` are mean per-task compute
    durations (the quantity JobHistory's ``avgMapTime`` reports).
    """

    arrival_time: float
    tenant: str
    job_class: str
    n_maps: int
    #: 0 = derive from slots at submit time (0.9 x AvailSlots, as the
    #: sort and sleep classes do; classes with fixed reduce counts
    #: calibrate 0 to a single reduce).
    n_reduces: int
    block_mb: float
    map_seconds: float
    reduce_seconds: float
    #: Relative SLO in seconds after arrival; None = no deadline.
    slo_seconds: Optional[float] = None

    @property
    def input_mb(self) -> float:
        """The job's total input volume."""
        return self.n_maps * self.block_mb

    def validate(self) -> None:
        if not self.tenant:
            raise TraceError("trace job needs a tenant")
        if not self.job_class:
            raise TraceError("trace job needs a job class")
        if self.arrival_time < 0:
            raise TraceError(
                f"arrival_time must be non-negative, got {self.arrival_time}"
            )
        if self.n_maps < 1:
            raise TraceError(f"n_maps must be >= 1, got {self.n_maps}")
        if self.n_reduces < 0:
            raise TraceError(f"n_reduces must be >= 0, got {self.n_reduces}")
        for val, name in (
            (self.block_mb, "block_mb"),
            (self.map_seconds, "map_seconds"),
            (self.reduce_seconds, "reduce_seconds"),
        ):
            if val < 0 or not np.isfinite(val):
                raise TraceError(f"{name} must be finite and non-negative")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise TraceError(
                f"slo_seconds must be positive (got {self.slo_seconds}); "
                "use None for jobs without a deadline"
            )


@dataclass(frozen=True)
class WorkloadTrace:
    """A validated, stably time-ordered sequence of :class:`TraceJob`.

    Construct through :meth:`build`, which validates every job, sorts
    stably by arrival time (ties keep input order) and derives the
    horizon — direct construction skips those guarantees.
    """

    jobs: Tuple[TraceJob, ...]
    #: Admission horizon of the stream.  Usually >= the last arrival;
    #: an *explicit* smaller horizon is meaningful — jobs arriving
    #: after it are offered load past the admission window and replay
    #: as DROPPED, which is how capture preserves a horizon-limited
    #: service run exactly.
    horizon: float
    #: Provenance label (file stem, "capture", "synth", ...).
    name: str = "trace"
    #: Arrival-pattern label carried into the ServiceReport on replay.
    pattern: str = "replay"

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        jobs: Sequence[TraceJob],
        horizon: Optional[float] = None,
        name: str = "trace",
        pattern: str = "replay",
    ) -> "WorkloadTrace":
        """Validate, stable-sort by arrival, and derive the horizon.

        ``horizon=None`` derives the last arrival time, floored at 1 s
        so a single-instant trace (every job at t=0) stays servable;
        an explicit horizon may precede late arrivals (they replay as
        DROPPED).  Raises :class:`~repro.errors.TraceError` on an
        empty job list, on any invalid job, or on a non-positive
        explicit horizon.
        """
        if not jobs:
            raise TraceError("empty workload trace: no jobs to replay")
        for job in jobs:
            job.validate()
        ordered = tuple(sorted(jobs, key=lambda j: j.arrival_time))
        if horizon is None:
            horizon = max(ordered[-1].arrival_time, 1.0)
        elif horizon <= 0:
            raise TraceError(f"horizon must be positive, got {horizon}")
        return cls(jobs=ordered, horizon=horizon, name=name, pattern=pattern)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[TraceJob]:
        return iter(self.jobs)

    def tenants(self) -> List[str]:
        """Distinct tenants in first-appearance order."""
        seen: Dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.tenant, None)
        return list(seen)

    def job_classes(self) -> List[str]:
        """Distinct job classes in first-appearance order."""
        seen: Dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.job_class, None)
        return list(seen)

    def inter_arrival_gaps(self) -> np.ndarray:
        """Gaps between consecutive arrivals (length ``len - 1``)."""
        times = np.array([j.arrival_time for j in self.jobs], dtype=float)
        return np.diff(times)

    @property
    def rate_per_hour(self) -> float:
        """Mean arrival rate over the horizon."""
        return len(self.jobs) / (max(self.horizon, 1e-9) / HOUR)

    def summary(self) -> "TraceSummary":
        """Aggregate statistics (see :class:`TraceSummary`)."""
        return summarize(self)


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one workload trace."""

    name: str
    n_jobs: int
    horizon: float
    rate_per_hour: float
    n_tenants: int
    #: jobs per class, insertion-ordered by first appearance.
    class_counts: Dict[str, int] = field(repr=False)
    total_input_mb: float = 0.0
    total_map_tasks: int = 0
    total_reduce_tasks: int = 0
    mean_gap: float = 0.0
    max_gap: float = 0.0
    #: Fraction of jobs carrying an SLO.
    slo_fraction: float = 0.0

    def render(self) -> str:
        """The summary as one aligned text table."""
        rows = [
            ["jobs", str(self.n_jobs)],
            ["horizon", f"{self.horizon / HOUR:.2f} h"],
            ["rate", f"{self.rate_per_hour:.1f} jobs/h"],
            ["tenants", str(self.n_tenants)],
            ["classes", ", ".join(
                f"{name} x{count}"
                for name, count in self.class_counts.items()
            )],
            ["input", f"{self.total_input_mb / 1024:.2f} GB"],
            ["tasks", f"{self.total_map_tasks} maps / "
                      f"{self.total_reduce_tasks} reduces"],
            ["inter-arrival", f"mean {self.mean_gap:.1f} s, "
                              f"max {self.max_gap:.1f} s"],
            ["with SLO", f"{100.0 * self.slo_fraction:.0f}%"],
        ]
        return table(
            ["field", "value"], rows,
            title=f"workload trace - {self.name}",
        )


def summarize(trace: WorkloadTrace) -> TraceSummary:
    """Roll one trace into its :class:`TraceSummary`."""
    classes: Dict[str, int] = {}
    for job in trace.jobs:
        classes[job.job_class] = classes.get(job.job_class, 0) + 1
    gaps = trace.inter_arrival_gaps()
    return TraceSummary(
        name=trace.name,
        n_jobs=len(trace),
        horizon=trace.horizon,
        rate_per_hour=trace.rate_per_hour,
        n_tenants=len(trace.tenants()),
        class_counts=classes,
        total_input_mb=sum(j.input_mb for j in trace.jobs),
        total_map_tasks=sum(j.n_maps for j in trace.jobs),
        total_reduce_tasks=sum(j.n_reduces for j in trace.jobs),
        mean_gap=float(gaps.mean()) if gaps.size else 0.0,
        max_gap=float(gaps.max()) if gaps.size else 0.0,
        slo_fraction=(
            sum(1 for j in trace.jobs if j.slo_seconds is not None)
            / len(trace)
        ),
    )
