"""Capturing a live service run back into a workload trace.

The inverse of replay: given a :class:`~repro.service.MoonService`
whose stream has been served (or merely scheduled), record every
arrival — including rejected and dropped ones, which are part of the
offered load — as canonical :class:`~repro.workload_traces.TraceJob`
rows.  Because the calibration layer maps the catalogue's job classes
back to specs *equal to the originals*, a captured trace replayed on a
fresh system with the same seed and cluster reproduces per-job
response times and the rendered ``ServiceReport`` byte for byte — the
round-trip guarantee ``tests/test_workload_traces.py`` pins.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .model import TraceJob, WorkloadTrace


def _relative_slo(arrival: float, deadline: Optional[float]) -> Optional[float]:
    """The relative SLO whose replay reproduces ``deadline`` exactly.

    Replay recomputes ``deadline = arrival + slo`` in floating point;
    a naive ``deadline - arrival`` can land one ulp off.  Nudge until
    the round trip is bit-exact (at most a few ulps away).
    """
    if deadline is None:
        return None
    slo = deadline - arrival
    for _ in range(4):
        got = arrival + slo
        if got == deadline:
            return slo
        slo = math.nextafter(slo, math.inf if got < deadline else -math.inf)
    return deadline - arrival  # pragma: no cover - ulp nudge suffices


def capture_trace(service, name: str = "capture") -> WorkloadTrace:
    """Record a service's offered stream as a :class:`WorkloadTrace`.

    ``service`` is a :class:`~repro.service.MoonService` (before or
    after :meth:`run` — capture reads only the arrival records, never
    outcomes).  The trace keeps the service's arrival-pattern label so
    a replayed report renders under the same ``pattern=``.
    """
    jobs: List[TraceJob] = []
    for record in service.records:
        arrival = record.arrival
        spec = arrival.spec
        jobs.append(
            TraceJob(
                arrival_time=arrival.arrival_time,
                tenant=arrival.tenant,
                job_class=spec.name,
                n_maps=spec.n_maps,
                n_reduces=spec.n_reduces or 0,
                # Per-map block, verbatim: no total-input division on
                # replay, so the rebuilt spec matches bit for bit.
                block_mb=spec.map_input_mb,
                map_seconds=spec.map_cpu_seconds,
                reduce_seconds=spec.reduce_cpu_seconds,
                slo_seconds=_relative_slo(
                    arrival.arrival_time, arrival.deadline
                ),
            )
        )
    # The *admission* horizon, verbatim: arrivals beyond it stay part
    # of the trace and replay as DROPPED, exactly as they were served.
    return WorkloadTrace.build(
        jobs,
        horizon=service.config.horizon,
        name=name,
        pattern=service.pattern,
    )
