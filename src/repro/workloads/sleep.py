"""The ``sleep`` benchmark (paper VI-A).

Sleep simulates a target application with faithful map/reduce execution
times while producing only negligible intermediate data (two integers
per record) and zero output.  The paper uses it to isolate the task
scheduler from data management: we feed it the average map/reduce times
measured from sort / word count benchmarking runs, and store the tiny
intermediate data as reliable {1,1} files so it is always available.
"""

from __future__ import annotations

from ..dfs import ReplicationFactor
from .base import JobSpec


def sleep_spec(
    map_seconds: float,
    reduce_seconds: float,
    n_maps: int,
    n_reduces: int = None,
    reduces_per_slot: float = 0.0,
    **overrides,
) -> JobSpec:
    """A sleep job with the given faithful task durations."""
    spec = JobSpec(
        name="sleep",
        n_maps=n_maps,
        n_reduces=n_reduces,
        reduces_per_slot=reduces_per_slot,
        # Hadoop's sleep uses a virtual input format: splits exist but
        # no bytes live in the DFS, so input availability can never
        # fail a sleep job (matching the paper's Fig. 4 baselines,
        # which completed at every unavailability rate).
        map_input_mb=0.0,
        map_output_mb=0.05,  # two integers per record
        reduce_output_mb=0.0,
        map_cpu_seconds=map_seconds,
        reduce_cpu_seconds=reduce_seconds,
        sort_seconds_per_mb=0.0,
        input_rf=ReplicationFactor(1, 1),
        intermediate_rf=ReplicationFactor(1, 1),
        output_rf=ReplicationFactor(1, 1),
        intermediate_reliable=True,  # paper VI-A's configuration
        **overrides,
    )
    spec.validate()
    return spec


def sleep_like_sort(n_maps: int = 384, reduces_per_slot: float = 0.9) -> JobSpec:
    """Sleep parameterised with sort's benchmarked task times (VI-A)."""
    return sleep_spec(
        map_seconds=21.0,  # Table II, sort VO-V1 map time
        reduce_seconds=90.0,
        n_maps=n_maps,
        reduces_per_slot=reduces_per_slot,
    )


def sleep_like_wordcount(n_maps: int = 320, n_reduces: int = 20) -> JobSpec:
    """Sleep parameterised with word count's benchmarked task times."""
    return sleep_spec(
        map_seconds=100.0,  # Table II, wc VO-V1 map time
        reduce_seconds=50.0,
        n_maps=n_maps,
        n_reduces=n_reduces,
    )
