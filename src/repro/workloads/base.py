"""Workload model: everything the runtime needs to know about a job.

A :class:`JobSpec` fixes per-task data volumes and compute costs.  The
concrete workloads (sort, word count, sleep, grep) are calibrated so
that task *durations* land in the regime the paper reports (Table II)
while all contention effects (replication cost, shuffle pressure,
dedicated-node saturation) emerge from the simulated I/O system rather
than from constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..dfs import ReplicationFactor
from ..errors import ConfigError

#: Replication factors used by the paper's MOON configuration (VI-C).
MOON_RELIABLE_RF = ReplicationFactor(1, 3)
MOON_INTERMEDIATE_RF = ReplicationFactor(1, 1)
#: The augmented-Hadoop baseline: six uniform (volatile) replicas.
HADOOP_VO_RF = ReplicationFactor(0, 6)


@dataclass(frozen=True)
class JobSpec:
    """Complete static description of one MapReduce job."""

    name: str
    n_maps: int
    #: Explicit reduce count, or ``None`` to derive from slots at submit
    #: time via ``reduces_per_slot`` (sort uses 0.9 x AvailSlots).
    n_reduces: Optional[int]
    reduces_per_slot: float = 0.0
    #: Input block processed by each map (MB).
    map_input_mb: float = 64.0
    #: Intermediate data produced by each map (MB).
    map_output_mb: float = 64.0
    #: Final output produced by each reduce (MB); ``None`` means
    #: pass-through (total intermediate / n_reduces), as in sort.
    reduce_output_mb: Optional[float] = None
    #: Base compute seconds (at cpu_scale=1) per task.
    map_cpu_seconds: float = 10.0
    reduce_cpu_seconds: float = 5.0
    #: Sort/merge seconds per MB shuffled into a reduce.
    sort_seconds_per_mb: float = 0.01
    #: Replication factors.
    input_rf: ReplicationFactor = MOON_RELIABLE_RF
    intermediate_rf: ReplicationFactor = MOON_INTERMEDIATE_RF
    output_rf: ReplicationFactor = MOON_RELIABLE_RF
    #: Store intermediate data as reliable files (used by the Fig. 4
    #: sleep experiments so data management never interferes).
    intermediate_reliable: bool = False

    def validate(self) -> None:
        if self.n_maps < 1:
            raise ConfigError("n_maps must be >= 1")
        if self.n_reduces is None and self.reduces_per_slot <= 0:
            raise ConfigError(
                "need n_reduces or a positive reduces_per_slot"
            )
        if self.n_reduces is not None and self.n_reduces < 0:
            raise ConfigError("n_reduces must be >= 0")
        for val, name in (
            (self.map_input_mb, "map_input_mb"),
            (self.map_output_mb, "map_output_mb"),
            (self.reduce_output_mb, "reduce_output_mb"),
            (self.map_cpu_seconds, "map_cpu_seconds"),
            (self.reduce_cpu_seconds, "reduce_cpu_seconds"),
            (self.sort_seconds_per_mb, "sort_seconds_per_mb"),
        ):
            if val is not None and val < 0:
                raise ConfigError(f"{name} must be non-negative")
        self.input_rf.validate()
        self.intermediate_rf.validate()
        self.output_rf.validate()

    # ------------------------------------------------------------------
    @property
    def input_mb(self) -> float:
        return self.n_maps * self.map_input_mb

    def resolve_reduces(self, available_reduce_slots: int) -> int:
        """Reduce count at submit time (Table I: sort uses 0.9 x slots)."""
        if self.n_reduces is not None:
            return self.n_reduces
        return max(1, int(self.reduces_per_slot * available_reduce_slots))

    def partition_mb(self, n_reduces: int) -> float:
        """Share of one map's output shuffled to one reduce."""
        if n_reduces <= 0:
            return 0.0
        return self.map_output_mb / n_reduces

    def resolve_reduce_output_mb(self, n_reduces: int) -> float:
        """Per-reduce output size (pass-through when unspecified)."""
        if self.reduce_output_mb is not None:
            return self.reduce_output_mb
        if n_reduces <= 0:
            return 0.0
        return self.n_maps * self.map_output_mb / n_reduces

    def with_(self, **kwargs) -> "JobSpec":
        return replace(self, **kwargs)


def scaled(spec: JobSpec, factor: float) -> JobSpec:
    """Scale a workload's data volumes (not its compute) by ``factor``.

    The benchmark harness runs the paper's configurations at reduced
    block size by default (DESIGN.md 5) to keep wall-clock reasonable;
    this helper performs that scaling in one audited place.
    """
    if factor <= 0:
        raise ConfigError("scale factor must be positive")
    return spec.with_(
        map_input_mb=spec.map_input_mb * factor,
        map_output_mb=spec.map_output_mb * factor,
        reduce_output_mb=(
            None if spec.reduce_output_mb is None
            else spec.reduce_output_mb * factor
        ),
    )
