"""The ``word count`` benchmark (paper Table I: 20 GB, 320 maps, 20
reduces).

Word count is CPU-bound with tiny intermediate/final output (a handful
of MB of counts per map), which is why its shuffle can hide behind map
execution and why replication policy matters far less than for sort
(Fig. 6b, Table II).
"""

from __future__ import annotations

from .base import JobSpec


def wordcount_spec(
    n_maps: int = 320,
    block_mb: float = 64.0,
    n_reduces: int = 20,
    map_cpu_seconds: float = 100.0,
    reduce_cpu_seconds: float = 12.0,
    intermediate_fraction: float = 0.05,
    output_fraction: float = 0.4,
    **overrides,
) -> JobSpec:
    """Table-I word count: 320 x 64 MB = 20 GB, 20 reduces.

    ``map_cpu_seconds`` defaults near the paper's measured ~100-113 s
    map times (Table II); intermediate data is ~5% of input.
    """
    map_out = block_mb * intermediate_fraction
    spec = JobSpec(
        name="word count",
        n_maps=n_maps,
        n_reduces=n_reduces,
        map_input_mb=block_mb,
        map_output_mb=map_out,
        reduce_output_mb=(n_maps * map_out * output_fraction) / max(1, n_reduces),
        map_cpu_seconds=map_cpu_seconds,
        reduce_cpu_seconds=reduce_cpu_seconds,
        sort_seconds_per_mb=0.02,
        **overrides,
    )
    spec.validate()
    return spec
