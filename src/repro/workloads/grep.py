"""A ``grep``-style workload (extension; not in the paper's Table I).

Distributed grep is the canonical third MapReduce example (Dean &
Ghemawat 2008): scan-heavy maps, near-empty intermediate data, a single
small reduce.  Included to exercise the runtime on a map-dominated job
with an extremely sparse shuffle.
"""

from __future__ import annotations

from .base import JobSpec


def grep_spec(
    n_maps: int = 256,
    block_mb: float = 64.0,
    match_fraction: float = 0.001,
    map_cpu_seconds: float = 15.0,
    **overrides,
) -> JobSpec:
    """Distributed grep: huge input, near-zero intermediate data."""
    spec = JobSpec(
        name="grep",
        n_maps=n_maps,
        n_reduces=1,
        map_input_mb=block_mb,
        map_output_mb=max(0.01, block_mb * match_fraction),
        reduce_output_mb=max(0.01, n_maps * block_mb * match_fraction),
        map_cpu_seconds=map_cpu_seconds,
        reduce_cpu_seconds=2.0,
        sort_seconds_per_mb=0.01,
        **overrides,
    )
    spec.validate()
    return spec
