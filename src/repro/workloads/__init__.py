"""Workloads (S8): the paper's Table-I applications + extensions.

Owns the static description of jobs: :class:`JobSpec` (per-task data
volumes, compute costs, replication factors) and the factories for
the paper's Table I applications (sort, word count), the data-free
sleep jobs of Section VI-A, and a grep extension used by the service
catalog.  Durations are calibrated so contention effects emerge from
the simulated I/O system rather than from constants.

See docs/ARCHITECTURE.md#workloads for the layer map.
"""

from .base import (
    HADOOP_VO_RF,
    MOON_INTERMEDIATE_RF,
    MOON_RELIABLE_RF,
    JobSpec,
    scaled,
)
from .generator import random_spec, random_specs
from .grep import grep_spec
from .sleep import sleep_like_sort, sleep_like_wordcount, sleep_spec
from .sort import sort_spec
from .wordcount import wordcount_spec

__all__ = [
    "JobSpec",
    "scaled",
    "sort_spec",
    "wordcount_spec",
    "sleep_spec",
    "sleep_like_sort",
    "sleep_like_wordcount",
    "grep_spec",
    "random_spec",
    "random_specs",
    "MOON_RELIABLE_RF",
    "MOON_INTERMEDIATE_RF",
    "HADOOP_VO_RF",
]
