"""Randomised workload generation for stress/property testing."""

from __future__ import annotations

import numpy as np

from ..dfs import ReplicationFactor
from .base import JobSpec


def random_spec(rng: np.random.Generator, max_maps: int = 64) -> JobSpec:
    """A random but valid job, used by integration/property tests to
    shake out scheduler and DFS edge cases."""
    n_maps = int(rng.integers(1, max_maps + 1))
    n_reduces = int(rng.integers(0, max(1, n_maps // 2) + 1))
    spec = JobSpec(
        name=f"random-{rng.integers(1e9)}",
        n_maps=n_maps,
        n_reduces=max(1, n_reduces),
        map_input_mb=float(rng.uniform(1.0, 64.0)),
        map_output_mb=float(rng.uniform(0.1, 64.0)),
        reduce_output_mb=float(rng.uniform(0.0, 64.0)),
        map_cpu_seconds=float(rng.uniform(1.0, 60.0)),
        reduce_cpu_seconds=float(rng.uniform(1.0, 30.0)),
        sort_seconds_per_mb=float(rng.uniform(0.0, 0.05)),
        input_rf=ReplicationFactor(int(rng.integers(0, 2)), int(rng.integers(1, 4))),
        intermediate_rf=ReplicationFactor(
            int(rng.integers(0, 2)), int(rng.integers(1, 3))
        ),
        output_rf=ReplicationFactor(int(rng.integers(0, 2)), int(rng.integers(1, 4))),
    )
    spec.validate()
    return spec
