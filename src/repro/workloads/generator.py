"""Randomised workload generation for stress/property testing."""

from __future__ import annotations

from typing import List

import numpy as np

from ..dfs import ReplicationFactor
from .base import JobSpec


def random_spec(rng: np.random.Generator, max_maps: int = 64) -> JobSpec:
    """A random but valid job, used by integration/property tests to
    shake out scheduler and DFS edge cases."""
    n_maps = int(rng.integers(1, max_maps + 1))
    n_reduces = int(rng.integers(0, max(1, n_maps // 2) + 1))
    spec = JobSpec(
        name=f"random-{rng.integers(1e9)}",
        n_maps=n_maps,
        n_reduces=max(1, n_reduces),
        map_input_mb=float(rng.uniform(1.0, 64.0)),
        map_output_mb=float(rng.uniform(0.1, 64.0)),
        reduce_output_mb=float(rng.uniform(0.0, 64.0)),
        map_cpu_seconds=float(rng.uniform(1.0, 60.0)),
        reduce_cpu_seconds=float(rng.uniform(1.0, 30.0)),
        sort_seconds_per_mb=float(rng.uniform(0.0, 0.05)),
        input_rf=ReplicationFactor(int(rng.integers(0, 2)), int(rng.integers(1, 4))),
        intermediate_rf=ReplicationFactor(
            int(rng.integers(0, 2)), int(rng.integers(1, 3))
        ),
        output_rf=ReplicationFactor(int(rng.integers(0, 2)), int(rng.integers(1, 4))),
    )
    spec.validate()
    return spec


def random_specs(
    rng: np.random.Generator, n: int, max_maps: int = 64
) -> List[JobSpec]:
    """``n`` random jobs with every field drawn as one numpy batch.

    Field-major draw order (all map counts, then all reduce counts,
    then names, then the six duration/size uniforms spec-major, then
    the replication integers): byte-identical to
    :func:`_random_specs_scalar`, the one-draw-at-a-time reference over
    the same stream, pinned by ``tests/test_sampling.py``.  The order
    deliberately differs from ``n`` calls to :func:`random_spec`
    (spec-major), which stays untouched for existing consumers.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return []
    n_maps = rng.integers(1, max_maps + 1, size=n)
    n_reduces = rng.integers(0, np.maximum(1, n_maps // 2) + 1)
    names = rng.integers(1e9, size=n)
    u = rng.random(size=(n, 6))
    rf = rng.integers(
        [0, 1, 0, 1, 0, 1], [2, 4, 2, 3, 2, 4], size=(n, 6)
    )
    specs: List[JobSpec] = []
    for i in range(n):
        spec = JobSpec(
            name=f"random-{names[i]}",
            n_maps=int(n_maps[i]),
            n_reduces=max(1, int(n_reduces[i])),
            map_input_mb=float(1.0 + (64.0 - 1.0) * u[i, 0]),
            map_output_mb=float(0.1 + (64.0 - 0.1) * u[i, 1]),
            reduce_output_mb=float(0.0 + (64.0 - 0.0) * u[i, 2]),
            map_cpu_seconds=float(1.0 + (60.0 - 1.0) * u[i, 3]),
            reduce_cpu_seconds=float(1.0 + (30.0 - 1.0) * u[i, 4]),
            sort_seconds_per_mb=float(0.0 + (0.05 - 0.0) * u[i, 5]),
            input_rf=ReplicationFactor(int(rf[i, 0]), int(rf[i, 1])),
            intermediate_rf=ReplicationFactor(int(rf[i, 2]), int(rf[i, 3])),
            output_rf=ReplicationFactor(int(rf[i, 4]), int(rf[i, 5])),
        )
        spec.validate()
        specs.append(spec)
    return specs


def _random_specs_scalar(
    rng: np.random.Generator, n: int, max_maps: int = 64
) -> List[JobSpec]:
    """Scalar equivalence oracle for :func:`random_specs`: the same
    field-major order, one Generator call per value."""
    if n == 0:
        return []
    n_maps = [int(rng.integers(1, max_maps + 1)) for _ in range(n)]
    n_reduces = [
        int(rng.integers(0, max(1, m // 2) + 1)) for m in n_maps
    ]
    names = [int(rng.integers(1e9)) for _ in range(n)]
    u = [[float(rng.random()) for _ in range(6)] for _ in range(n)]
    rf_bounds = [(0, 2), (1, 4), (0, 2), (1, 3), (0, 2), (1, 4)]
    rf = [
        [int(rng.integers(lo, hi)) for (lo, hi) in rf_bounds]
        for _ in range(n)
    ]
    specs: List[JobSpec] = []
    for i in range(n):
        spec = JobSpec(
            name=f"random-{names[i]}",
            n_maps=n_maps[i],
            n_reduces=max(1, n_reduces[i]),
            map_input_mb=float(1.0 + (64.0 - 1.0) * u[i][0]),
            map_output_mb=float(0.1 + (64.0 - 0.1) * u[i][1]),
            reduce_output_mb=float(0.0 + (64.0 - 0.0) * u[i][2]),
            map_cpu_seconds=float(1.0 + (60.0 - 1.0) * u[i][3]),
            reduce_cpu_seconds=float(1.0 + (30.0 - 1.0) * u[i][4]),
            sort_seconds_per_mb=float(0.0 + (0.05 - 0.0) * u[i][5]),
            input_rf=ReplicationFactor(rf[i][0], rf[i][1]),
            intermediate_rf=ReplicationFactor(rf[i][2], rf[i][3]),
            output_rf=ReplicationFactor(rf[i][4], rf[i][5]),
        )
        spec.validate()
        specs.append(spec)
    return specs
