"""The ``sort`` benchmark (paper Table I: 24 GB input, 384 maps,
0.9 x AvailSlots reduces).

Sort is I/O-bound: every map emits its whole input as intermediate data
and every reduce writes its whole shuffle volume as output, which is
what makes sort sensitive to replication policy (Fig. 6a) and to
dedicated-node bandwidth (Fig. 7a).
"""

from __future__ import annotations

from .base import JobSpec


def sort_spec(
    n_maps: int = 384,
    block_mb: float = 64.0,
    reduces_per_slot: float = 0.9,
    map_cpu_seconds: float = 12.0,
    reduce_cpu_seconds: float = 6.0,
    **overrides,
) -> JobSpec:
    """Table-I sort: 384 x 64 MB = 24 GB, selectivity 1.0."""
    spec = JobSpec(
        name="sort",
        n_maps=n_maps,
        n_reduces=None,
        reduces_per_slot=reduces_per_slot,
        map_input_mb=block_mb,
        map_output_mb=block_mb,  # selectivity 1: all input is shuffled
        reduce_output_mb=None,  # pass-through: input_mb / n_reduces
        map_cpu_seconds=map_cpu_seconds,
        reduce_cpu_seconds=reduce_cpu_seconds,
        sort_seconds_per_mb=0.02,
        **overrides,
    )
    spec.validate()
    return spec
