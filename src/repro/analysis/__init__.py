"""Analytical models of opportunistic MapReduce (validation layer).

The simulator answers "what happens"; this package answers "what should
happen" from first principles, so the two can be checked against each
other:

* :mod:`repro.analysis.markov` — the two-state up/down node model
  behind all of the paper's availability arithmetic: steady-state
  unavailability, k-of-n outage laws, burst probabilities.
* :mod:`repro.analysis.makespan` — expected task and job durations on
  volatile nodes (suspension-inflated service times, wave model).
* :mod:`repro.analysis.costmodel` — replication traffic and storage
  against delivered availability for volatile-only vs hybrid schemes
  (the Section I / III / VI-C trade-off, generalised to curves).
"""

from .costmodel import (
    ReplicationCost,
    StrategyPoint,
    hybrid_curve,
    strategy_table,
    volatile_only_curve,
)
from .makespan import (
    MakespanEstimate,
    estimate_makespan,
    expected_task_time,
    waves,
)
from .markov import TwoStateModel, k_of_n_down_pmf, prob_at_least_k_down

__all__ = [
    "TwoStateModel",
    "k_of_n_down_pmf",
    "prob_at_least_k_down",
    "expected_task_time",
    "waves",
    "estimate_makespan",
    "MakespanEstimate",
    "ReplicationCost",
    "StrategyPoint",
    "volatile_only_curve",
    "hybrid_curve",
    "strategy_table",
]
