"""Two-state (up/down) Markov model of a volunteer node.

This is the implicit model behind every availability number in the
paper: a node alternates between available periods of mean ``1/lambda``
and outages of mean ``1/mu``; the steady-state unavailability is
``p = lambda / (lambda + mu)``, and with independent nodes the number
simultaneously down is binomial.  The model connects the trace
generator's knobs (rate, mean outage) to closed-form answers that the
simulator can be validated against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import TraceError


@dataclass(frozen=True)
class TwoStateModel:
    """Alternating-renewal node availability model.

    Parameters mirror :class:`repro.config.TraceConfig`: the target
    steady-state unavailability ``p`` and the mean outage length in
    seconds (409 s in the paper's Entropia extract).
    """

    p: float
    mean_outage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise TraceError("p must be in [0, 1)")
        if self.mean_outage <= 0:
            raise TraceError("mean_outage must be positive")

    # ------------------------------------------------------------------
    @property
    def mean_uptime(self) -> float:
        """Mean available interval implied by ``p`` and the outage mean:
        ``p = down / (up + down)``  =>  ``up = down (1 - p) / p``."""
        if self.p == 0.0:
            return float("inf")
        return self.mean_outage * (1.0 - self.p) / self.p

    @property
    def failure_rate(self) -> float:
        """Transitions into the down state per second (1 / mean uptime)."""
        up = self.mean_uptime
        return 0.0 if up == float("inf") else 1.0 / up

    @property
    def repair_rate(self) -> float:
        return 1.0 / self.mean_outage

    # ------------------------------------------------------------------
    def availability_at(self, t: float, up_at_zero: bool = True) -> float:
        """Transient availability ``P(up at t)`` for exponential
        sojourns, starting from a known state at ``t = 0``.

        ``A(t) = mu/(l+mu) + C e^{-(l+mu) t}`` with ``C`` fixed by the
        initial state; converges to ``1 - p``.
        """
        if t < 0:
            raise TraceError("negative time")
        lam, mu = self.failure_rate, self.repair_rate
        if lam == 0.0:
            return 1.0
        steady = mu / (lam + mu)
        start = 1.0 if up_at_zero else 0.0
        return steady + (start - steady) * np.exp(-(lam + mu) * t)

    def prob_survives(self, duration: float) -> float:
        """Probability an up node stays up for ``duration`` seconds
        (exponential uptime) — the chance a task of that length runs
        uninterrupted, motivating the paper's claim that long tasks
        "may be difficult to finish on purely volatile resources"."""
        if duration < 0:
            raise TraceError("negative duration")
        lam = self.failure_rate
        return float(np.exp(-lam * duration))

    def expected_interruptions(self, duration: float) -> float:
        """Mean number of suspensions hitting a task needing ``duration``
        seconds of compute (interruptions arrive at the failure rate
        while the node is up)."""
        if duration < 0:
            raise TraceError("negative duration")
        return self.failure_rate * duration


def k_of_n_down_pmf(n: int, p: float) -> np.ndarray:
    """PMF of the number of nodes simultaneously down out of ``n``
    independent nodes with unavailability ``p`` (binomial)."""
    if n < 0:
        raise TraceError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise TraceError("p must be in [0, 1]")
    # Snap (sub)normal extremes to the exact degenerate PMF: scipy's
    # incomplete-beta path overflows on denormal p.
    if p < 1e-300 or 1.0 - p < 1e-300:
        pmf = np.zeros(n + 1)
        pmf[0 if p < 0.5 else n] = 1.0
        return pmf
    return stats.binom.pmf(np.arange(n + 1), n, p)


def prob_at_least_k_down(n: int, k: int, p: float) -> float:
    """Tail probability ``P(#down >= k)`` — e.g. the chance of the
    90%-down bursts the paper's Figure 1 shows (which the independent
    model makes astronomically rare, motivating the correlated model in
    :mod:`repro.traces.correlated`)."""
    if k < 0:
        raise TraceError("k must be non-negative")
    if k == 0:
        return 1.0
    return float(stats.binom.sf(k - 1, n, p))
