"""First-order makespan model for MapReduce on volatile nodes.

A deliberately simple sanity model, not a scheduler: it answers "what
job time should we *roughly* expect at unavailability ``p``" so that
simulation output can be ranged-checked (EXPERIMENTS.md quotes both).

Model:

* A volatile node delivers useful work a fraction ``1 - p`` of the
  time, so a task needing ``s`` seconds of service occupies its node
  ``s / (1 - p)`` seconds in expectation (suspensions freeze progress,
  per the paper's VM-pause semantics).
* A kill policy (Hadoop's TrackerExpiryInterval) additionally loses
  work: each interruption longer than the expiry restarts the task,
  adding a geometric retry factor.
* Tasks are scheduled in waves over the live slots (the classic
  Hadoop wave model); the job time is the sum of map and reduce wave
  times plus a shuffle term bounded by bisection bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..workloads import JobSpec
from .markov import TwoStateModel


def expected_task_time(
    service_seconds: float,
    model: TwoStateModel,
    kill_after: float = float("inf"),
) -> float:
    """Expected wall-clock occupancy of one task on one volatile node.

    With pause/resume only (MOON): ``s / (1 - p)``.
    With a kill-after-expiry policy (Hadoop): interruptions longer than
    ``kill_after`` scrap the attempt; with exponential outages a
    fraction ``q = exp(-kill_after / mean_outage)`` of interruptions
    kill, each costing on average half the service plus the detection
    time, approximated as a geometric restart factor.
    """
    if service_seconds < 0:
        raise ConfigError("negative service time")
    if service_seconds == 0:
        return 0.0
    p = model.p
    base = service_seconds / max(1e-9, (1.0 - p))
    if math.isinf(kill_after) or p == 0.0:
        return base
    # Interruptions per attempt and the probability one is fatal.
    n_int = model.expected_interruptions(service_seconds)
    q_fatal = math.exp(-kill_after / model.mean_outage)
    p_killed = 1.0 - math.exp(-n_int * q_fatal)
    if p_killed >= 0.999:
        p_killed = 0.999
    # Each killed attempt wastes ~half its progress plus the expiry wait.
    waste = 0.5 * base + kill_after
    return base + (p_killed / (1.0 - p_killed)) * waste


def waves(n_tasks: int, n_slots: int) -> int:
    """Number of scheduling waves to run ``n_tasks`` on ``n_slots``."""
    if n_tasks < 0 or n_slots < 0:
        raise ConfigError("negative task or slot count")
    if n_tasks == 0:
        return 0
    if n_slots == 0:
        raise ConfigError("no execution slots")
    return math.ceil(n_tasks / n_slots)


@dataclass(frozen=True)
class MakespanEstimate:
    """Breakdown of the analytical job-time estimate (seconds)."""

    map_time: float
    shuffle_time: float
    reduce_time: float

    @property
    def total(self) -> float:
        return self.map_time + self.shuffle_time + self.reduce_time


def estimate_makespan(
    spec: JobSpec,
    n_volatile: int,
    p: float,
    mean_outage: float = 409.0,
    map_slots_per_node: int = 2,
    reduce_slots_per_node: int = 2,
    disk_mbps: float = 60.0,
    nic_mbps: float = 80.0,
    kill_after: float = float("inf"),
) -> MakespanEstimate:
    """Expected job time for ``spec`` on ``n_volatile`` live-average nodes.

    The estimate deliberately ignores replication traffic and dedicated
    nodes: it is the *volatile-only lower-bound shape* used to sanity-
    check simulated results, not a substitute for the simulator.
    """
    if n_volatile < 1:
        raise ConfigError("need at least one node")
    model = TwoStateModel(p, mean_outage)
    live = max(1.0, n_volatile * (1.0 - p))

    # --- map phase -------------------------------------------------------
    map_service = (
        spec.map_input_mb / disk_mbps
        + spec.map_cpu_seconds
        + spec.map_output_mb / disk_mbps
    )
    map_occupancy = expected_task_time(map_service, model, kill_after)
    map_slots = live * map_slots_per_node
    map_time = waves(spec.n_maps, math.floor(map_slots)) * map_occupancy

    # --- shuffle ----------------------------------------------------------
    n_reduces = spec.resolve_reduces(
        int(n_volatile * reduce_slots_per_node)
    )
    total_intermediate = spec.n_maps * spec.map_output_mb
    # All intermediate data crosses the network once, spread over the
    # live nodes' NICs; suspensions inflate it like compute.
    shuffle_seconds = total_intermediate / (live * nic_mbps)
    shuffle_time = shuffle_seconds / max(1e-9, 1.0 - p)

    # --- reduce phase -----------------------------------------------------
    per_reduce_in = (
        total_intermediate / n_reduces if n_reduces > 0 else 0.0
    )
    out_mb = spec.resolve_reduce_output_mb(n_reduces)
    reduce_service = (
        per_reduce_in * spec.sort_seconds_per_mb
        + spec.reduce_cpu_seconds
        + out_mb / disk_mbps
    )
    reduce_occupancy = expected_task_time(reduce_service, model, kill_after)
    reduce_slots = live * reduce_slots_per_node
    reduce_time = (
        waves(n_reduces, math.floor(reduce_slots)) * reduce_occupancy
        if n_reduces
        else 0.0
    )
    return MakespanEstimate(map_time, shuffle_time, reduce_time)
