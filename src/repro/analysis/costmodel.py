"""Replication strategy trade-off curves (paper Sections I, III, VI-C).

The paper's core economic argument in one module: to hold a block at a
target availability you can either pile volatile replicas (eleven at
``p = 0.4`` for four nines, Section I) or anchor one copy on a
dedicated node and keep a few volatile ones ({1, 3}, Section III).
These helpers produce the full curves behind those two data points so
the trade-off can be plotted, tested and cited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dfs.availability import block_availability, replication_cost_mb
from ..errors import DfsError


@dataclass(frozen=True)
class StrategyPoint:
    """One replication configuration and what it delivers."""

    dedicated: int
    volatile: int
    availability: float
    #: Network MB moved to materialise the copies of one block.
    traffic_mb: float
    #: Total storage MB consumed per block.
    storage_mb: float

    @property
    def total_replicas(self) -> int:
        return self.dedicated + self.volatile

    def meets(self, goal: float) -> bool:
        return self.availability > goal


@dataclass(frozen=True)
class ReplicationCost:
    """Cheapest configuration meeting a goal, if any."""

    goal: float
    point: Optional[StrategyPoint]

    @property
    def feasible(self) -> bool:
        return self.point is not None


def _point(
    d: int, v: int, p_volatile: float, p_dedicated: float, block_mb: float
) -> StrategyPoint:
    avail = block_availability(p_volatile, v, p_dedicated, d)
    total = d + v
    return StrategyPoint(
        dedicated=d,
        volatile=v,
        availability=avail,
        traffic_mb=replication_cost_mb(block_mb, total),
        storage_mb=block_mb * total,
    )


def volatile_only_curve(
    p_volatile: float, max_replicas: int = 12, block_mb: float = 64.0
) -> List[StrategyPoint]:
    """Availability/cost for v = 1..max volatile-only replicas — the
    Hadoop-VO family of Section VI-C."""
    if max_replicas < 1:
        raise DfsError("max_replicas must be >= 1")
    return [
        _point(0, v, p_volatile, 0.0, block_mb)
        for v in range(1, max_replicas + 1)
    ]


def hybrid_curve(
    p_volatile: float,
    p_dedicated: float = 0.001,
    max_volatile: int = 12,
    block_mb: float = 64.0,
) -> List[StrategyPoint]:
    """Availability/cost for one dedicated + v = 0..max volatile copies
    — the MOON family ({1, v} factors)."""
    if max_volatile < 0:
        raise DfsError("max_volatile must be >= 0")
    return [
        _point(1, v, p_volatile, p_dedicated, block_mb)
        for v in range(0, max_volatile + 1)
    ]


def cheapest_meeting(
    curve: Sequence[StrategyPoint], goal: float
) -> ReplicationCost:
    """First (fewest-replica) point on a curve exceeding the goal."""
    if not 0.0 < goal < 1.0:
        raise DfsError("goal must be in (0, 1)")
    for point in curve:
        if point.meets(goal):
            return ReplicationCost(goal, point)
    return ReplicationCost(goal, None)


def strategy_table(
    p_volatile: float,
    goal: float,
    p_dedicated: float = 0.001,
    block_mb: float = 64.0,
    max_replicas: int = 16,
) -> str:
    """Text table contrasting the cheapest VO and hybrid strategies at a
    goal — the paper's Section I vs Section III arithmetic, printable.
    """
    vo = cheapest_meeting(
        volatile_only_curve(p_volatile, max_replicas, block_mb), goal
    )
    hy = cheapest_meeting(
        hybrid_curve(p_volatile, p_dedicated, max_replicas, block_mb), goal
    )
    lines = [
        f"goal {goal:.4%} at p_volatile={p_volatile}, "
        f"p_dedicated={p_dedicated}, block={block_mb:.0f} MB",
        f"{'strategy':<14} {'replicas':>9} {'avail':>10} "
        f"{'traffic MB':>11} {'storage MB':>11}",
    ]
    for name, cost in (("volatile-only", vo), ("hybrid {1,v}", hy)):
        if cost.point is None:
            lines.append(f"{name:<14} {'infeasible':>9}")
            continue
        pt = cost.point
        label = f"{{{pt.dedicated},{pt.volatile}}}"
        lines.append(
            f"{name:<14} {label:>9} {pt.availability:>10.6f} "
            f"{pt.traffic_mb:>11.0f} {pt.storage_mb:>11.0f}"
        )
    if vo.point is not None and hy.point is not None:
        saved = vo.point.traffic_mb - hy.point.traffic_mb
        lines.append(
            f"hybrid saves {saved:.0f} MB of replication traffic per block"
        )
    return "\n".join(lines)
