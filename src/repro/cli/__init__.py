"""Command-line interface: ``python -m repro <command>``.

One subcommand per reproducible artifact plus utilities:

=============  ======================================================
``fig1``       Figure 1 — volunteer-trace unavailability, 7 days
``fig4``       Figure 4 — scheduling policies vs job time (and Fig. 5)
``fig6``       Figure 6 — intermediate-data replication policies
``fig7``       Figure 7 — overall MOON vs Hadoop-VO
``table1``     Table I — application configurations
``table2``     Table II — execution profile at rate 0.5
``ablations``  network / two-phase / LATE ablation sweeps
``run``        run one job on a configured system, print metrics
``trace``      generate / inspect availability trace files
``availability`` replication-strategy arithmetic (Sections I/III)
``estimate``   analytical makespan model for a workload
=============  ======================================================

Every experiment honours ``REPRO_FULL_SCALE=1`` for the paper's exact
sizes; the default reduced scale finishes in seconds per figure cell.
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
