"""CLI argument parsing and dispatch (see package docstring)."""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .. import __version__
from . import commands


def _add_obs_flags(parser) -> None:
    """The flight-recorder flags shared by run, serve and replay."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace-event JSON of the run (load in "
             "Perfetto / chrome://tracing; first cell when comparing "
             "policies)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics registry (counters, gauges, "
             "histograms) as JSON",
    )
    parser.add_argument(
        "--max-trace-events",
        type=int,
        default=1_000_000,
        metavar="N",
        help="tracer memory cap; events beyond it are dropped, "
             "counted in obs/dropped_events and warned about at "
             "export (never silently)",
    )


def _add_autoscale_bounds(parser) -> None:
    """The autoscale-bounds flags shared verbatim by serve and replay."""
    parser.add_argument("--min-dedicated", type=int, default=1,
                        help="autoscale floor for the dedicated tier")
    parser.add_argument("--max-dedicated", type=int, default=None,
                        help="autoscale ceiling (default: 2x --dedicated, "
                             "at least --min-dedicated + 1)")
    parser.add_argument("--autoscale-interval", type=float, default=30.0,
                        help="seconds between autoscale control rounds")


def _add_detector_flags(parser) -> None:
    """The failure-detection flags shared verbatim by serve and replay."""
    from ..config import DETECTOR_MODES

    parser.add_argument(
        "--detector",
        choices=list(DETECTOR_MODES) + ["all"],
        default="oracle",
        help="how observers learn node state: 'oracle' (trace-fed "
             "judgements, the byte-identical historical default), "
             "'timeout' (honest fixed heartbeat timeouts with "
             "observation noise), 'adaptive' (phi-accrual-style "
             "per-node thresholds); 'all' compares the three on one "
             "queue policy",
    )
    parser.add_argument(
        "--detector-scale",
        type=float,
        default=1.0,
        help="multiply every honest detection threshold (the "
             "detection-latency axis: 0.5 suspects twice as fast)",
    )


def _add_journal_flags(parser) -> None:
    """The durable-metadata flags shared verbatim by serve and replay."""
    parser.add_argument(
        "--journal",
        choices=["off", "on"],
        default="off",
        help="NameNode write-ahead journal: 'off' (the byte-identical "
             "historical default — an immortal NameNode, zero extra "
             "events) or 'on' (journal every namespace/block-map "
             "mutation and checkpoint periodically)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=300.0,
        help="seconds between namespace checkpoints when the journal "
             "is on (shorter -> fewer records replayed at recovery)",
    )
    parser.add_argument(
        "--namenode-crash",
        type=float,
        default=None,
        metavar="T",
        help="crash and fail over the NameNode at sim-time T seconds, "
             "losing unsynced journal records (implies --journal on)",
    )


def _add_preemption_flags(parser) -> None:
    """The preemption flags shared verbatim by serve and replay."""
    from ..service.preempt import PREEMPT_MODES

    parser.add_argument(
        "--preempt",
        choices=list(PREEMPT_MODES) + ["all"],
        default=None,
        help="act on in-flight loose-SLO jobs when tight-SLO arrivals "
             "queue up: demote them ('deprioritise') or additionally "
             "suspend them under sustained pressure ('pause'); 'all' "
             "compares the three modes on one queue policy",
    )
    parser.add_argument(
        "--admission-prices",
        action="store_true",
        help="at queue saturation shed the cheapest-to-miss work "
             "(deadline-free, then loosest SLO) instead of the newest "
             "arrival",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (one sub-command per artifact)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MOON (HPDC 2010) reproduction: regenerate the paper's "
            "figures and tables, run jobs, inspect traces."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose",
        action="store_true",
        help="log progress diagnostics to stderr (INFO level)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # --- figures/tables -------------------------------------------------
    for name, help_text in (
        ("fig1", "Figure 1: 7-day volunteer availability trace"),
        ("fig4", "Figures 4+5: scheduling policy comparison"),
        ("fig6", "Figure 6: intermediate-data replication policies"),
        ("fig7", "Figure 7: overall MOON vs augmented Hadoop"),
        ("table1", "Table I: application configurations"),
        ("table2", "Table II: execution profile at 0.5 unavailability"),
        ("ablations", "network / two-phase / LATE ablation sweeps"),
    ):
        p = sub.add_parser(name, help=help_text)
        if name in ("fig4", "fig6", "fig7", "table2"):
            p.add_argument(
                "--app",
                choices=["sort", "wordcount", "both"],
                default="both",
                help="which application panel to reproduce",
            )
        if name == "ablations":
            p.add_argument(
                "--which",
                choices=["network", "twophase", "late", "all"],
                default="all",
            )

    # --- run ------------------------------------------------------------
    run_p = sub.add_parser("run", help="run one job on a simulated cluster")
    run_p.add_argument(
        "--workload",
        choices=["sort", "wordcount", "sleep-sort", "sleep-wordcount", "grep"],
        default="sort",
    )
    run_p.add_argument("--scheduler", choices=["moon", "hadoop", "late"],
                       default="moon")
    run_p.add_argument("--no-hybrid", action="store_true",
                       help="disable hybrid-aware task placement")
    run_p.add_argument("--rate", type=float, default=0.3,
                       help="volatile-node unavailability rate")
    run_p.add_argument("--volatile", type=int, default=60)
    run_p.add_argument("--dedicated", type=int, default=6)
    run_p.add_argument("--maps", type=int, default=None,
                       help="override the workload's map-task count")
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--expiry-minutes", type=float, default=None,
                       help="TrackerExpiryInterval override (minutes)")
    _add_obs_flags(run_p)

    # --- serve ----------------------------------------------------------
    serve_p = sub.add_parser(
        "serve",
        help="serve a continuous multi-tenant job stream (SLO report)",
        description=(
            "Run MOON as a long-lived service: jobs arrive over a "
            "simulated horizon (Poisson, bursty or diurnal), pass "
            "admission control and a queue policy, and are tracked "
            "against per-class response-time SLOs.  The report gives "
            "queue wait, p50/p95/p99 response time, deadline-miss "
            "rate, goodput and tenant fairness."
        ),
        epilog=(
            "examples:\n"
            "  compare all four queue policies under bursty traffic:\n"
            "    repro serve --pattern bursty --policy all "
            "--jobs-per-hour 18 --hours 2 \\\n"
            "        --catalog sleep --max-in-flight 2 --volatile 30 "
            "--dedicated 3 --rate 0.3\n"
            "    (EDF should post the lowest deadline-miss rate; FIFO "
            "the highest)\n"
            "  compare dedicated-tier provisioning policies on cost "
            "and SLO:\n"
            "    repro serve --autoscale all --pattern bursty\n"
            "    (reactive/predictive should beat the static tier on "
            "miss rate at\n     equal-or-fewer dedicated node-hours)\n"
            "Flags marked [mode] default differently under --autoscale "
            "— see repro.cli.commands._SERVE_DEFAULTS."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve_p.add_argument(
        "--pattern",
        choices=["poisson", "bursty", "diurnal", "replay"],
        default="poisson",
        help="arrival process shape ('replay' needs a trace file — "
             "use `repro replay --trace <file>` instead)",
    )
    # Single source of truth for the policy names; imported here (not
    # module-level) so only parser construction depends on the package.
    from ..service.autoscale import AUTOSCALE_POLICIES
    from ..service.queue import QUEUE_POLICIES

    serve_p.add_argument(
        "--policy",
        choices=list(QUEUE_POLICIES) + ["all"],
        default=None,
        help="queue ordering policy ('all' compares every policy) "
             "[mode: fifo / edf]",
    )
    serve_p.add_argument("--jobs-per-hour", type=float, default=None,
                         help="mean arrival rate (peak rate for diurnal) "
                              "[mode: 12 / 24]")
    serve_p.add_argument("--burst-size", type=float, default=None,
                         help="mean jobs per burst (bursty pattern) "
                              "[mode: 6 / 12]")
    serve_p.add_argument("--hours", type=float, default=2.0,
                         help="admission horizon in simulated hours")
    serve_p.add_argument("--tenants", type=int, default=3,
                         help="number of tenants sharing the service")
    serve_p.add_argument(
        "--catalog",
        choices=["mixed", "sleep"],
        default=None,
        help="workload mix: real data jobs, or data-free sleep jobs "
             "[mode: mixed / sleep]",
    )
    serve_p.add_argument("--block-mb", type=float, default=4.0,
                         help="block size of the mixed catalog's jobs")
    serve_p.add_argument("--max-in-flight", type=int, default=None,
                         help="jobs concurrently admitted to the cluster "
                              "[mode: 4 / 8]")
    serve_p.add_argument("--queue-depth", type=int, default=None,
                         help="queue bound; arrivals beyond it are "
                              "rejected [mode: 64 / 128]")
    serve_p.add_argument("--tenant-quota", type=int, default=None,
                         help="max in-flight jobs per tenant")
    serve_p.add_argument("--rate", type=float, default=0.3,
                         help="volatile-node unavailability rate")
    serve_p.add_argument("--volatile", type=int, default=None,
                         help="volatile node count [mode: 30 / 12]")
    serve_p.add_argument("--dedicated", type=int, default=3)
    serve_p.add_argument("--seed", type=int, default=42)
    serve_p.add_argument(
        "--autoscale",
        choices=list(AUTOSCALE_POLICIES) + ["all"],
        default=None,
        help="autoscale the dedicated tier with this provisioning "
             "policy ('all' compares the three on cost and SLO)",
    )
    serve_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="also write the report(s) as versioned JSON",
    )
    serve_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a snapshot of the running service at sim-time "
             "--checkpoint-at, then keep serving to the usual report "
             "(resume later with `repro resume PATH`); single-cell "
             "runs only",
    )
    serve_p.add_argument(
        "--checkpoint-at",
        type=float,
        default=None,
        metavar="T",
        help="sim-time (seconds) at which to take the --checkpoint "
             "snapshot",
    )
    _add_autoscale_bounds(serve_p)
    _add_preemption_flags(serve_p)
    _add_detector_flags(serve_p)
    _add_journal_flags(serve_p)
    _add_obs_flags(serve_p)

    # --- replay ---------------------------------------------------------
    replay_p = sub.add_parser(
        "replay",
        help="replay a workload-trace file through the service layer",
        description=(
            "Serve a recorded job stream instead of a synthetic one: "
            "load a Google-cluster-style CSV, a Hadoop "
            "JobHistory-style JSON, or a canonical repro trace; "
            "calibrate its jobs onto the workload catalogue; "
            "optionally synthesize a scaled variant; then serve it "
            "under one or all queue (or autoscale) policies on "
            "identical streams.  Reports are byte-identical across "
            "processes for a given trace + seed."
        ),
        epilog=(
            "examples:\n"
            "  compare all four queue policies on the bundled sample:\n"
            "    repro replay --trace benchmarks/data/"
            "google_cluster_sample.csv --policy all\n"
            "  double the load via the fitted synthesizer:\n"
            "    repro replay --trace <file> --scale 2 --policy edf\n"
            "  compare preemption modes at 3x load (EDF+pause should "
            "post the lowest\n  tight-SLO miss rate):\n"
            "    repro replay --trace <file> --scale 3 --policy edf "
            "--preempt all\n"
            "  round-trip: capture the served run back out as a "
            "canonical trace:\n"
            "    repro replay --trace <file> --capture served.json"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    replay_p.add_argument("--trace", required=True,
                          help="trace file (.csv google-style, .json "
                               "hadoop-style or canonical)")
    replay_p.add_argument("--scale", type=float, default=None,
                          help="synthesize a variant at this load factor "
                               "(fitted inter-arrival law; default: "
                               "replay verbatim)")
    replay_p.add_argument("--stretch", type=float, default=None,
                          help="horizon multiplier for the synthesized "
                               "variant (implies synthesis)")
    replay_p.add_argument(
        "--policy",
        choices=list(QUEUE_POLICIES) + ["all"],
        default="fifo",
        help="queue ordering policy ('all' compares every policy)",
    )
    replay_p.add_argument(
        "--autoscale",
        choices=list(AUTOSCALE_POLICIES) + ["all"],
        default=None,
        help="autoscale the dedicated tier during the replay ('all' "
             "compares the three provisioning policies)",
    )
    replay_p.add_argument("--capture", default=None, metavar="PATH",
                          help="write the served stream back out as a "
                               "canonical trace JSON (first cell when "
                               "comparing policies)")
    replay_p.add_argument("--max-maps", type=int, default=None,
                          help="calibration cap on map tasks per job "
                               "(durations scale up to preserve work)")
    replay_p.add_argument("--max-reduces", type=int, default=None,
                          help="calibration cap on reduce tasks per job")
    replay_p.add_argument("--time-scale", type=float, default=1.0,
                          help="stretch/compress per-task durations")
    replay_p.add_argument("--max-in-flight", type=int, default=4,
                          help="jobs concurrently admitted to the cluster")
    replay_p.add_argument("--queue-depth", type=int, default=64,
                          help="queue bound; arrivals beyond it are "
                               "rejected")
    replay_p.add_argument("--tenant-quota", type=int, default=None,
                          help="max in-flight jobs per tenant")
    replay_p.add_argument("--drain-hours", type=float, default=4.0,
                          help="extra simulated hours to drain the "
                               "backlog after the trace horizon")
    replay_p.add_argument("--rate", type=float, default=0.3,
                          help="volatile-node unavailability rate")
    replay_p.add_argument("--volatile", type=int, default=12)
    replay_p.add_argument("--dedicated", type=int, default=2)
    replay_p.add_argument("--seed", type=int, default=42)
    replay_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="also write the report(s) as versioned JSON",
    )
    _add_autoscale_bounds(replay_p)
    _add_preemption_flags(replay_p)
    _add_detector_flags(replay_p)
    _add_journal_flags(replay_p)
    _add_obs_flags(replay_p)

    # --- sweep ----------------------------------------------------------
    sweep_p = sub.add_parser(
        "sweep",
        help="parallel policy x scale x seed sweep with a merged report",
        description=(
            "Fan a grid of independent serve cells — queue policy x "
            "load multiplier x seed — across worker processes and "
            "merge the results into one byte-stable report: the same "
            "grid produces identical JSON at any --procs, so two "
            "sweep files can be compared with `repro diff` or plain "
            "cmp.  The scale axis multiplies --jobs-per-hour."
        ),
        epilog=(
            "examples:\n"
            "  all four policies at 1x and 2x load, three seeds, "
            "8 workers:\n"
            "    repro sweep --scales 1,2 --seeds 1,2,3 --procs 8 "
            "--json sweep.json\n"
            "  is the SJF win seed-luck? one policy pair, many seeds:\n"
            "    repro sweep --policies fifo,sjf --seeds 1,2,3,4,5,6"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep_p.add_argument(
        "--policies",
        default="all",
        help="comma-separated queue policies, or 'all' (default)",
    )
    sweep_p.add_argument(
        "--scales",
        default="1.0",
        help="comma-separated load multipliers on --jobs-per-hour",
    )
    sweep_p.add_argument(
        "--seeds", default="42", help="comma-separated seeds"
    )
    sweep_p.add_argument(
        "--procs",
        type=int,
        default=1,
        help="worker processes (results are byte-identical at any "
             "value)",
    )
    sweep_p.add_argument("--jobs-per-hour", type=float, default=12.0,
                         help="base mean arrival rate (scaled per cell)")
    sweep_p.add_argument("--hours", type=float, default=1.0,
                         help="admission horizon in simulated hours")
    sweep_p.add_argument(
        "--catalog",
        choices=["mixed", "sleep"],
        default="sleep",
        help="workload mix of every cell",
    )
    sweep_p.add_argument("--max-in-flight", type=int, default=4)
    sweep_p.add_argument("--queue-depth", type=int, default=64)
    sweep_p.add_argument("--rate", type=float, default=0.3,
                         help="volatile-node unavailability rate")
    sweep_p.add_argument("--volatile", type=int, default=8)
    sweep_p.add_argument("--dedicated", type=int, default=2)
    sweep_p.add_argument("--tenants", type=int, default=3)
    sweep_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="write the merged sweep report (canonical bytes)",
    )

    # --- resume ---------------------------------------------------------
    resume_p = sub.add_parser(
        "resume",
        help="resume a serve checkpoint instead of re-simulating from 0",
        description=(
            "Load a snapshot written by `repro serve --checkpoint` and "
            "continue the run from the captured instant: same events, "
            "same RNG draws, same report as the uninterrupted run.  "
            "Without --until the stream is served to drain and the SLO "
            "report printed; with --until the world advances to that "
            "sim-time and is re-checkpointed (requires --checkpoint)."
        ),
    )
    resume_p.add_argument(
        "snapshot", help="checkpoint file from `serve --checkpoint`"
    )
    resume_p.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="T",
        help="advance to sim-time T and stop (instead of serving to "
             "drain); the progress must be persisted with --checkpoint",
    )
    resume_p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a new snapshot after advancing",
    )
    resume_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="also write the final report as versioned JSON",
    )

    # --- explain --------------------------------------------------------
    explain_p = sub.add_parser(
        "explain",
        help="why was this job slow? causal blame over the flight recorder",
        description=(
            "Replay a workload trace with the flight recorder armed "
            "(or load an existing --trace-out JSON), rebuild each "
            "job's causal graph, and partition its response time into "
            "an exhaustive blame taxonomy: queue wait, useful "
            "execution, shuffle, straggler wait, re-execution after "
            "real failures vs false-positive suspicion, preemption "
            "pauses, NameNode-recovery stalls, slot wait and commit.  "
            "Components sum to the response time exactly, so nothing "
            "hides."
        ),
        epilog=(
            "examples:\n"
            "  the three slowest jobs of a replayed stream:\n"
            "    repro explain --trace benchmarks/data/"
            "hadoop_jobhistory_sample.json --worst 3\n"
            "  one job by service seq, under an honest detector:\n"
            "    repro explain --trace <file> --detector timeout --job 7\n"
            "  explain a trace file recorded earlier:\n"
            "    repro replay --trace <file> --trace-out run.json\n"
            "    repro explain --from run.json"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    explain_p.add_argument("--trace", default=None,
                           help="workload trace to replay with the "
                                "recorder armed (as `repro replay`)")
    explain_p.add_argument("--from", dest="from_trace", default=None,
                           metavar="PATH",
                           help="explain an existing --trace-out "
                                "Chrome-trace JSON instead of running")
    explain_p.add_argument("--scale", type=float, default=None,
                           help="synthesize the trace at this load "
                                "factor before replaying")
    explain_p.add_argument(
        "--policy",
        choices=list(QUEUE_POLICIES),
        default="fifo",
        help="queue ordering policy of the replayed cell",
    )
    explain_p.add_argument("--job", type=int, default=None, metavar="N",
                           help="explain the job with service seq N")
    explain_p.add_argument("--worst", type=int, default=3, metavar="K",
                           help="explain the K slowest jobs (default 3)")
    explain_p.add_argument("--tenant", default=None,
                           help="explain every job of one tenant")
    explain_p.add_argument("--max-in-flight", type=int, default=4)
    explain_p.add_argument("--queue-depth", type=int, default=64)
    explain_p.add_argument("--tenant-quota", type=int, default=None)
    explain_p.add_argument("--drain-hours", type=float, default=4.0)
    explain_p.add_argument("--rate", type=float, default=0.3,
                           help="volatile-node unavailability rate")
    explain_p.add_argument("--volatile", type=int, default=12)
    explain_p.add_argument("--dedicated", type=int, default=2)
    explain_p.add_argument("--seed", type=int, default=42)
    explain_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="also write the explanation as versioned JSON",
    )
    _add_preemption_flags(explain_p)
    _add_detector_flags(explain_p)
    _add_journal_flags(explain_p)
    _add_obs_flags(explain_p)

    # --- diff -----------------------------------------------------------
    diff_p = sub.add_parser(
        "diff",
        help="first causal divergence between two run artifacts",
        description=(
            "Align two flight-recorder files (--trace-out Chrome-trace "
            "JSON or --metrics-out registry JSON) and report the first "
            "causal divergence: event index, simulated time, layer and "
            "the differing fields.  Exit 0 when identical, 1 on "
            "divergence, 2 on unreadable or mismatched inputs."
        ),
    )
    diff_p.add_argument("a", help="first run artifact (JSON)")
    diff_p.add_argument("b", help="second run artifact (JSON)")

    # --- trace ----------------------------------------------------------
    trace_p = sub.add_parser(
        "trace", help="generate or inspect availability traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    gen = trace_sub.add_parser("generate", help="write a trace file")
    gen.add_argument("output", help="output path (.csv or .json)")
    gen.add_argument("--nodes", type=int, default=60)
    gen.add_argument("--rate", type=float, default=0.4)
    gen.add_argument(
        "--distribution",
        choices=["normal", "lognormal", "weibull", "exponential", "pareto"],
        default="normal",
    )
    gen.add_argument("--correlated", action="store_true",
                     help="use the lab-session correlated model")
    gen.add_argument("--seed", type=int, default=42)
    stats = trace_sub.add_parser("stats", help="summarise a trace file")
    stats.add_argument("input", help="trace file written by 'generate'")
    stats.add_argument("--histogram", action="store_true",
                       help="also print the outage-length histogram")
    stats.add_argument("--fit", action="store_true",
                       help="fit outage-length families (ranked by AIC)")

    # --- availability math -----------------------------------------------
    avail_p = sub.add_parser(
        "availability",
        help="replication-strategy arithmetic (paper Sections I/III)",
    )
    avail_p.add_argument("--p", type=float, default=0.4,
                         help="volatile-node unavailability")
    avail_p.add_argument("--p-dedicated", type=float, default=0.001)
    avail_p.add_argument("--goal", type=float, default=0.9999)

    # --- analytical estimate ---------------------------------------------
    est_p = sub.add_parser(
        "estimate", help="analytical makespan estimate for a workload"
    )
    est_p.add_argument("--workload", choices=["sort", "wordcount"],
                       default="sort")
    est_p.add_argument("--nodes", type=int, default=60)
    est_p.add_argument("--rate", type=float, default=0.3)
    est_p.add_argument("--expiry-minutes", type=float, default=None)

    # --- validation --------------------------------------------------------
    sub.add_parser(
        "validate",
        help="cross-check the simulator against the analytical models",
    )

    # --- perf -------------------------------------------------------------
    from ..perf import SCENARIOS

    perf_p = sub.add_parser(
        "perf",
        help="time macro-scenarios against the committed perf baseline",
        description=(
            "Run named end-to-end scenarios (figure-pipeline slices, "
            "the 2k-job service stream, a fair-share network stress), "
            "write BENCH_PR2.json at the repo root, and with --check "
            "fail if any scenario runs >20% slower than the baseline "
            "committed in benchmarks/perf/baseline.json."
        ),
    )
    perf_p.add_argument(
        "--scenario",
        action="append",
        choices=list(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    perf_p.add_argument("--repeat", type=int, default=1,
                        help="timing repeats per scenario (fastest wins)")
    perf_p.add_argument("--check", action="store_true",
                        help="exit 1 on >20%% regression vs the baseline")
    perf_p.add_argument("--update-baseline", action="store_true",
                        help="re-pin benchmarks/perf/baseline.json")
    perf_p.add_argument("--output", default=None,
                        help="report path (default: <repo>/BENCH_PR2.json)")
    perf_p.add_argument("--baseline", default=None,
                        help="baseline path override")

    # --- profile ----------------------------------------------------------
    profile_p = sub.add_parser(
        "profile",
        help="profile the dispatch loop over a perf scenario",
        description=(
            "Run a perf scenario with the dispatch-loop profiler armed "
            "and print a per-event-type hot table: call count, "
            "cumulative wall-clock and share of dispatch time for each "
            "handler.  Wall-clock lives outside the determinism "
            "boundary — the simulated behaviour is unchanged."
        ),
    )
    profile_p.add_argument(
        "--scenario",
        action="append",
        choices=list(SCENARIOS),
        help="scenario to profile (repeatable; default: fig6)",
    )
    profile_p.add_argument("--top", type=int, default=20,
                           help="rows in the hot table")
    profile_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_out",
        help="also write the profile as versioned JSON "
             "(schema_version, scenarios, per-event count/seconds)",
    )
    _add_obs_flags(profile_p)

    return parser


#: command-name -> handler in :mod:`repro.cli.commands`.
_DISPATCH = {
    "fig1": commands.cmd_fig1,
    "fig4": commands.cmd_fig4,
    "fig6": commands.cmd_fig6,
    "fig7": commands.cmd_fig7,
    "table1": commands.cmd_table1,
    "table2": commands.cmd_table2,
    "ablations": commands.cmd_ablations,
    "run": commands.cmd_run,
    "serve": commands.cmd_serve,
    "sweep": commands.cmd_sweep,
    "resume": commands.cmd_resume,
    "replay": commands.cmd_replay,
    "explain": commands.cmd_explain,
    "diff": commands.cmd_diff,
    "trace": commands.cmd_trace,
    "availability": commands.cmd_availability,
    "estimate": commands.cmd_estimate,
    "validate": commands.cmd_validate,
    "perf": commands.cmd_perf,
    "profile": commands.cmd_profile,
}


def _configure_logging(verbose: bool) -> None:
    """Route diagnostics to stderr; INFO only under ``--verbose``.

    ``force=True`` so repeated in-process ``main()`` calls (tests,
    notebooks) reconfigure instead of silently keeping the first
    handler.
    """
    logging.basicConfig(
        level=logging.INFO if verbose else logging.WARNING,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    handler = _DISPATCH[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # e.g. `repro fig4 | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
