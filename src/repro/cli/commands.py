"""CLI command handlers.

Each handler takes the parsed :mod:`argparse` namespace, prints its
report to stdout, and returns an exit code.  Experiments delegate to
:mod:`repro.experiments`; utility commands assemble systems directly.

Reports go to stdout; diagnostics (usage errors, progress notes, file
confirmations) go through :mod:`logging` to stderr — errors always,
progress only under ``repro --verbose``.
"""

from __future__ import annotations

import json
import logging

import numpy as np

from ..analysis import estimate_makespan, strategy_table
from ..config import (
    DETECTOR_MODES,
    ClusterConfig,
    DetectorConfig,
    DfsConfig,
    JournalConfig,
    SchedulerConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from ..core import hadoop_system, moon_system
from ..experiments import ablations, current_scale, fig1, fig4, fig6, fig7
from ..plotting import bar_chart, histogram
from ..traces import (
    CorrelatedConfig,
    compute_stats,
    generate_correlated_traces,
    generate_trace,
    load_traces_csv,
    load_traces_json,
    save_traces_csv,
    save_traces_json,
)
from ..workloads import (
    grep_spec,
    sleep_like_sort,
    sleep_like_wordcount,
    sort_spec,
    wordcount_spec,
)

log = logging.getLogger("repro")

_APPS = {"sort": "sort", "wordcount": "word count"}


# ======================================================================
# Observability / JSON-report plumbing
# ======================================================================
def _make_obs(args):
    """An :class:`~repro.obs.Observability` when any flight-recorder
    flag was passed; None keeps obs entirely off (the default, which
    is byte-identical to a build without the obs layer)."""
    if args.trace_out is None and args.metrics_out is None:
        return None
    from ..obs import Observability, ObsConfig

    return Observability(
        ObsConfig(
            trace=args.trace_out is not None,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            max_trace_events=args.max_trace_events,
        )
    )


def _export_obs(obs) -> None:
    """Write any requested trace/metrics files; log each path."""
    if obs is None:
        return
    for path in obs.export():
        log.info("wrote %s", path)


def _write_reports_json(path, reports) -> None:
    """Write serve/replay reports as versioned JSON (``--json``)."""
    from ..service import REPORT_SCHEMA_VERSION

    payload = {"schema_version": REPORT_SCHEMA_VERSION, "reports": reports}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    log.info("wrote %d report(s) to %s", len(reports), path)


def _apps(choice: str):
    if choice == "both":
        return ["sort", "word count"]
    return [_APPS[choice]]


# ======================================================================
# Figures / tables
# ======================================================================
def cmd_fig1(args) -> int:
    """Figure 1: weekly volunteer-grid unavailability profile."""
    profiles = fig1.run()
    print(fig1.report(profiles))
    return 0


def cmd_fig4(args) -> int:
    """Figures 4+5: scheduling-policy comparison (and duplicates)."""
    for app in _apps(args.app):
        data = fig4.run(app)
        print(fig4.report(app, data))
        print()
    return 0


def cmd_fig6(args) -> int:
    """Figure 6: intermediate-data replication policies."""
    for app in _apps(args.app):
        data = fig6.run(app)
        print(fig6.report(app, data))
        print()
    return 0


def cmd_fig7(args) -> int:
    """Figure 7: overall MOON vs augmented Hadoop."""
    for app in _apps(args.app):
        data = fig7.run(app)
        print(fig7.report(app, data))
        print()
    return 0


def cmd_table1(args) -> int:
    """Table I: the two applications' configurations."""
    s, w = sort_spec(), wordcount_spec()
    print("TABLE I - application configurations")
    print(f"{'application':<14}{'input':>8}{'# maps':>8}  {'# reduces'}")
    print(f"{'sort':<14}{s.input_mb / 1024:>6.0f}GB{s.n_maps:>8}  "
          f"0.9 x AvailSlots")
    print(f"{'word count':<14}{w.input_mb / 1024:>6.0f}GB{w.n_maps:>8}  "
          f"{w.n_reduces}")
    return 0


def cmd_table2(args) -> int:
    """Table II: execution profiles at 0.5 unavailability."""
    for app in _apps(args.app):
        profiles = fig6.table2(app)
        print(fig6.report_table2(app, profiles))
        print()
    return 0


def cmd_ablations(args) -> int:
    """Network / two-phase / LATE ablation sweeps."""
    which = args.which
    if which in ("network", "all"):
        print(ablations.report_network(ablations.run_network_ablation()))
        print()
    if which in ("twophase", "all"):
        print(ablations.report_twophase(ablations.run_twophase_sweep()))
        print()
    if which in ("late", "all"):
        print(ablations.report_late(ablations.run_late_ablation()))
        print()
    return 0


# ======================================================================
# run
# ======================================================================
_WORKLOADS = {
    "sort": sort_spec,
    "wordcount": wordcount_spec,
    "sleep-sort": sleep_like_sort,
    "sleep-wordcount": sleep_like_wordcount,
    "grep": grep_spec,
}


def cmd_run(args) -> int:
    """Run one job on a configured simulated cluster."""
    spec = _WORKLOADS[args.workload]()
    if args.maps is not None:
        spec = spec.with_(n_maps=args.maps)
        spec.validate()

    expiry = (
        args.expiry_minutes * 60.0
        if args.expiry_minutes is not None
        else (1800.0 if args.scheduler == "moon" else 600.0)
    )
    sched = SchedulerConfig(
        kind=args.scheduler,
        tracker_expiry_interval=expiry,
        hybrid_aware=(args.scheduler == "moon" and not args.no_hybrid),
    )
    cfg = SystemConfig(
        cluster=ClusterConfig(
            n_volatile=args.volatile, n_dedicated=args.dedicated
        ),
        trace=TraceConfig(unavailability_rate=args.rate),
        scheduler=sched,
        seed=args.seed,
    )
    obs = _make_obs(args)
    system = (
        moon_system(cfg, obs=obs)
        if args.scheduler == "moon"
        else hadoop_system(cfg, obs=obs)
    )
    result = system.run_job(spec)
    print(result.summary())
    print(result.profile.row())
    _export_obs(obs)
    return 0 if result.succeeded else 1


# ======================================================================
# serve
# ======================================================================
#: Serve-flag defaults by mode: the autoscale demonstration needs a
#: regime where tier *capacity* (not the admission bound) limits the
#: SLO — a smaller volatile pool, bigger bursts, a wider in-flight
#: window and the deadline-aware queue.  Flags a user passes always
#: win; these only fill the blanks.
_SERVE_DEFAULTS = {
    #        flag            normal   autoscale
    "policy": ("fifo", "edf"),
    "jobs_per_hour": (12.0, 24.0),
    "burst_size": (6.0, 12.0),
    "catalog": ("mixed", "sleep"),
    "volatile": (30, 12),
    "max_in_flight": (4, 8),
    "queue_depth": (64, 128),
}


def _resolve_serve_defaults(args) -> None:
    """Fill unset (None) serve flags for the active mode, in place."""
    scaled = args.autoscale is not None
    for flag, (normal, autoscale) in _SERVE_DEFAULTS.items():
        if getattr(args, flag) is None:
            setattr(args, flag, autoscale if scaled else normal)


#: Overall summary columns (ServiceReport.summary_row) and the
#: autoscale cost / preemption extensions (cost_row / preempt_row),
#: shared by the serve and replay comparison tables.
_SUMMARY_COLS = ["done", "p50 s", "p95 s", "p99 s", "miss", "good/h",
                 "fairness"]
_COST_COLS = _SUMMARY_COLS + ["node-h", "tier", "ops"]
_PREEMPT_COLS = _SUMMARY_COLS + ["depri", "pauses"]
_DETECT_COLS = _SUMMARY_COLS + ["detect s", "false+", "requeues", "wasted s"]


def _reject_autoscale_policy_all(args) -> bool:
    """Shared serve/replay rule: autoscale compares provisioning
    policies on *one* queue policy."""
    if args.autoscale is not None and args.policy == "all":
        log.error(
            "--autoscale compares provisioning policies on one queue "
            "policy; pass a single --policy (e.g. edf), not 'all'"
        )
        return True
    return False


def _reject_preempt_all_conflicts(args) -> bool:
    """Shared serve/replay rule: `--preempt all` compares preemption
    modes on one queue policy with a fixed tier — one axis at a time."""
    if args.preempt == "all" and (
        args.policy == "all" or args.autoscale is not None
    ):
        log.error(
            "--preempt all compares preemption modes on one queue "
            "policy with a fixed dedicated tier; pass a single "
            "--policy (e.g. edf) and drop --autoscale"
        )
        return True
    return False


def _reject_detector_all_conflicts(args) -> bool:
    """Shared serve/replay rule: `--detector all` compares detection
    modes on one queue policy with everything else fixed."""
    if args.detector == "all" and (
        args.policy == "all"
        or args.autoscale is not None
        or args.preempt == "all"
    ):
        log.error(
            "--detector all compares detection modes on one queue "
            "policy with a fixed tier and preemption mode; pass a "
            "single --policy/--preempt and drop --autoscale"
        )
        return True
    return False


def _detector_modes(args):
    """The detection cells of one serve/replay run."""
    if args.detector == "all":
        return list(DETECTOR_MODES)
    return [args.detector]


def _detector_cfg(args, mode) -> DetectorConfig:
    return DetectorConfig(mode=mode, timeout_scale=args.detector_scale)


def _journal_cfg(args) -> DfsConfig:
    """DfsConfig from the --journal flags.  --namenode-crash implies
    the journal on (a crash without one is unrecoverable, and the
    flag's whole point is the failover)."""
    crash = getattr(args, "namenode_crash", None)
    if getattr(args, "journal", "off") != "on" and crash is None:
        return DfsConfig()
    return DfsConfig(
        journal=JournalConfig(
            enabled=True,
            checkpoint_interval=args.checkpoint_interval,
            crash_at=crash,
        )
    )


def _preempt_modes(args):
    """The preemption cells of one serve/replay run ([None] = the
    classic service without a controller)."""
    from ..service import PREEMPT_MODES

    if args.preempt == "all":
        return list(PREEMPT_MODES)
    return [args.preempt]


def _preempt_cfg(mode):
    from ..service import PreemptConfig

    return None if mode is None else PreemptConfig(mode=mode)


def _max_dedicated(args) -> int:
    """The autoscale ceiling when --max-dedicated is unset."""
    return (
        args.max_dedicated
        if args.max_dedicated is not None
        else max(2 * args.dedicated, args.min_dedicated + 1)
    )


def _serve_arrivals(args, system):
    """Build the arrival stream for one serve run (seed-deterministic)."""
    from ..service import (
        bursty_arrivals,
        default_catalog,
        diurnal_arrivals,
        poisson_arrivals,
        sleep_catalog,
    )

    catalog = (
        sleep_catalog() if args.catalog == "sleep"
        else default_catalog(block_mb=args.block_mb)
    )
    tenants = tuple(f"tenant-{i + 1}" for i in range(args.tenants))
    rng = system.sim.rng("service/arrivals")
    horizon = args.hours * 3600.0
    if args.pattern == "poisson":
        return poisson_arrivals(
            rng, args.jobs_per_hour, horizon, catalog, tenants
        )
    if args.pattern == "bursty":
        # Bursts of --burst-size jobs whose epoch rate preserves the
        # requested mean arrival rate exactly.
        return bursty_arrivals(
            rng,
            bursts_per_hour=args.jobs_per_hour / args.burst_size,
            burst_size_mean=args.burst_size,
            horizon=horizon,
            catalog=catalog,
            tenants=tenants,
        )
    return diurnal_arrivals(
        rng, args.jobs_per_hour, horizon, catalog, tenants
    )


def _serve_system(args, dedicated_primary: bool = False, obs=None,
                  detector=None):
    """A fresh system per serve cell: same seed -> same traces and the
    same arrival draws, so policies compete on identical streams."""
    from dataclasses import replace as _replace

    scheduler = moon_scheduler_config()
    if dedicated_primary:
        scheduler = _replace(scheduler, dedicated_primary=True)
    cfg = SystemConfig(
        cluster=ClusterConfig(
            n_volatile=args.volatile, n_dedicated=args.dedicated
        ),
        trace=TraceConfig(unavailability_rate=args.rate),
        scheduler=scheduler,
        detector=(detector if detector is not None else DetectorConfig()),
        dfs=_journal_cfg(args),
        seed=args.seed,
    )
    return moon_system(cfg, obs=obs)


def cmd_serve(args) -> int:
    """Serve a continuous job stream and report SLO metrics."""
    from ..plotting import table
    from ..service import QUEUE_POLICIES, ServiceConfig

    _resolve_serve_defaults(args)
    if args.pattern == "replay":
        # Fail fast (same check MoonService makes as a ConfigError):
        # serve synthesizes streams; a replay stream needs a trace file.
        log.error(
            "serve generates synthetic streams (poisson|bursty|diurnal) "
            "and cannot produce 'replay' entries; feed a workload trace "
            "with `repro replay --trace <file>` instead"
        )
        return 2
    if _reject_preempt_all_conflicts(args):
        return 2
    if _reject_detector_all_conflicts(args):
        return 2
    if args.checkpoint is not None or args.checkpoint_at is not None:
        if args.checkpoint is None or args.checkpoint_at is None:
            log.error(
                "--checkpoint PATH and --checkpoint-at T go together"
            )
            return 2
        if (
            args.policy == "all"
            or args.preempt == "all"
            or args.detector == "all"
            or args.autoscale is not None
        ):
            log.error(
                "--checkpoint snapshots one run; pass a single "
                "--policy/--preempt/--detector and drop --autoscale"
            )
            return 2
        return _serve_checkpointed(args)
    if args.autoscale is not None:
        return _serve_autoscaled(args)
    from ..service import render_preempt_events

    policies = (
        list(QUEUE_POLICIES) if args.policy == "all" else [args.policy]
    )
    preempt_modes = _preempt_modes(args)
    detector_modes = _detector_modes(args)
    summaries = []
    json_reports = []
    # Like --capture, the flight recorder observes the FIRST cell of a
    # comparison; later cells run with obs off.
    obs = _make_obs(args)
    obs_pending = obs
    for policy in policies:
        for mode in preempt_modes:
            for dmode in detector_modes:
                system = _serve_system(
                    args,
                    obs=obs_pending,
                    detector=_detector_cfg(args, dmode),
                )
                obs_pending = None
                arrivals = _serve_arrivals(args, system)
                service_cfg = ServiceConfig(
                    policy=policy,
                    max_in_flight=args.max_in_flight,
                    max_queue_depth=args.queue_depth,
                    tenant_quota=args.tenant_quota,
                    horizon=args.hours * 3600.0,
                    preempt=_preempt_cfg(mode),
                    admission_prices=args.admission_prices,
                )
                report = system.run_service(
                    arrivals, service_cfg, pattern=args.pattern
                )
                system.jobtracker.stop()
                system.namenode.stop()
                print(report.render())
                print()
                if report.preempt_events:
                    print(render_preempt_events(report.preempt_events))
                    print()
                if len(detector_modes) > 1:
                    summaries.append([dmode] + report.detector_row())
                elif len(preempt_modes) > 1:
                    summaries.append([mode] + report.preempt_row())
                else:
                    summaries.append([policy] + report.summary_row())
                json_reports.append(report.to_dict())
    if len(summaries) > 1:
        if len(detector_modes) > 1:
            headers = ["detector"] + _DETECT_COLS
            title = (
                f"detector comparison - {args.pattern} arrivals, "
                f"{policies[0]} queue"
            )
        elif len(preempt_modes) > 1:
            headers = ["preempt"] + _PREEMPT_COLS
            title = (
                f"preemption comparison - {args.pattern} arrivals, "
                f"{policies[0]} queue"
            )
        else:
            headers = ["policy"] + _SUMMARY_COLS
            title = f"queue-policy comparison - {args.pattern} arrivals"
        print(table(headers, summaries, title=title))
    if args.json_out is not None:
        _write_reports_json(args.json_out, json_reports)
    _export_obs(obs)
    return 0


def _serve_checkpointed(args) -> int:
    """One serve cell with a mid-run snapshot: advance to
    --checkpoint-at, persist the world, then keep serving to the usual
    report.  `repro resume` picks the snapshot up in a fresh process
    and produces the identical report."""
    from ..core import save_snapshot
    from ..service import MoonService, ServiceConfig

    obs = _make_obs(args)
    system = _serve_system(
        args, obs=obs, detector=_detector_cfg(args, args.detector)
    )
    arrivals = _serve_arrivals(args, system)
    service_cfg = ServiceConfig(
        policy=args.policy,
        max_in_flight=args.max_in_flight,
        max_queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        horizon=args.hours * 3600.0,
        preempt=_preempt_cfg(args.preempt),
        admission_prices=args.admission_prices,
    )
    service = MoonService(
        system, service_cfg, arrivals, pattern=args.pattern
    )
    service.advance(args.checkpoint_at)
    save_snapshot(service, args.checkpoint)
    print(
        f"checkpoint written at t={service.sim.now:.1f}s -> "
        f"{args.checkpoint} (resume with `repro resume "
        f"{args.checkpoint}`)"
    )
    service.advance(service_cfg.horizon + service_cfg.drain_limit)
    report = service.finalize()
    system.jobtracker.stop()
    system.namenode.stop()
    print(report.render())
    if args.json_out is not None:
        _write_reports_json(args.json_out, [report.to_dict()])
    _export_obs(obs)
    return 0


def cmd_sweep(args) -> int:
    """Fan a policy x scale x seed grid across processes and merge."""
    from ..errors import ConfigError
    from ..plotting import table
    from ..service import (
        QUEUE_POLICIES,
        SweepSpec,
        run_sweep,
        sweep_summary_rows,
    )

    try:
        policies = (
            tuple(QUEUE_POLICIES)
            if args.policies == "all"
            else tuple(p.strip() for p in args.policies.split(","))
        )
        spec = SweepSpec(
            policies=policies,
            scales=tuple(
                float(s) for s in args.scales.split(",") if s.strip()
            ),
            seeds=tuple(
                int(s) for s in args.seeds.split(",") if s.strip()
            ),
            jobs_per_hour=args.jobs_per_hour,
            hours=args.hours,
            n_volatile=args.volatile,
            n_dedicated=args.dedicated,
            unavailability_rate=args.rate,
            catalog=args.catalog,
            max_in_flight=args.max_in_flight,
            max_queue_depth=args.queue_depth,
            tenants=args.tenants,
        )
        spec.validate()
    except (ConfigError, ValueError) as exc:
        log.error("bad sweep grid: %s", exc)
        return 2
    n_cells = (
        len(spec.policies) * len(spec.scales) * len(spec.seeds)
    )
    log.info("sweeping %d cell(s) on %d process(es)", n_cells, args.procs)
    result = run_sweep(spec, procs=args.procs)
    print(
        table(
            ["policy", "scale", "seed", "done", "p50 s", "p95 s",
             "miss", "good/h"],
            sweep_summary_rows(result),
            title=(
                f"sweep - {n_cells} cells, "
                f"{spec.jobs_per_hour:g} jobs/h base, "
                f"{spec.hours:g}h horizon"
            ),
        )
    )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        log.info("wrote %s", args.json_out)
    return 0


def cmd_resume(args) -> int:
    """Continue a serve checkpoint: to drain (report), or to --until
    (re-checkpointed)."""
    from ..core import load_snapshot, save_snapshot
    from ..errors import SnapshotError

    if args.until is not None and args.checkpoint is None:
        log.error(
            "--until advances the world without finishing it; the "
            "progress must be persisted — add --checkpoint PATH"
        )
        return 2
    try:
        service = load_snapshot(args.snapshot)
    except (SnapshotError, OSError) as exc:
        log.error("cannot load %s: %s", args.snapshot, exc)
        return 2
    cfg = service.config
    if args.until is not None:
        drained = service.advance(args.until)
        save_snapshot(service, args.checkpoint)
        print(
            f"advanced to t={service.sim.now:.1f}s "
            f"({'drained' if drained else 'still serving'}); "
            f"checkpoint written -> {args.checkpoint}"
        )
        return 0
    service.advance(cfg.horizon + cfg.drain_limit)
    report = service.finalize()
    service.system.jobtracker.stop()
    service.system.namenode.stop()
    if args.checkpoint is not None:
        save_snapshot(service, args.checkpoint)
        print(f"final checkpoint written -> {args.checkpoint}")
    print(report.render())
    if args.json_out is not None:
        _write_reports_json(args.json_out, [report.to_dict()])
    return 0


def _serve_autoscaled(args) -> int:
    """Serve the same stream under one or all autoscale policies."""
    from ..plotting import table
    from ..service import (
        AUTOSCALE_POLICIES,
        AutoscaleConfig,
        ServiceConfig,
        render_decisions,
    )

    if _reject_autoscale_policy_all(args):
        return 2
    scale_policies = (
        list(AUTOSCALE_POLICIES)
        if args.autoscale == "all"
        else [args.autoscale]
    )
    max_dedicated = _max_dedicated(args)
    summaries = []
    json_reports = []
    obs = _make_obs(args)
    obs_pending = obs
    for scale_policy in scale_policies:
        system = _serve_system(
            args,
            dedicated_primary=True,
            obs=obs_pending,
            detector=_detector_cfg(args, args.detector),
        )
        obs_pending = None
        arrivals = _serve_arrivals(args, system)
        service_cfg = ServiceConfig(
            policy=args.policy,
            max_in_flight=args.max_in_flight,
            max_queue_depth=args.queue_depth,
            tenant_quota=args.tenant_quota,
            horizon=args.hours * 3600.0,
            autoscale=AutoscaleConfig(
                policy=scale_policy,
                interval=args.autoscale_interval,
                min_dedicated=args.min_dedicated,
                max_dedicated=max_dedicated,
            ),
            preempt=_preempt_cfg(args.preempt),
            admission_prices=args.admission_prices,
        )
        report = system.run_service(
            arrivals, service_cfg, pattern=args.pattern
        )
        system.jobtracker.stop()
        system.namenode.stop()
        print(report.render())
        print()
        if report.scale_events:
            print(render_decisions(report.scale_events))
            print()
        summaries.append([scale_policy] + report.cost_row())
        json_reports.append(report.to_dict())
    if len(summaries) > 1:
        print(
            table(
                ["autoscale"] + _COST_COLS,
                summaries,
                title=(
                    f"autoscale-policy comparison - {args.pattern} "
                    f"arrivals, {args.policy} queue "
                    f"(D{args.dedicated}, bounds "
                    f"{args.min_dedicated}..{max_dedicated})"
                ),
            )
        )
    if args.json_out is not None:
        _write_reports_json(args.json_out, json_reports)
    _export_obs(obs)
    return 0


# ======================================================================
# replay
# ======================================================================
def _replay_service_config(
    args, policy, autoscale_cfg, capture, trace, preempt_mode=None
):
    """One replay cell's ServiceConfig (horizon = the trace's)."""
    from ..service import ServiceConfig

    return ServiceConfig(
        policy=policy,
        max_in_flight=args.max_in_flight,
        max_queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        horizon=trace.horizon,
        drain_limit=args.drain_hours * 3600.0,
        autoscale=autoscale_cfg,
        capture=capture,
        trace_name=trace.name,
        preempt=_preempt_cfg(preempt_mode),
        admission_prices=args.admission_prices,
    )


def cmd_replay(args) -> int:
    """Replay a workload-trace file through the service layer."""
    from ..errors import ReproError
    from ..plotting import table
    from ..service import (
        AUTOSCALE_POLICIES,
        QUEUE_POLICIES,
        AutoscaleConfig,
        MoonService,
        render_decisions,
        render_preempt_events,
    )
    from ..workload_traces import (
        CalibrationConfig,
        SynthesisConfig,
        load_workload_trace,
        save_workload_json,
        synthesize,
        trace_arrivals,
    )

    if _reject_autoscale_policy_all(args):
        return 2
    if _reject_preempt_all_conflicts(args):
        return 2
    if _reject_detector_all_conflicts(args):
        return 2
    try:
        trace = load_workload_trace(args.trace)
        if args.scale is not None or args.stretch is not None:
            trace = synthesize(
                trace,
                np.random.default_rng(args.seed),
                SynthesisConfig(
                    load_factor=(
                        1.0 if args.scale is None else args.scale
                    ),
                    horizon_factor=(
                        1.0 if args.stretch is None else args.stretch
                    ),
                ),
            )
        calibration = CalibrationConfig(
            max_maps=args.max_maps,
            max_reduces=args.max_reduces,
            time_scale=args.time_scale,
        )
        # Calibrated once: a bad trace fails before any cell runs, and
        # the frozen JobArrival list is safely shared across cells.
        arrivals = trace_arrivals(trace, calibration)
    except (ReproError, OSError) as exc:
        log.error("replay: %s", exc)
        return 2
    print(trace.summary().render())
    print()

    scale_policies = (
        list(AUTOSCALE_POLICIES) if args.autoscale == "all"
        else [args.autoscale] if args.autoscale is not None
        else [None]
    )
    queue_policies = (
        list(QUEUE_POLICIES) if args.policy == "all" else [args.policy]
    )
    max_dedicated = _max_dedicated(args)
    preempt_modes = _preempt_modes(args)
    detector_modes = _detector_modes(args)
    cells = [
        (policy, scale_policy, mode, dmode)
        for scale_policy in scale_policies
        for policy in queue_policies
        for mode in preempt_modes
        for dmode in detector_modes
    ]
    summaries = []
    json_reports = []
    captured = None
    # As with --capture, the flight recorder rides the FIRST cell only.
    obs = _make_obs(args)
    obs_pending = obs
    for policy, scale_policy, mode, dmode in cells:
        autoscale_cfg = (
            None if scale_policy is None
            else AutoscaleConfig(
                policy=scale_policy,
                interval=args.autoscale_interval,
                min_dedicated=args.min_dedicated,
                max_dedicated=max_dedicated,
            )
        )
        system = _serve_system(
            args,
            dedicated_primary=scale_policy is not None,
            obs=obs_pending,
            detector=_detector_cfg(args, dmode),
        )
        obs_pending = None
        service = MoonService(
            system,
            _replay_service_config(
                args, policy, autoscale_cfg,
                capture=(args.capture is not None and captured is None),
                trace=trace,
                preempt_mode=mode,
            ),
            arrivals,
            pattern=trace.pattern,
        )
        report = service.run()
        if service.captured_trace is not None:
            captured = service.captured_trace
        system.jobtracker.stop()
        system.namenode.stop()
        print(report.render())
        print()
        if report.scale_events:
            print(render_decisions(report.scale_events))
            print()
        if report.preempt_events:
            print(render_preempt_events(report.preempt_events))
            print()
        if scale_policy is not None:
            summaries.append([scale_policy, policy] + report.cost_row())
        elif len(preempt_modes) > 1:
            summaries.append([mode] + report.preempt_row())
        elif len(detector_modes) > 1:
            summaries.append([dmode] + report.detector_row())
        else:
            summaries.append([policy] + report.summary_row())
        json_reports.append(report.to_dict())
    if len(summaries) > 1:
        if scale_policies != [None]:
            headers = ["autoscale", "policy"] + _COST_COLS
            title = (
                f"autoscale-policy comparison - trace {trace.name}, "
                f"{queue_policies[0]} queue (D{args.dedicated}, bounds "
                f"{args.min_dedicated}..{max_dedicated})"
            )
        elif len(preempt_modes) > 1:
            headers = ["preempt"] + _PREEMPT_COLS
            title = (
                f"preemption comparison - trace {trace.name}, "
                f"{queue_policies[0]} queue"
            )
        elif len(detector_modes) > 1:
            headers = ["detector"] + _DETECT_COLS
            title = (
                f"detector comparison - trace {trace.name}, "
                f"{queue_policies[0]} queue"
            )
        else:
            headers = ["policy"] + _SUMMARY_COLS
            title = f"queue-policy comparison - replayed trace {trace.name}"
        print(table(headers, summaries, title=title))
    if args.json_out is not None:
        _write_reports_json(args.json_out, json_reports)
    _export_obs(obs)
    if args.capture is not None and captured is not None:
        try:
            save_workload_json(args.capture, captured)
        except OSError as exc:
            log.error("replay: cannot write capture: %s", exc)
            return 2
        log.info("captured %d arrivals -> %s", len(captured), args.capture)
    return 0


# ======================================================================
# explain / diff
# ======================================================================
def _explain_replay(args):
    """Replay one cell with an in-memory tracer; return (explanation,
    obs) or (None, None) after logging the usage error."""
    from ..errors import ReproError
    from ..obs import Observability, ObsConfig
    from ..obs.explain import explain_tracer
    from ..service import MoonService
    from ..workload_traces import (
        CalibrationConfig,
        SynthesisConfig,
        load_workload_trace,
        synthesize,
        trace_arrivals,
    )

    try:
        trace = load_workload_trace(args.trace)
        if args.scale is not None:
            trace = synthesize(
                trace,
                np.random.default_rng(args.seed),
                SynthesisConfig(load_factor=args.scale),
            )
        arrivals = trace_arrivals(trace, CalibrationConfig())
    except (ReproError, OSError) as exc:
        log.error("explain: %s", exc)
        return None, None
    # The recorder is the whole point here: armed unconditionally,
    # with any --trace-out/--metrics-out files riding along.
    obs = Observability(
        ObsConfig(
            trace=True,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            max_trace_events=args.max_trace_events,
        )
    )
    system = _serve_system(
        args, obs=obs, detector=_detector_cfg(args, args.detector)
    )
    service = MoonService(
        system,
        _replay_service_config(
            args, args.policy, None,
            capture=False, trace=trace, preempt_mode=args.preempt,
        ),
        arrivals,
        pattern=trace.pattern,
    )
    service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return explain_tracer(obs.tracer), obs


def cmd_explain(args) -> int:
    """Causal blame attribution: why was this job slow?"""
    from ..obs.explain import explain_trace_file

    obs = None
    if args.from_trace is not None:
        try:
            explanation = explain_trace_file(args.from_trace)
        except (OSError, ValueError) as exc:
            log.error("explain: %s", exc)
            return 2
    else:
        if args.trace is None:
            log.error(
                "explain: pass --trace <workload file> to replay, or "
                "--from <trace-out JSON> to explain a recorded run"
            )
            return 2
        if args.preempt == "all" or args.detector == "all":
            log.error(
                "explain: attributes one cell; pass a single "
                "--preempt/--detector mode, not 'all'"
            )
            return 2
        explanation, obs = _explain_replay(args)
        if explanation is None:
            return 2
    if not explanation.jobs:
        log.error("explain: the trace contains no finished jobs")
        return 2

    print(explanation.render_aggregates())
    print()
    if args.job is not None:
        blame = explanation.job(args.job)
        if blame is None:
            log.error("explain: no finished job with seq %d", args.job)
            return 2
        selected, what = [blame], f"job seq{args.job}"
    elif args.tenant is not None:
        selected = explanation.tenant_jobs(args.tenant)
        if not selected:
            log.error(
                "explain: tenant %r finished no jobs", args.tenant
            )
            return 2
        what = f"tenant {args.tenant} ({len(selected)} job(s))"
    else:
        selected = explanation.worst(args.worst)
        what = f"{len(selected)} slowest job(s)"
    print(f"critical paths - {what}:")
    print()
    print("\n\n".join(explanation.render_job(b) for b in selected))
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(explanation.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("wrote explanation to %s", args.json_out)
    _export_obs(obs)
    return 0


def cmd_diff(args) -> int:
    """First causal divergence between two run artifacts."""
    from ..obs.explain import diff_files

    try:
        kind, divergence, compared = diff_files(args.a, args.b)
    except (OSError, ValueError) as exc:
        log.error("diff: %s", exc)
        return 2
    unit = "trace event(s)" if kind == "trace" else "metric key(s)"
    if divergence is None:
        print(f"no divergence ({compared} {unit} compared)")
        return 0
    print(divergence.render())
    return 1


# ======================================================================
# trace
# ======================================================================
def cmd_trace(args) -> int:
    """Generate or summarise availability trace files."""
    if args.trace_command == "generate":
        return _trace_generate(args)
    return _trace_stats(args)


def _trace_generate(args) -> int:
    rng = np.random.default_rng(args.seed)
    base = TraceConfig(
        unavailability_rate=args.rate, distribution=args.distribution
    )
    if args.correlated:
        traces = generate_correlated_traces(
            CorrelatedConfig(base=base), args.nodes, rng
        )
    else:
        traces = [generate_trace(base, rng) for _ in range(args.nodes)]
    if str(args.output).endswith(".json"):
        save_traces_json(args.output, traces)
    else:
        save_traces_csv(args.output, traces)
    stats = compute_stats(traces)
    log.info("wrote %d traces to %s", len(traces), args.output)
    print(stats)
    return 0


def _trace_stats(args) -> int:
    if str(args.input).endswith(".json"):
        traces = load_traces_json(args.input)
    else:
        traces = load_traces_csv(args.input)
    stats = compute_stats(traces)
    print(stats)
    lengths = np.concatenate(
        [t.outage_lengths() for t in traces if len(t)] or [np.empty(0)]
    )
    if args.histogram and lengths.size:
        print()
        print(histogram(lengths.tolist(), bins=12,
                        title="outage lengths (s)"))
    if getattr(args, "fit", False) and lengths.size >= 3:
        from ..traces import fit_outages, fit_report

        print()
        print(fit_report(fit_outages(lengths)))
    return 0


# ======================================================================
# availability / estimate
# ======================================================================
def cmd_availability(args) -> int:
    """Replication-strategy arithmetic (paper Sections I/III)."""
    print(strategy_table(args.p, args.goal, p_dedicated=args.p_dedicated))
    return 0


def cmd_validate(args) -> int:
    """Cross-check the simulator against the analytical models."""
    from ..experiments import validate

    points = validate.run_validation()
    print(validate.report(points))
    return 0 if validate.within_band(points) else 1


def cmd_estimate(args) -> int:
    """Analytical makespan estimate for a workload."""
    spec = sort_spec() if args.workload == "sort" else wordcount_spec()
    kill = (
        args.expiry_minutes * 60.0
        if args.expiry_minutes is not None
        else float("inf")
    )
    est = estimate_makespan(spec, args.nodes, args.rate, kill_after=kill)
    print(
        bar_chart(
            [args.workload],
            {
                "map": [est.map_time],
                "shuffle": [est.shuffle_time],
                "reduce": [est.reduce_time],
            },
            title=(
                f"analytical makespan, {args.nodes} nodes at "
                f"p={args.rate}: {est.total:,.0f} s total"
            ),
            unit="s",
        )
    )
    return 0


# ======================================================================
# perf
# ======================================================================
def cmd_perf(args) -> int:
    """Time macro-scenarios; write BENCH_PR2.json; gate regressions."""
    from ..perf import run_perf

    return run_perf(
        names=args.scenario or None,
        repeat=args.repeat,
        check=args.check,
        update_baseline=args.update_baseline,
        output=args.output,
        baseline_path=args.baseline,
    )


# ======================================================================
# profile
# ======================================================================
def cmd_profile(args) -> int:
    """Profile the dispatch loop over perf scenarios; print the hot
    table (per-handler count, cumulative wall-clock, share)."""
    from ..obs import Observability, ObsConfig, default_observability
    from ..obs.profile import PROFILE_SCHEMA_VERSION
    from ..perf import SCENARIOS

    names = args.scenario or ["fig6"]
    obs = Observability(
        ObsConfig(
            trace=args.trace_out is not None,
            profile=True,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            max_trace_events=args.max_trace_events,
        )
    )
    # Scenarios construct their systems internally; the process-wide
    # default hands every Simulation they build this recorder.
    with default_observability(obs):
        for name in names:
            log.info("profiling scenario %s", name)
            work = SCENARIOS[name].run()
            print(
                f"[profile] {name}: {SCENARIOS[name].description} "
                f"({int(work.get('events', 0))} events)"
            )
    print()
    print(obs.profiler.table(top=args.top))
    if args.json_out is not None:
        payload = {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "scenarios": names,
            "profile": obs.profiler.to_dict(),
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        log.info("wrote profile to %s", args.json_out)
    _export_obs(obs)
    return 0
