"""Transfer-model interface shared by the FIFO and fair-share networks.

Both models expose the same operations to the DFS and MapReduce layers:

* ``transfer(src, dst, mb, ...)`` — a network copy between two nodes
  (also charged to both nodes' disks implicitly via channel choice),
* ``disk_io(node, mb, ...)`` — a purely local read or write,
* ``node_down`` / ``node_up`` — availability transitions that abort
  in-flight work touching the node (the VM-pause semantics of III).

Completion and failure are delivered via callbacks on the simulated
clock, never synchronously, so callers can issue I/O from within other
callbacks without reentrancy surprises.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

from ..errors import NetworkError
from ..simulation import Simulation

#: Channels a node offers. NIC_IN/NIC_OUT model full-duplex Ethernet.
DISK = "disk"
NIC_IN = "nic_in"
NIC_OUT = "nic_out"

OnComplete = Callable[["Transfer"], None]
OnFail = Callable[["Transfer"], None]


class Transfer:
    """Handle for one in-flight copy."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "size_mb",
        "kind",
        "submitted_at",
        "finished_at",
        "state",
        "on_complete",
        "on_fail",
        "_event",
    )

    _ids = itertools.count()

    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"

    def __init__(
        self,
        src: Optional[int],
        dst: Optional[int],
        size_mb: float,
        kind: str,
        now: float,
        on_complete: Optional[OnComplete],
        on_fail: Optional[OnFail],
    ) -> None:
        self.id = next(Transfer._ids)
        self.src = src
        self.dst = dst
        self.size_mb = size_mb
        self.kind = kind
        self.submitted_at = now
        self.finished_at: Optional[float] = None
        self.state = Transfer.PENDING
        self.on_complete = on_complete
        self.on_fail = on_fail
        self._event = None

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def involves(self, node_id: int) -> bool:
        return node_id in (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transfer#{self.id} {self.kind} {self.src}->{self.dst} "
            f"{self.size_mb:.2f}MB {self.state}>"
        )


class NodePorts:
    """Per-node capacities in MB/s."""

    __slots__ = ("disk_mbps", "nic_mbps", "up")

    def __init__(self, disk_mbps: float, nic_mbps: float) -> None:
        if disk_mbps <= 0 or nic_mbps <= 0:
            raise NetworkError("capacities must be positive")
        self.disk_mbps = disk_mbps
        self.nic_mbps = nic_mbps
        self.up = True


class NetworkModel(ABC):
    """Common bookkeeping: node registry, byte counters, callbacks."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._ports: Dict[int, NodePorts] = {}
        #: Ids of decommissioned nodes.  Callers racing a decommission
        #: (a write pipeline that picked its targets before the node
        #: left) probe these via :meth:`is_up`; a never-registered id
        #: is still a programming error.
        self._retired: set = set()
        #: Cumulative MB served per node (reads+writes+net), used by the
        #: throttling monitor to estimate consumed I/O bandwidth.
        self.mb_served: Dict[int, float] = {}

    # -- registry -------------------------------------------------------
    def register_node(self, node_id: int, disk_mbps: float, nic_mbps: float) -> None:
        if node_id in self._ports:
            raise NetworkError(f"node {node_id} already registered")
        self._ports[node_id] = NodePorts(disk_mbps, nic_mbps)
        self.mb_served[node_id] = 0.0
        self._retired.discard(node_id)

    def unregister_node(self, node_id: int) -> None:
        """Remove a decommissioned node: abort whatever still touches it
        and free its id for reuse by a later provision."""
        if node_id not in self._ports:
            raise NetworkError(f"unknown node {node_id}")
        self._abort_transfers(node_id)
        del self._ports[node_id]
        self.mb_served.pop(node_id, None)
        self._retired.add(node_id)

    def ports(self, node_id: int) -> NodePorts:
        try:
            return self._ports[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    def is_up(self, node_id: int) -> bool:
        # A decommissioned node has no ports at all: callers racing the
        # decommission (e.g. a DFS write pipeline that picked its
        # targets before the node left) must see it as down and take
        # their clean failure path, not crash on the lookup.  An id
        # that was never registered still raises: that is a caller bug,
        # not a race.
        if node_id in self._retired:
            return False
        port = self._ports.get(node_id)
        if port is None:
            raise NetworkError(f"unknown node {node_id}")
        return port.up

    # -- availability ----------------------------------------------------
    def node_down(self, node_id: int) -> None:
        self.ports(node_id).up = False
        self._abort_transfers(node_id)

    def node_up(self, node_id: int) -> None:
        self.ports(node_id).up = True

    # -- operations -------------------------------------------------------
    @abstractmethod
    def transfer(
        self,
        src: int,
        dst: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "net",
    ) -> Transfer:
        """Copy ``size_mb`` from ``src`` to ``dst``."""

    @abstractmethod
    def disk_io(
        self,
        node_id: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "disk",
    ) -> Transfer:
        """Local disk read or write of ``size_mb`` on ``node_id``."""

    @abstractmethod
    def _abort_transfers(self, node_id: int) -> None:
        """Fail all in-flight transfers involving ``node_id``."""

    @abstractmethod
    def active_transfers(self) -> int:
        """Number of in-flight transfers (tests/diagnostics)."""

    # -- shared helpers ---------------------------------------------------
    def _finish(self, t: Transfer) -> None:
        if t.state != Transfer.PENDING:
            return
        t.state = Transfer.DONE
        t.finished_at = self.sim.now
        for node in (t.src, t.dst):
            if node is not None:
                self.mb_served[node] = self.mb_served.get(node, 0.0) + t.size_mb
        if t.on_complete is not None:
            t.on_complete(t)

    def _fail(self, t: Transfer) -> None:
        if t.state != Transfer.PENDING:
            return
        t.state = Transfer.FAILED
        t.finished_at = self.sim.now
        if t._event is not None:
            t._event.cancel()
            t._event = None
        if t.on_fail is not None:
            t.on_fail(t)
