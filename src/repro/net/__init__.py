"""Network + disk transfer models (S3).

Owns every byte that moves: per-node disk/NIC-in/NIC-out capacities,
the default FIFO store-and-forward model (:class:`FifoNetwork`, O(1)
per transfer) and the max-min fair-share alternative
(:class:`FairShareNetwork`, incremental water-filling) used by the
network ablation.  Node availability hooks abort in-flight transfers
on suspension — the VM-pause semantics of paper Section III — and the
register/unregister surface tracks dynamic cluster membership.

The saturation behaviour at the few dedicated DataNodes that MOON's
Algorithm 1 observes (paper Section IV-A, Fig. 3) emerges here; see
docs/ARCHITECTURE.md#network--disk.
"""

from .base import DISK, NIC_IN, NIC_OUT, NetworkModel, Transfer
from .fairshare import FairShareNetwork
from .fifo import FifoNetwork

__all__ = [
    "NetworkModel",
    "Transfer",
    "FifoNetwork",
    "FairShareNetwork",
    "DISK",
    "NIC_IN",
    "NIC_OUT",
]


def make_network(kind: str, sim, **kwargs) -> NetworkModel:
    """Factory used by :mod:`repro.core` (``kind`` from SystemConfig)."""
    if kind == "fifo":
        return FifoNetwork(sim, **kwargs)
    if kind == "fairshare":
        return FairShareNetwork(sim, **kwargs)
    raise ValueError(f"unknown network model {kind!r}")
