"""Network + disk transfer models (S3)."""

from .base import DISK, NIC_IN, NIC_OUT, NetworkModel, Transfer
from .fairshare import FairShareNetwork
from .fifo import FifoNetwork

__all__ = [
    "NetworkModel",
    "Transfer",
    "FifoNetwork",
    "FairShareNetwork",
    "DISK",
    "NIC_IN",
    "NIC_OUT",
]


def make_network(kind: str, sim, **kwargs) -> NetworkModel:
    """Factory used by :mod:`repro.core` (``kind`` from SystemConfig)."""
    if kind == "fifo":
        return FifoNetwork(sim, **kwargs)
    if kind == "fairshare":
        return FairShareNetwork(sim, **kwargs)
    raise ValueError(f"unknown network model {kind!r}")
