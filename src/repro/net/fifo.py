"""FIFO-queue transfer model (default; fast).

Every node exposes three service channels — disk, NIC-in, NIC-out —
each a FIFO queue draining at the channel capacity.  A network transfer
occupies the source's NIC-out (and disk, for the read) and the
destination's NIC-in (and disk, for the write); its completion time is
the later of the two endpoints' queue drain times.  This is the classic
store-and-forward approximation: it is O(1) per transfer and reproduces
the saturation behaviour central to the paper (queues at the few
dedicated DataNodes grow when many volatile clients write to them,
which Algorithm 1 then observes as a bandwidth plateau).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import NetworkError
from ..simulation import PRIORITY_TRANSFER, Simulation
from .base import DISK, NIC_IN, NIC_OUT, NetworkModel, OnComplete, OnFail, Transfer


class _Channel:
    """One FIFO service queue with capacity in MB/s."""

    __slots__ = ("capacity", "busy_until")

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity
        self.busy_until = 0.0

    def enqueue(self, now: float, size_mb: float) -> float:
        """Append a job; return its completion time."""
        start = max(now, self.busy_until)
        self.busy_until = start + size_mb / self.capacity
        return self.busy_until

    def backlog(self, now: float) -> float:
        """Seconds of queued work remaining."""
        return max(0.0, self.busy_until - now)


class FifoNetwork(NetworkModel):
    """See module docstring."""

    def __init__(self, sim: Simulation, disk_fraction: float = 1.0) -> None:
        """``disk_fraction`` scales how much of a network transfer is also
        charged to each endpoint's disk (1.0 = full store-and-forward)."""
        super().__init__(sim)
        if not 0.0 <= disk_fraction <= 1.0:
            raise NetworkError("disk_fraction must be in [0, 1]")
        self._disk_fraction = disk_fraction
        self._channels: Dict[int, Dict[str, _Channel]] = {}
        # Insertion-ordered on purpose: abort sweeps iterate this, and
        # their order feeds the event queue — an id-hashed set would
        # vary across processes and break golden stability.
        self._inflight: Dict[Transfer, None] = {}

    # ------------------------------------------------------------------
    def register_node(self, node_id: int, disk_mbps: float, nic_mbps: float) -> None:
        super().register_node(node_id, disk_mbps, nic_mbps)
        self._channels[node_id] = {
            DISK: _Channel(disk_mbps),
            NIC_IN: _Channel(nic_mbps),
            NIC_OUT: _Channel(nic_mbps),
        }

    def unregister_node(self, node_id: int) -> None:
        super().unregister_node(node_id)
        del self._channels[node_id]

    # ------------------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "net",
    ) -> Transfer:
        self._check_size(size_mb)
        now = self.sim.now
        t = Transfer(src, dst, size_mb, kind, now, on_complete, on_fail)
        if not self.is_up(src) or not self.is_up(dst):
            self._schedule_failure(t)
            return t
        disk_mb = size_mb * self._disk_fraction
        src_ch = self._channels[src]
        dst_ch = self._channels[dst]
        src_done = src_ch[NIC_OUT].enqueue(now, size_mb)
        dst_done = dst_ch[NIC_IN].enqueue(now, size_mb)
        if disk_mb > 0.0:
            src_done = max(src_done, src_ch[DISK].enqueue(now, disk_mb))
            dst_done = max(dst_done, dst_ch[DISK].enqueue(now, disk_mb))
        self._commit(t, max(src_done, dst_done))
        return t

    def disk_io(
        self,
        node_id: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "disk",
    ) -> Transfer:
        self._check_size(size_mb)
        t = Transfer(
            node_id, node_id, size_mb, kind, self.sim.now, on_complete, on_fail
        )
        if not self.is_up(node_id):
            self._schedule_failure(t)
            return t
        done = self._channels[node_id][DISK].enqueue(self.sim.now, size_mb)
        self._commit(t, done)
        return t

    # ------------------------------------------------------------------
    def backlog_seconds(self, node_id: int, channel: str = DISK) -> float:
        """Seconds of queued work on a node channel (saturation probe)."""
        return self._channels[node_id][channel].backlog(self.sim.now)

    def active_transfers(self) -> int:
        return len(self._inflight)

    # ------------------------------------------------------------------
    def _check_size(self, size_mb: float) -> None:
        if size_mb < 0:
            raise NetworkError("negative transfer size")

    def _commit(self, t: Transfer, done_time: float) -> None:
        self._inflight[t] = None
        t._event = self.sim.call_at(
            done_time, self._complete, t, priority=PRIORITY_TRANSFER
        )

    def _complete(self, t: Transfer) -> None:
        self._inflight.pop(t, None)
        self._finish(t)

    def _schedule_failure(self, t: Transfer) -> None:
        # Deliver asynchronously so submitters never re-enter themselves.
        self.sim.call_after(0.0, self._fail, t, priority=PRIORITY_TRANSFER)

    def _abort_transfers(self, node_id: int) -> None:
        doomed = [t for t in self._inflight if t.involves(node_id)]
        for t in doomed:
            self._inflight.pop(t, None)
            self._fail(t)
