"""Max-min fair-share flow model (ablation alternative to FIFO).

Each in-flight transfer is a *flow* demanding bandwidth on its source
NIC-out, destination NIC-in and both disks.  Rates are assigned by
progressive filling (classic max-min fairness), recomputed whenever the
flow set changes.  More faithful to TCP sharing than FIFO queues —
used by ``benchmarks/test_ablation_network.py`` to quantify the
modelling gap.

**Incremental recomputation.**  A max-min allocation decomposes over
the connected components of the flow/channel bipartite graph: flows
that share no channel (even transitively) cannot influence each
other's rates.  A flow starting or finishing therefore only perturbs
its own component, which this model finds by BFS over persistent
channel-user maps and re-fills in isolation — O(component) per change
instead of rebuilding all flow/channel state.  Within a component the
fill visits channels in the same relative order as a full rebuild
would, so the incremental allocation is *bitwise* identical to the
full recompute (``incremental=False`` keeps the full path alive as the
oracle for the equivalence property test).

Everything that iterates flows walks insertion-ordered dicts, never
id-hashed sets: completion and abort order feed the event queue, and
must not vary across processes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NetworkError
from ..simulation import PRIORITY_TRANSFER, Simulation
from .base import DISK, NIC_IN, NIC_OUT, NetworkModel, OnComplete, OnFail, Transfer

ChannelKey = Tuple[int, str]


class _Flow:
    __slots__ = ("transfer", "remaining_mb", "rate", "channels", "seq")

    def __init__(
        self, transfer: Transfer, channels: List[ChannelKey]
    ) -> None:
        self.transfer = transfer
        self.remaining_mb = transfer.size_mb
        self.rate = 0.0
        self.channels = channels  # [(node_id, channel_name), ...]
        self.seq = 0  # admission order, set by the network on add


class FairShareNetwork(NetworkModel):
    """See module docstring."""

    def __init__(
        self,
        sim: Simulation,
        disk_fraction: float = 1.0,
        incremental: bool = True,
    ) -> None:
        super().__init__(sim)
        if not 0.0 <= disk_fraction <= 1.0:
            raise NetworkError("disk_fraction must be in [0, 1]")
        self._disk_fraction = disk_fraction
        self._incremental = incremental
        self._flows: Dict[_Flow, None] = {}
        #: channel -> its current flows (insertion-ordered).
        self._users: Dict[ChannelKey, Dict[_Flow, None]] = {}
        #: channel -> capacity in MB/s (ports resolved once per channel).
        self._cap: Dict[ChannelKey, float] = {}
        self._last_update = 0.0
        self._next_event = None
        self._flow_seq = 0
        # Same-instant changes batch into one refill: no simulated time
        # passes between them, so intermediate allocations could never
        # integrate into transferred bytes anyway.  ``_dirty`` channels
        # accumulate until the flush event (scheduled at the current
        # timestamp) recomputes rates once for the final flow set.
        self._dirty_channels: List[ChannelKey] = []
        self._flush_event = None
        # Flight-recorder counters (registry adds only; no sim reads).
        metrics = sim.obs.metrics
        self._m_flows = metrics.counter("net/flows")
        self._m_water_fills = metrics.counter("net/water_fills")

    # ------------------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "net",
    ) -> Transfer:
        if size_mb < 0:
            raise NetworkError("negative transfer size")
        t = Transfer(src, dst, size_mb, kind, self.sim.now, on_complete, on_fail)
        if not self.is_up(src) or not self.is_up(dst):
            self.sim.call_after(0.0, self._fail, t, priority=PRIORITY_TRANSFER)
            return t
        channels = [(src, NIC_OUT), (dst, NIC_IN)]
        if self._disk_fraction > 0:
            channels += [(src, DISK), (dst, DISK)]
        self._add_flow(_Flow(t, channels))
        return t

    def disk_io(
        self,
        node_id: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "disk",
    ) -> Transfer:
        if size_mb < 0:
            raise NetworkError("negative transfer size")
        t = Transfer(
            node_id, node_id, size_mb, kind, self.sim.now, on_complete, on_fail
        )
        if not self.is_up(node_id):
            self.sim.call_after(0.0, self._fail, t, priority=PRIORITY_TRANSFER)
            return t
        self._add_flow(_Flow(t, [(node_id, DISK)]))
        return t

    def active_transfers(self) -> int:
        return len(self._flows)

    def flow_rate(self, transfer: Transfer) -> float:
        """Current assigned rate in MB/s (tests)."""
        self._ensure_fresh()
        for f in self._flows:
            if f.transfer is transfer:
                return f.rate
        return 0.0

    # ------------------------------------------------------------------
    def unregister_node(self, node_id: int) -> None:
        super().unregister_node(node_id)  # aborts the node's flows
        # Drop cached channel capacities: a later provision may reuse
        # the id with a different NodeSpec.
        for name in (DISK, NIC_IN, NIC_OUT):
            self._cap.pop((node_id, name), None)
            self._users.pop((node_id, name), None)

    # ------------------------------------------------------------------
    def _add_flow(self, flow: _Flow) -> None:
        self._advance()
        if flow.remaining_mb <= 0.0:
            # Zero-byte transfer: complete immediately (asynchronously).
            self.sim.call_after(
                0.0, self._finish, flow.transfer, priority=PRIORITY_TRANSFER
            )
            return
        self._flow_seq += 1
        flow.seq = self._flow_seq
        self._m_flows.inc()
        self._flows[flow] = None
        for key in flow.channels:
            users = self._users.get(key)
            if users is None:
                users = self._users[key] = {}
                ports = self.ports(key[0])
                self._cap[key] = (
                    ports.disk_mbps if key[1] == DISK else ports.nic_mbps
                )
            users[flow] = None
        self._mark_dirty(flow.channels)

    def _drop_flow(self, flow: _Flow) -> None:
        self._flows.pop(flow, None)
        for key in flow.channels:
            users = self._users.get(key)
            if users is not None:
                users.pop(flow, None)
                if not users:
                    del self._users[key]

    def _advance(self) -> None:
        """Progress all flows from the last update to now."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining_mb = max(0.0, f.remaining_mb - f.rate * dt)
        self._last_update = self.sim.now

    # ------------------------------------------------------------------
    # Deferred flush of same-instant changes
    # ------------------------------------------------------------------
    def _mark_dirty(self, channels: Iterable[ChannelKey]) -> None:
        self._dirty_channels.extend(channels)
        if self._dirty_channels and self._flush_event is None:
            self._flush_event = self.sim.call_after(
                0.0, self._flush_tick, priority=PRIORITY_TRANSFER
            )

    def _flush_tick(self) -> None:
        self._flush_event = None
        self._ensure_fresh()

    def _ensure_fresh(self) -> None:
        if not self._dirty_channels:
            return
        seeds = self._dirty_channels
        self._dirty_channels = []
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self._refill(seeds)
        self._schedule_completion()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _component(self, seeds: Iterable[ChannelKey]) -> List[_Flow]:
        """Flows transitively sharing a channel with ``seeds``, in
        global admission order (so tie-breaks match a full rebuild)
        without scanning the whole flow table — O(component)."""
        seen_channels = set()
        comp = set()
        frontier: deque = deque()
        for key in seeds:
            if key not in seen_channels:
                seen_channels.add(key)
                frontier.append(key)
        n_all = len(self._flows)
        while frontier:
            key = frontier.popleft()
            for flow in self._users.get(key, ()):
                if flow in comp:
                    continue
                comp.add(flow)
                if len(comp) == n_all:
                    # Fully connected (the common case under load):
                    # stop expanding, the component is everything.
                    return list(self._flows)
                for other in flow.channels:
                    if other not in seen_channels:
                        seen_channels.add(other)
                        frontier.append(other)
        # Admission order == the order a full rebuild would walk the
        # flow dict in, so the fill's tie-breaks come out identical.
        return sorted(comp, key=lambda f: f.seq)

    def _refill(self, changed_channels: Iterable[ChannelKey]) -> None:
        """Re-run progressive filling where the change can matter."""
        if self._incremental:
            affected = self._component(changed_channels)
        else:
            affected = list(self._flows)
        if affected:
            self._water_fill(affected)

    def _water_fill(self, flows: List[_Flow]) -> None:
        """Progressive-filling max-min allocation over ``flows`` (a
        union of whole components: every user of every channel touched
        is in the list).

        The tightest channel of each round comes from a lazy min-heap
        keyed by ``(share, construction_order)`` with per-channel
        active counts maintained on the side — identical fills to the
        naive find-min-rescan (same arithmetic, same tie-breaks), but
        O((F·C) log F) instead of O(rounds · channels · users).
        """
        self._m_water_fills.inc()
        users: Dict[ChannelKey, List[_Flow]] = {}
        for f in flows:
            f.rate = 0.0
            for key in f.channels:
                bucket = users.get(key)
                if bucket is None:
                    users[key] = [f]
                else:
                    bucket.append(f)

        remaining_cap: Dict[ChannelKey, float] = {}
        active: Dict[ChannelKey, int] = {}
        order: Dict[ChannelKey, int] = {}
        heap: List[Tuple[float, int, ChannelKey]] = []
        for idx, (key, bucket) in enumerate(users.items()):
            c = self._cap[key]
            remaining_cap[key] = c
            n = len(bucket)
            active[key] = n
            order[key] = idx
            heap.append((c / n, idx, key))
        heapq.heapify(heap)

        unfixed = set(flows)
        while unfixed and heap:
            share, _, best_key = heapq.heappop(heap)
            n = active[best_key]
            if n == 0 or share != remaining_cap[best_key] / n:
                continue  # stale entry: the channel changed since push
            changed: Dict[ChannelKey, None] = {}
            for f in users[best_key]:
                if f not in unfixed:
                    continue
                f.rate = share
                unfixed.discard(f)
                for key in f.channels:
                    remaining_cap[key] = max(
                        0.0, remaining_cap[key] - share
                    )
                    active[key] -= 1
                    changed[key] = None
            for key in changed:
                if active[key] > 0:
                    heapq.heappush(
                        heap,
                        (remaining_cap[key] / active[key], order[key], key),
                    )

    def _schedule_completion(self) -> None:
        """(Re-)arm the single next-completion event."""
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        soonest, soonest_flow = float("inf"), None
        for f in self._flows:
            if f.rate <= 0:
                continue
            eta = f.remaining_mb / f.rate
            if eta < soonest:
                soonest, soonest_flow = eta, f
        if soonest_flow is not None:
            self._next_event = self.sim.call_after(
                soonest, self._on_completion_tick, priority=PRIORITY_TRANSFER
            )

    # ------------------------------------------------------------------
    def _on_completion_tick(self) -> None:
        self._next_event = None
        self._advance()
        done = [f for f in self._flows if f.remaining_mb <= 1e-9]
        changed: List[ChannelKey] = []
        for f in done:
            self._drop_flow(f)
            changed.extend(f.channels)
        self._mark_dirty(changed)
        for f in done:
            # Callbacks often start follow-up transfers at this same
            # instant; their changes fold into the one pending flush.
            self._finish(f.transfer)
        if self._dirty_channels:
            self._ensure_fresh()
        else:
            # Nothing crossed the epsilon yet: re-arm from the slightly
            # advanced remaining volumes (the tick consumed the event).
            self._schedule_completion()

    def _abort_transfers(self, node_id: int) -> None:
        self._advance()
        doomed = [
            f
            for f in self._flows
            if any(node == node_id for node, _ in f.channels)
        ]
        changed: List[ChannelKey] = []
        for f in doomed:
            self._drop_flow(f)
            changed.extend(f.channels)
        self._mark_dirty(changed)
        for f in doomed:
            self._fail(f.transfer)
        if self._dirty_channels:
            self._ensure_fresh()
