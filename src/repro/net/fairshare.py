"""Max-min fair-share flow model (ablation alternative to FIFO).

Each in-flight transfer is a *flow* demanding bandwidth on its source
NIC-out, destination NIC-in and both disks.  Rates are assigned by
progressive filling (classic max-min fairness), recomputed whenever the
flow set changes.  More faithful to TCP sharing than FIFO queues, at
O(flows · channels) per change — used by ``benchmarks/test_ablation_
network.py`` to quantify the modelling gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import NetworkError
from ..simulation import PRIORITY_TRANSFER, Simulation
from .base import DISK, NIC_IN, NIC_OUT, NetworkModel, OnComplete, OnFail, Transfer


class _Flow:
    __slots__ = ("transfer", "remaining_mb", "rate", "channels")

    def __init__(
        self, transfer: Transfer, channels: List[Tuple[int, str]]
    ) -> None:
        self.transfer = transfer
        self.remaining_mb = transfer.size_mb
        self.rate = 0.0
        self.channels = channels  # [(node_id, channel_name), ...]


class FairShareNetwork(NetworkModel):
    """See module docstring."""

    def __init__(self, sim: Simulation, disk_fraction: float = 1.0) -> None:
        super().__init__(sim)
        if not 0.0 <= disk_fraction <= 1.0:
            raise NetworkError("disk_fraction must be in [0, 1]")
        self._disk_fraction = disk_fraction
        self._flows: Set[_Flow] = set()
        self._last_update = 0.0
        self._next_event = None

    # ------------------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "net",
    ) -> Transfer:
        if size_mb < 0:
            raise NetworkError("negative transfer size")
        t = Transfer(src, dst, size_mb, kind, self.sim.now, on_complete, on_fail)
        if not self.is_up(src) or not self.is_up(dst):
            self.sim.call_after(0.0, self._fail, t, priority=PRIORITY_TRANSFER)
            return t
        channels = [(src, NIC_OUT), (dst, NIC_IN)]
        if self._disk_fraction > 0:
            channels += [(src, DISK), (dst, DISK)]
        self._add_flow(_Flow(t, channels))
        return t

    def disk_io(
        self,
        node_id: int,
        size_mb: float,
        on_complete: Optional[OnComplete] = None,
        on_fail: Optional[OnFail] = None,
        kind: str = "disk",
    ) -> Transfer:
        if size_mb < 0:
            raise NetworkError("negative transfer size")
        t = Transfer(
            node_id, node_id, size_mb, kind, self.sim.now, on_complete, on_fail
        )
        if not self.is_up(node_id):
            self.sim.call_after(0.0, self._fail, t, priority=PRIORITY_TRANSFER)
            return t
        self._add_flow(_Flow(t, [(node_id, DISK)]))
        return t

    def active_transfers(self) -> int:
        return len(self._flows)

    def flow_rate(self, transfer: Transfer) -> float:
        """Current assigned rate in MB/s (tests)."""
        for f in self._flows:
            if f.transfer is transfer:
                return f.rate
        return 0.0

    # ------------------------------------------------------------------
    def _add_flow(self, flow: _Flow) -> None:
        self._advance()
        self._flows.add(flow)
        if flow.remaining_mb <= 0.0:
            # Zero-byte transfer: complete immediately (asynchronously).
            self._flows.discard(flow)
            self.sim.call_after(
                0.0, self._finish, flow.transfer, priority=PRIORITY_TRANSFER
            )
            return
        self._reassign()

    def _advance(self) -> None:
        """Progress all flows from the last update to now."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining_mb = max(0.0, f.remaining_mb - f.rate * dt)
        self._last_update = self.sim.now

    def _reassign(self) -> None:
        """Progressive-filling max-min allocation + next-completion event."""
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        if not self._flows:
            return

        capacity: Dict[Tuple[int, str], float] = {}
        users: Dict[Tuple[int, str], List[_Flow]] = {}
        for f in self._flows:
            f.rate = 0.0
            for node, ch in f.channels:
                key = (node, ch)
                if key not in capacity:
                    ports = self.ports(node)
                    capacity[key] = (
                        ports.disk_mbps if ch == DISK else ports.nic_mbps
                    )
                    users[key] = []
                users[key].append(f)

        unfixed = set(self._flows)
        remaining_cap = dict(capacity)
        # Progressive filling: repeatedly find the tightest channel.
        while unfixed:
            best_key, best_share = None, float("inf")
            for key, cap in remaining_cap.items():
                active = [f for f in users[key] if f in unfixed]
                if not active:
                    continue
                share = cap / len(active)
                if share < best_share:
                    best_share, best_key = share, key
            if best_key is None:
                break
            for f in [f for f in users[best_key] if f in unfixed]:
                f.rate = best_share
                unfixed.discard(f)
                for node, ch in f.channels:
                    remaining_cap[(node, ch)] = max(
                        0.0, remaining_cap[(node, ch)] - best_share
                    )

        soonest, soonest_flow = float("inf"), None
        for f in self._flows:
            if f.rate <= 0:
                continue
            eta = f.remaining_mb / f.rate
            if eta < soonest:
                soonest, soonest_flow = eta, f
        if soonest_flow is not None:
            self._next_event = self.sim.call_after(
                soonest, self._on_completion_tick, priority=PRIORITY_TRANSFER
            )

    def _on_completion_tick(self) -> None:
        self._next_event = None
        self._advance()
        done = [f for f in self._flows if f.remaining_mb <= 1e-9]
        for f in done:
            self._flows.discard(f)
        for f in done:
            self._finish(f.transfer)
        self._reassign()

    def _abort_transfers(self, node_id: int) -> None:
        self._advance()
        doomed = [
            f
            for f in self._flows
            if any(node == node_id for node, _ in f.channels)
        ]
        for f in doomed:
            self._flows.discard(f)
        for f in doomed:
            self._fail(f.transfer)
        self._reassign()
