"""repro — a full reproduction of *MOON: MapReduce On Opportunistic
eNvironments* (Lin et al., HPDC 2010).

Public API lives here; see README.md for a tour and DESIGN.md for the
paper-to-module mapping.
"""

__version__ = "1.0.0"

from .config import (
    ClusterConfig,
    DfsConfig,
    NodeSpec,
    SchedulerConfig,
    ShuffleConfig,
    SystemConfig,
    TraceConfig,
    hadoop_scheduler_config,
    moon_scheduler_config,
)
from .errors import ReproError
from .simulation import Simulation

__all__ = [
    "__version__",
    "Simulation",
    "ReproError",
    "SystemConfig",
    "ClusterConfig",
    "TraceConfig",
    "DfsConfig",
    "SchedulerConfig",
    "ShuffleConfig",
    "NodeSpec",
    "hadoop_scheduler_config",
    "moon_scheduler_config",
]
