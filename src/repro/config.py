"""Configuration dataclasses for every layer of the MOON stack.

All values default to the paper's experimental setup (Section VI):
60 volatile + 6 dedicated nodes, 1 GbE network, Hadoop 0.17-era
parameters (2 map + 2 reduce slots per node, 64 MB blocks, 10-minute
TrackerExpiryInterval) and MOON parameters (1-minute SuspensionInterval,
30-minute TrackerExpiryInterval, H=20, R=2, 20% speculative cap).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError

#: Seconds in one simulated hour / the paper's 8-hour trace length.
HOUR = 3600.0
TRACE_LENGTH = 8 * HOUR

#: Mean node-outage interval extracted from the Entropia trace (paper VI).
MEAN_OUTAGE_SECONDS = 409.0


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one node class.

    Bandwidths are in MB/s.  The paper's testbed used 1 GbE (~115 MB/s
    raw); we default to an effective 80 MB/s NIC and 60 MB/s disk, which
    reproduces the relative I/O pressure of the testbed.
    """

    cpu_scale: float = 1.0
    disk_mbps: float = 60.0
    nic_mbps: float = 80.0
    map_slots: int = 2
    reduce_slots: int = 2
    storage_gb: float = 80.0

    def validate(self) -> None:
        if self.cpu_scale <= 0:
            raise ConfigError("cpu_scale must be positive")
        if self.disk_mbps <= 0 or self.nic_mbps <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.map_slots < 0 or self.reduce_slots < 0:
            raise ConfigError("slot counts must be non-negative")
        if self.storage_gb <= 0:
            raise ConfigError("storage_gb must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster composition: volatile volunteer PCs + dedicated anchors."""

    n_volatile: int = 60
    n_dedicated: int = 6
    volatile: NodeSpec = field(default_factory=NodeSpec)
    dedicated: NodeSpec = field(default_factory=NodeSpec)
    heartbeat_interval: float = 3.0

    def validate(self) -> None:
        if self.n_volatile < 0 or self.n_dedicated < 0:
            raise ConfigError("node counts must be non-negative")
        if self.n_volatile + self.n_dedicated == 0:
            raise ConfigError("cluster must contain at least one node")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        self.volatile.validate()
        self.dedicated.validate()

    @property
    def n_nodes(self) -> int:
        return self.n_volatile + self.n_dedicated


@dataclass(frozen=True)
class TraceConfig:
    """Synthetic availability-trace generation (paper Section VI)."""

    unavailability_rate: float = 0.4
    mean_outage: float = MEAN_OUTAGE_SECONDS
    #: The paper states only the 409 s *mean*; desktop-grid outage
    #: lengths are strongly dispersed (its refs [7], [15]), with many
    #: short keyboard-blip outages and a heavy tail.  sigma = mean
    #: (truncated below) reproduces that mix — and it is the regime
    #: where kill-fast Hadoop wastes work on outages that end a moment
    #: later, the pathology MOON's suspension handling exists for.
    outage_sigma: float = MEAN_OUTAGE_SECONDS
    min_outage: float = 10.0
    duration: float = TRACE_LENGTH
    #: Outage-length law; "normal" is the paper's model, the others
    #: (lognormal/weibull/exponential/pareto) follow the paper's ref
    #: [15] on real availability traces.  See repro.traces.distributions.
    distribution: str = "normal"

    def validate(self) -> None:
        if not 0.0 <= self.unavailability_rate < 1.0:
            raise ConfigError("unavailability_rate must be in [0, 1)")
        if self.mean_outage <= 0 or self.duration <= 0:
            raise ConfigError("durations must be positive")
        if self.min_outage < 0 or self.min_outage > self.mean_outage:
            raise ConfigError("min_outage must be in [0, mean_outage]")
        if self.outage_sigma < 0:
            raise ConfigError("outage_sigma must be non-negative")
        from .traces.distributions import DISTRIBUTIONS

        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown outage distribution: {self.distribution!r}"
            )


@dataclass(frozen=True)
class JournalConfig:
    """NameNode write-ahead journal + checkpointed failover.

    Disabled by default: the paper's figures assume an immortal
    NameNode, and with ``enabled=False`` the journal adds zero
    simulation events, so every pre-journal golden stays byte-identical.
    When enabled, namespace mutations are synchronously durable while
    replica registrations group-commit every ``fsync_interval`` records
    (the unsynced tail is what a crash loses and block reports win
    back).
    """

    enabled: bool = False
    #: Seconds between full namespace checkpoints (journal truncation).
    checkpoint_interval: float = 300.0
    #: Replica-map records per group commit; namespace records always
    #: fsync immediately.
    fsync_interval: int = 16
    #: Simulated seconds of replay work per journal record recovered.
    replay_seconds_per_record: float = 5e-5
    #: Seconds after replay before the first datanode block report.
    block_report_delay: float = 2.0
    #: Stagger between consecutive block reports (one per node).
    block_report_stagger: float = 0.5
    #: Simulated NameNode crash time (None = no fault injected).
    crash_at: Optional[float] = None

    def validate(self) -> None:
        if self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive")
        if self.fsync_interval < 1:
            raise ConfigError("fsync_interval must be >= 1")
        if self.replay_seconds_per_record < 0:
            raise ConfigError("replay_seconds_per_record must be non-negative")
        if self.block_report_delay < 0 or self.block_report_stagger < 0:
            raise ConfigError("block-report delays must be non-negative")
        if self.crash_at is not None:
            if not self.enabled:
                raise ConfigError("--namenode-crash requires the journal on")
            if self.crash_at <= 0:
                raise ConfigError("crash_at must be positive")


@dataclass(frozen=True)
class DfsConfig:
    """MOON-DFS parameters (paper Section IV)."""

    block_size_mb: float = 64.0
    #: Default replication factor {d, v} for reliable files.
    default_reliable_rf: Tuple[int, int] = (1, 3)
    #: Default replication factor {d, v} for opportunistic files.
    default_opportunistic_rf: Tuple[int, int] = (1, 1)
    #: User-defined availability goal for opportunistic files when the
    #: dedicated copy is declined (paper: e.g. 0.9).
    availability_goal: float = 0.9
    #: NameNode intervals (seconds).
    node_expiry_interval: float = 600.0
    node_hibernate_interval: float = 60.0
    replication_check_interval: float = 10.0
    #: Algorithm 1 parameters.
    throttle_window: int = 6
    throttle_threshold: float = 0.2
    #: Seconds between bandwidth samples fed to Algorithm 1 (the paper
    #: piggybacks them on DataNode heartbeats).
    throttle_sample_interval: float = 5.0
    #: Interval I over which the NameNode estimates unavailability p.
    p_estimate_interval: float = 120.0
    #: Upper bound for the adaptive volatile replication degree v'.
    max_volatile_replicas: int = 8
    #: Client-side timeout charged when an I/O attempt hits a node that
    #: is down but not yet detected as such (paper IV-C: "clients
    #: experience timeouts trying to access the nodes").
    client_read_timeout: float = 15.0
    #: Re-replication work issued per NameNode scan (anti-storm cap).
    max_replications_per_scan: int = 40
    #: Pre-plan the next block's pipeline while the current block
    #: streams, overlapping NameNode allocation with data transfer the
    #: way HDFS clients do.  Off by default: pre-planning samples
    #: cluster state and the placement RNG earlier, which legitimately
    #: shifts placements — goldens and the perf baselines pin the
    #: plan-per-block behaviour.  Stale pre-plans (a target dying
    #: between plan and use) take the normal pipeline-failure path.
    preplan_writes: bool = False
    #: Durable-metadata layer (off for the paper figures).
    journal: JournalConfig = field(default_factory=JournalConfig)

    def validate(self) -> None:
        self.journal.validate()
        if self.block_size_mb <= 0:
            raise ConfigError("block_size_mb must be positive")
        for name, (d, v) in (
            ("default_reliable_rf", self.default_reliable_rf),
            ("default_opportunistic_rf", self.default_opportunistic_rf),
        ):
            if d < 0 or v < 0 or d + v == 0:
                raise ConfigError(f"{name} must request at least one replica")
        if not 0.0 < self.availability_goal < 1.0:
            raise ConfigError("availability_goal must be in (0, 1)")
        if self.node_hibernate_interval >= self.node_expiry_interval:
            raise ConfigError(
                "NodeHibernateInterval must be much shorter than "
                "NodeExpiryInterval (paper IV-C)"
            )
        if self.throttle_window < 1:
            raise ConfigError("throttle_window must be >= 1")
        if self.throttle_threshold < 0:
            raise ConfigError("throttle_threshold must be non-negative")
        if self.throttle_sample_interval <= 0:
            raise ConfigError("throttle_sample_interval must be positive")
        if self.max_volatile_replicas < 1:
            raise ConfigError("max_volatile_replicas must be >= 1")
        if self.client_read_timeout < 0:
            raise ConfigError("client_read_timeout must be non-negative")
        if self.max_replications_per_scan < 1:
            raise ConfigError("max_replications_per_scan must be >= 1")


#: Failure-detection modes: the oracle default plus the honest ones.
DETECTOR_MODES = ("oracle", "timeout", "adaptive")


@dataclass(frozen=True)
class DetectorConfig:
    """How observers learn node state (cluster suspicion layer).

    ``oracle`` is the historical setup: the availability trace feeds
    judgements directly, heartbeats are perfect, and a node is never
    suspected while it is actually up — byte-identical to every paper
    figure.  The honest modes drive suspicion purely from (simulated)
    heartbeat arrivals: the observer's link to an *alive* node can go
    silent in bursts, so suspicion has false positives, detection of a
    real outage is delayed by the last-delivered heartbeat, and a
    requeue decision carries a grace period (SNIPPETS Snippet 3).
    """

    #: "oracle" | "timeout" | "adaptive".
    mode: str = "oracle"
    #: Multiplier applied to every observer threshold in honest modes —
    #: the detection-latency axis (0.5 = suspect twice as fast).
    timeout_scale: float = 1.0
    #: Observation noise (honest modes): per-node rate of heartbeat
    #: silence bursts while the node is up (GC pauses, lost packets,
    #: congested links), and their mean length in seconds.
    silences_per_hour: float = 1.5
    mean_silence: float = 45.0
    #: Seconds between first suspicion and task requeue (Snippet 3
    #: Policy B: a missing heartbeat must not requeue work instantly).
    grace_period: float = 60.0
    #: Adaptive (phi-accrual-style) detector: the per-node effective
    #: threshold is ``mean + phi * std`` of the node's observed silence
    #: gaps, clamped to ``[adaptive_floor * heartbeat, adaptive_cap *
    #: base threshold]`` — flappy nodes earn wide tolerances, quiet
    #: dedicated nodes tight (fast) ones.
    phi: float = 3.0
    adaptive_floor: float = 2.0
    adaptive_cap: float = 2.0
    #: Below this many observed gaps the adaptive detector falls back
    #: to the configured (fixed-timeout) threshold — phi-accrual
    #: bootstraps conservatively, never from a guess.
    adaptive_min_samples: int = 3

    @property
    def honest(self) -> bool:
        return self.mode != "oracle"

    def validate(self) -> None:
        if self.mode not in DETECTOR_MODES:
            raise ConfigError(f"unknown detector mode: {self.mode!r}")
        if self.timeout_scale <= 0:
            raise ConfigError("timeout_scale must be positive")
        if self.silences_per_hour < 0:
            raise ConfigError("silences_per_hour must be non-negative")
        if self.mean_silence <= 0:
            raise ConfigError("mean_silence must be positive")
        if self.grace_period < 0:
            raise ConfigError("grace_period must be non-negative")
        if self.phi < 0:
            raise ConfigError("phi must be non-negative")
        if self.adaptive_floor <= 0 or self.adaptive_cap <= 0:
            raise ConfigError("adaptive clamps must be positive")
        if self.adaptive_min_samples < 1:
            raise ConfigError("adaptive_min_samples must be >= 1")


@dataclass(frozen=True)
class SchedulerConfig:
    """Task-scheduling parameters (paper Sections II-C and V)."""

    #: "hadoop" | "moon" | "late".
    kind: str = "moon"
    #: Hadoop's TrackerExpiryInterval (default 10 min; MOON uses 30 min).
    tracker_expiry_interval: float = 1800.0
    #: MOON's SuspensionInterval (ignored by the Hadoop scheduler).
    suspension_interval: float = 60.0
    #: Master switch for backup copies (every policy gates its
    #: speculative paths on it).  Off, the assignment walk is pure
    #: pending-task placement, and jobs whose tasks are all running
    #: drop out of the walk in O(1) — what lets a 10k-node cluster
    #: place a one-task job without probing every tracker against
    #: every in-flight job.  Default True keeps the paper runs intact.
    speculative_enabled: bool = True
    #: Straggler rule: running longer than this (seconds)...
    speculative_min_runtime: float = 60.0
    #: ... and progress below the type average minus this gap.
    speculative_progress_gap: float = 0.2
    #: Hadoop cap of speculative copies per task (excluding original).
    max_speculative_per_task: int = 1
    #: MOON job-level cap: concurrent speculative instances as a fraction
    #: of currently available execution slots (paper: 20%).
    speculative_cap_fraction: float = 0.20
    #: Two-phase scheduling: homestretch begins when remaining tasks fall
    #: below H% of available slots; keep >= R active copies then.
    homestretch_threshold_pct: float = 20.0
    homestretch_replicas: int = 2
    #: Whether the scheduler may place tasks on dedicated nodes
    #: (MOON-Hybrid of the paper's Section V-C).
    hybrid_aware: bool = True
    #: Service-mode extension beyond the paper: dedicated nodes also run
    #: *primary* (non-speculative) tasks once every volatile slot has
    #: been offered work.  The paper's V-C reserves dedicated CPUs for
    #: speculative copies; a served job stream wants the whole tier's
    #: capacity, and the autoscaler sizes that tier.  Default False
    #: keeps every paper experiment byte-identical.
    dedicated_primary: bool = False
    #: A map attempt is retried at most this many times before the job
    #: fails (Hadoop footnote 1).
    max_task_attempts: int = 4
    #: Reduces become schedulable once this fraction of maps completed
    #: (Hadoop's mapred.reduce.slowstart.completed.maps).
    reduce_slowstart_fraction: float = 0.05
    #: Stock Hadoop re-executes *completed* maps on a dead TaskTracker
    #: because their outputs lived on its local disk.  In this
    #: substrate — as in every experiment of the paper, which runs all
    #: scheduling policies over the MOON file system — intermediate
    #: data lives in the DFS, so lost map output is detected and
    #: re-executed through the fetch-failure path (VI-B) instead.
    #: ``None`` resolves to False; set True to model stock node-local
    #: intermediate storage.
    reexecute_completed_maps_on_death: Optional[bool] = None

    def reexec_completed_maps(self) -> bool:
        if self.reexecute_completed_maps_on_death is None:
            return False
        return self.reexecute_completed_maps_on_death

    def validate(self) -> None:
        if self.kind not in ("hadoop", "moon", "late"):
            raise ConfigError(f"unknown scheduler kind: {self.kind!r}")
        if self.tracker_expiry_interval <= 0:
            raise ConfigError("tracker_expiry_interval must be positive")
        if self.suspension_interval <= 0:
            raise ConfigError("suspension_interval must be positive")
        if self.kind == "moon" and (
            self.suspension_interval >= self.tracker_expiry_interval
        ):
            raise ConfigError(
                "SuspensionInterval must be smaller than TrackerExpiryInterval"
            )
        if not 0 <= self.speculative_progress_gap <= 1:
            raise ConfigError("speculative_progress_gap must be in [0, 1]")
        if not 0 < self.speculative_cap_fraction <= 1:
            raise ConfigError("speculative_cap_fraction must be in (0, 1]")
        if self.homestretch_threshold_pct < 0:
            raise ConfigError("homestretch_threshold_pct must be >= 0")
        if self.homestretch_replicas < 1:
            raise ConfigError("homestretch_replicas must be >= 1")
        if self.max_task_attempts < 1:
            raise ConfigError("max_task_attempts must be >= 1")
        if not 0.0 <= self.reduce_slowstart_fraction <= 1.0:
            raise ConfigError("reduce_slowstart_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ShuffleConfig:
    """Shuffle/fetch behaviour (paper Section VI-B)."""

    #: Parallel fetch streams per reduce task (Hadoop parallel copies).
    parallel_copies: int = 5
    #: Hadoop rule: re-run a map when more than this fraction of running
    #: reduces report fetch failures for it.
    hadoop_failure_fraction: float = 0.5
    #: MOON remedy: after this many fetch failures for one map output,
    #: query the file system and re-issue the map if no live replica.
    moon_fetch_failures: int = 3
    #: Seconds a reducer waits before retrying a failed fetch.
    fetch_retry_interval: float = 10.0

    def validate(self) -> None:
        if self.parallel_copies < 1:
            raise ConfigError("parallel_copies must be >= 1")
        if not 0 < self.hadoop_failure_fraction <= 1:
            raise ConfigError("hadoop_failure_fraction must be in (0, 1]")
        if self.moon_fetch_failures < 1:
            raise ConfigError("moon_fetch_failures must be >= 1")
        if self.fetch_retry_interval <= 0:
            raise ConfigError("fetch_retry_interval must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level bundle used by :mod:`repro.core` to assemble a system."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)
    dfs: DfsConfig = field(default_factory=DfsConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    shuffle: ShuffleConfig = field(default_factory=ShuffleConfig)
    #: How observers learn node state ("oracle" keeps the historical,
    #: trace-fed judgements; honest modes drive suspicion from
    #: heartbeats only).
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Root seed; every random stream in a run derives from it.
    seed: int = 42
    #: "fifo" (default, fast) or "fairshare" (ablation).
    network_model: str = "fifo"

    def validate(self) -> None:
        self.cluster.validate()
        self.trace.validate()
        self.dfs.validate()
        self.scheduler.validate()
        self.shuffle.validate()
        self.detector.validate()
        if self.network_model not in ("fifo", "fairshare"):
            raise ConfigError(f"unknown network model: {self.network_model!r}")

    def with_(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


def hadoop_scheduler_config(tracker_expiry_interval: float = 600.0) -> SchedulerConfig:
    """The paper's Hadoop baselines: HadoopXMin = default speculative
    scheduling with an X-minute TrackerExpiryInterval."""
    return SchedulerConfig(
        kind="hadoop",
        tracker_expiry_interval=tracker_expiry_interval,
        hybrid_aware=False,
    )


def moon_scheduler_config(hybrid_aware: bool = True) -> SchedulerConfig:
    """The paper's MOON scheduler (1-min SuspensionInterval, 30-min
    TrackerExpiryInterval); ``hybrid_aware=False`` gives plain "MOON"."""
    return SchedulerConfig(
        kind="moon",
        tracker_expiry_interval=1800.0,
        suspension_interval=60.0,
        hybrid_aware=hybrid_aware,
    )
