"""Run metrics (S9): Table-II profiles + figure-shaped reports."""

from .profile import ExecutionProfile, RunMetrics
from .report import comparison_rows, series_table

__all__ = ["ExecutionProfile", "RunMetrics", "series_table", "comparison_rows"]
