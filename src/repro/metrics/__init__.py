"""Run metrics (S9): Table-II profiles + figure-shaped reports.

Owns the measurement vocabulary: :class:`ExecutionProfile` breaks one
run into the paper's Table II columns (map / shuffle / reduce time,
duplicated work, data volumes), and the deterministic
:func:`percentile` / :func:`latency_quantiles` helpers underpin the
service layer's SLO accounting (p50/p95/p99 response times).

See docs/ARCHITECTURE.md#metrics for the layer map.
"""

from .profile import ExecutionProfile, RunMetrics
from .report import comparison_rows, series_table

__all__ = ["ExecutionProfile", "RunMetrics", "series_table", "comparison_rows"]
