"""Execution profile extraction — the fields of the paper's Table II.

All times come from successful attempts' phase marks:

* **map time** — attempt start to intermediate-write completion;
* **shuffle time** — "measured from the start of a reduce task till the
  end of copying all related Map results" (paper VI-B);
* **reduce time** — end of sort to output-write completion;
* **killed maps / reduces** — killed instances + forced re-executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..mapreduce.job import Job
from ..mapreduce.task import AttemptState


def _mean(xs: List[float]) -> float:
    return float(np.mean(xs)) if xs else 0.0


@dataclass(frozen=True)
class ExecutionProfile:
    """Table-II row for one run."""

    policy: str
    avg_map_time: float
    avg_shuffle_time: float
    avg_reduce_time: float
    killed_maps: int
    killed_reduces: int

    @staticmethod
    def from_job(job: Job, policy: str = "") -> "ExecutionProfile":
        map_times: List[float] = []
        for t in job.maps:
            for a in t.attempts:
                if a.state is AttemptState.SUCCEEDED and a.finished_at is not None:
                    map_times.append(a.finished_at - a.started_at)

        shuffle_times: List[float] = []
        reduce_times: List[float] = []
        for t in job.reduces:
            for a in t.attempts:
                if a.state is not AttemptState.SUCCEEDED:
                    continue
                marks = a.phase_marks
                if "shuffle_done" in marks:
                    shuffle_times.append(marks["shuffle_done"] - a.started_at)
                end = marks.get("write_done", a.finished_at)
                start = marks.get("sort_done")
                if start is not None and end is not None:
                    reduce_times.append(end - start)

        return ExecutionProfile(
            policy=policy,
            avg_map_time=_mean(map_times),
            avg_shuffle_time=_mean(shuffle_times),
            avg_reduce_time=_mean(reduce_times),
            killed_maps=int(job.counters["killed_map_attempts"]),
            killed_reduces=int(job.counters["killed_reduce_attempts"]),
        )

    def row(self) -> str:
        return (
            f"{self.policy:<10} map {self.avg_map_time:7.1f}s  "
            f"shuffle {self.avg_shuffle_time:8.1f}s  "
            f"reduce {self.avg_reduce_time:7.1f}s  "
            f"killed maps {self.killed_maps:4d}  "
            f"killed reduces {self.killed_reduces:4d}"
        )


@dataclass(frozen=True)
class RunMetrics:
    """Everything one experiment run reports."""

    job_name: str
    policy: str
    elapsed: Optional[float]
    succeeded: bool
    duplicated_tasks: int
    speculative_launched: int
    map_reexecutions: int
    fetch_failures: int
    profile: ExecutionProfile
    namenode_counters: dict

    @staticmethod
    def from_job(job: Job, namenode, policy: str = "") -> "RunMetrics":
        from ..mapreduce.job import JobState

        return RunMetrics(
            job_name=job.spec.name,
            policy=policy,
            elapsed=job.elapsed,
            succeeded=job.state is JobState.SUCCEEDED,
            duplicated_tasks=int(job.counters["duplicated_tasks"]),
            speculative_launched=int(job.counters["speculative_launched"]),
            map_reexecutions=int(job.counters["map_reexecutions"]),
            fetch_failures=int(job.counters["fetch_failures"]),
            profile=ExecutionProfile.from_job(job, policy),
            namenode_counters=dict(namenode.counters) if namenode else {},
        )
