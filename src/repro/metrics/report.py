"""Plain-text tables in the shape of the paper's figures, plus the
latency-distribution arithmetic shared by the service layer."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def series_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    unit: str = "s",
    fmt: str = "{:10.1f}",
) -> str:
    """One paper figure as text: rows = policies, columns = x values."""
    lines = [title, "=" * len(title)]
    header = f"{x_label:<16}" + "".join(f"{str(x):>12}" for x in x_values)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        cells = "".join(
            f"{fmt.format(v):>12}" if v is not None else f"{'--':>12}"
            for v in values
        )
        lines.append(f"{name:<16}{cells}")
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The q-th percentile by linear interpolation; None when empty.

    Implemented directly (sorted copy + interpolation) rather than via
    numpy so the result is a plain float with a stable repr — service
    reports must be byte-identical across repeated seeded runs.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if not values:
        return None
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def latency_quantiles(
    values: Sequence[float], qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
) -> Dict[str, Optional[float]]:
    """`{"p50": ..., "p95": ..., "p99": ...}` for a latency sample."""
    return {f"p{q:g}": percentile(values, q) for q in qs}


def comparison_rows(
    paper: Dict[str, float], measured: Dict[str, float], what: str
) -> List[str]:
    """Paper-vs-measured lines for EXPERIMENTS.md."""
    out = [f"{what}:"]
    for key in paper:
        p, m = paper[key], measured.get(key)
        if m is None:
            out.append(f"  {key}: paper={p}  measured=--")
        else:
            out.append(f"  {key}: paper={p:g}  measured={m:g}")
    return out
