"""Plain-text tables in the shape of the paper's figures."""

from __future__ import annotations

from typing import Dict, List, Sequence


def series_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Dict[str, Sequence[float]],
    unit: str = "s",
    fmt: str = "{:10.1f}",
) -> str:
    """One paper figure as text: rows = policies, columns = x values."""
    lines = [title, "=" * len(title)]
    header = f"{x_label:<16}" + "".join(f"{str(x):>12}" for x in x_values)
    lines.append(header)
    lines.append("-" * len(header))
    for name, values in series.items():
        cells = "".join(
            f"{fmt.format(v):>12}" if v is not None else f"{'--':>12}"
            for v in values
        )
        lines.append(f"{name:<16}{cells}")
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def comparison_rows(
    paper: Dict[str, float], measured: Dict[str, float], what: str
) -> List[str]:
    """Paper-vs-measured lines for EXPERIMENTS.md."""
    out = [f"{what}:"]
    for key in paper:
        p, m = paper[key], measured.get(key)
        if m is None:
            out.append(f"  {key}: paper={p}  measured=--")
        else:
            out.append(f"  {key}: paper={p:g}  measured={m:g}")
    return out
