"""Fault injection for the functional engine.

Mirrors the volatility regime the simulator models: each task attempt
independently fails with a configurable probability (a stand-in for
"the volunteer PC was reclaimed mid-task"), and the runner retries up
to the Hadoop attempt limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LocalRuntimeError


class InjectedFault(LocalRuntimeError):
    """Raised inside a task attempt that was chosen to fail."""


@dataclass
class FaultPlan:
    """Per-attempt failure probabilities."""

    map_failure_rate: float = 0.0
    reduce_failure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for r in (self.map_failure_rate, self.reduce_failure_rate):
            if not 0.0 <= r < 1.0:
                raise LocalRuntimeError("failure rates must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def map_attempt_fails(self) -> bool:
        return bool(self._rng.random() < self.map_failure_rate)

    def reduce_attempt_fails(self) -> bool:
        return bool(self._rng.random() < self.reduce_failure_rate)


NO_FAULTS = FaultPlan()
