"""Functional MapReduce API (S12).

A real, in-process implementation of the programming model the paper
builds on (Section II-B): user-supplied ``Map`` and ``Reduce``
primitives over key-value pairs, with hash partitioning, optional
combiners, and fault injection that mirrors the volatility the
simulator models (tasks can fail and are retried up to the Hadoop
limit).  Used by the examples and to cross-validate the simulator's
workload accounting against actually-executed jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import LocalRuntimeError

KeyValue = Tuple[Any, Any]
MapFn = Callable[[Any, Any], Iterable[KeyValue]]
ReduceFn = Callable[[Any, List[Any]], Iterable[KeyValue]]
CombineFn = ReduceFn
Partitioner = Callable[[Any, int], int]


def default_partitioner(key: Any, n_reduces: int) -> int:
    """Stable hash partitioning (Python's ``hash`` is salted per
    process for str; use a deterministic fold instead)."""
    h = 0
    for ch in repr(key):
        h = (h * 31 + ord(ch)) & 0x7FFFFFFF
    return h % n_reduces


@dataclass
class MapReduceJob:
    """A functional job description."""

    map_fn: MapFn
    reduce_fn: ReduceFn
    n_reduces: int = 2
    combiner: Optional[CombineFn] = None
    partitioner: Partitioner = default_partitioner
    #: Retry budget per task, matching Hadoop's limit (footnote 1).
    max_attempts: int = 4
    name: str = "localjob"

    def validate(self) -> None:
        if self.n_reduces < 1:
            raise LocalRuntimeError("n_reduces must be >= 1")
        if self.max_attempts < 1:
            raise LocalRuntimeError("max_attempts must be >= 1")
        if not callable(self.map_fn) or not callable(self.reduce_fn):
            raise LocalRuntimeError("map_fn and reduce_fn must be callable")


@dataclass
class JobOutput:
    """Result of a functional run."""

    pairs: List[KeyValue]
    map_attempts: int = 0
    reduce_attempts: int = 0
    map_failures: int = 0
    reduce_failures: int = 0
    partitions: List[List[KeyValue]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return dict(self.pairs)
