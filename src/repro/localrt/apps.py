"""Ready-made MapReduce applications for the functional runtime.

The paper motivates MapReduce-on-volunteers with web search data,
machine learning [11], bioinformatics [12] and log analysis [13]; this
module implements one representative job per area so the examples (and
users) have real workloads to run on :class:`~repro.localrt.LocalRunner`:

* :func:`word_count` / :func:`grep_count` — the paper's two benchmark
  applications (Table I), executed for real;
* :func:`inverted_index` — web-search indexing;
* :func:`join` — reduce-side equi-join of two relations;
* :func:`kmeans_iteration` / :func:`kmeans` — Lloyd iterations as
  chained MapReduce jobs (the machine-learning use case);
* :func:`kmer_count` — k-mer counting, the bioinformatics staple;
* :func:`histogram` — numeric binning for log analysis.

All of them return plain :class:`~repro.localrt.JobOutput` so fault
injection and retry accounting work uniformly.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LocalRuntimeError
from .api import JobOutput, KeyValue
from .faults import NO_FAULTS, FaultPlan
from .runner import run_mapreduce

_WORD_RE = re.compile(r"[A-Za-z0-9']+")


# ======================================================================
# Text: word count / grep / inverted index
# ======================================================================
def word_count(
    documents: Sequence[str],
    n_reduces: int = 4,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Count word occurrences across documents (Table I's ``word
    count``), with a combiner so map outputs stay small — exactly why
    the paper's word count shuffles so little data (VI-B)."""

    def map_fn(_key, line: str) -> Iterable[KeyValue]:
        for word in _WORD_RE.findall(line.lower()):
            yield (word, 1)

    def reduce_fn(word, counts) -> Iterable[KeyValue]:
        yield (word, sum(counts))

    records = list(enumerate(documents))
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=n_reduces,
        combiner=reduce_fn, faults=faults,
    )


def grep_count(
    documents: Sequence[str],
    pattern: str,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Count pattern matches per document (the classic MapReduce grep:
    huge input, near-zero intermediate data)."""
    regex = re.compile(pattern)

    def map_fn(doc_id, line: str) -> Iterable[KeyValue]:
        n = len(regex.findall(line))
        if n:
            yield (doc_id, n)

    def reduce_fn(doc_id, counts) -> Iterable[KeyValue]:
        yield (doc_id, sum(counts))

    records = list(enumerate(documents))
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=1, faults=faults
    )


def inverted_index(
    documents: Sequence[str],
    n_reduces: int = 4,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Build ``word -> sorted list of document ids`` (web indexing)."""

    def map_fn(doc_id, line: str) -> Iterable[KeyValue]:
        for word in set(_WORD_RE.findall(line.lower())):
            yield (word, doc_id)

    def reduce_fn(word, doc_ids) -> Iterable[KeyValue]:
        yield (word, sorted(set(doc_ids)))

    records = list(enumerate(documents))
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=n_reduces, faults=faults
    )


# ======================================================================
# Relational: reduce-side join
# ======================================================================
def join(
    left: Sequence[Tuple[object, object]],
    right: Sequence[Tuple[object, object]],
    n_reduces: int = 4,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Equi-join two relations on their key.

    Classic reduce-side join: maps tag each record with its side, the
    reduce emits the cross product per key.  Output pairs are
    ``(key, (left_value, right_value))``.
    """

    def map_fn(_idx, tagged) -> Iterable[KeyValue]:
        side, key, value = tagged
        yield (key, (side, value))

    def reduce_fn(key, tagged_values) -> Iterable[KeyValue]:
        lefts = [v for s, v in tagged_values if s == "L"]
        rights = [v for s, v in tagged_values if s == "R"]
        for lv in lefts:
            for rv in rights:
                yield (key, (lv, rv))

    records = [(i, ("L", k, v)) for i, (k, v) in enumerate(left)]
    records += [
        (len(left) + i, ("R", k, v)) for i, (k, v) in enumerate(right)
    ]
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=n_reduces, faults=faults
    )


# ======================================================================
# Machine learning: k-means (chained jobs)
# ======================================================================
def kmeans_iteration(
    points: Sequence[Sequence[float]],
    centroids: Sequence[Sequence[float]],
    n_reduces: int = 2,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """One Lloyd iteration as a MapReduce job.

    Map assigns each point to its nearest centroid; reduce averages the
    members of each cluster.  Output pairs are
    ``(cluster_index, new_centroid_tuple)`` — empty clusters keep their
    previous centroid.
    """
    cents = np.asarray(centroids, dtype=float)
    if cents.ndim != 2 or not len(cents):
        raise LocalRuntimeError("centroids must be a non-empty 2-D array")

    def map_fn(_idx, point) -> Iterable[KeyValue]:
        p = np.asarray(point, dtype=float)
        d = ((cents - p) ** 2).sum(axis=1)
        yield (int(d.argmin()), tuple(p))

    def reduce_fn(cluster, members) -> Iterable[KeyValue]:
        arr = np.asarray(members, dtype=float)
        yield (cluster, tuple(arr.mean(axis=0)))

    records = list(enumerate(points))
    out = run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=n_reduces, faults=faults
    )
    # Keep centroids for clusters that received no points.
    seen = dict(out.pairs)
    full = [
        (i, seen.get(i, tuple(cents[i]))) for i in range(len(cents))
    ]
    out.pairs = full
    return out


def kmeans(
    points: Sequence[Sequence[float]],
    k: int,
    iterations: int = 10,
    seed: int = 0,
    tol: float = 1e-6,
    faults: FaultPlan = NO_FAULTS,
) -> Tuple[List[Tuple[float, ...]], int]:
    """Full k-means as chained MapReduce jobs.

    Returns ``(centroids, iterations_run)``; stops early when centroids
    move less than ``tol``.  Demonstrates iterative MapReduce — the
    workload class for which intermediate-data availability matters
    most (every iteration re-reads the previous one's output).
    """
    if k < 1:
        raise LocalRuntimeError("k must be >= 1")
    if len(points) < k:
        raise LocalRuntimeError("need at least k points")
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(points), size=k, replace=False)
    centroids = [tuple(map(float, points[i])) for i in idx]
    for it in range(1, iterations + 1):
        out = kmeans_iteration(points, centroids, faults=faults)
        new = [c for _i, c in sorted(out.pairs)]
        shift = max(
            float(np.linalg.norm(np.subtract(a, b)))
            for a, b in zip(centroids, new)
        )
        centroids = new
        if shift < tol:
            return centroids, it
    return centroids, iterations


# ======================================================================
# Bioinformatics: k-mer counting
# ======================================================================
def kmer_count(
    sequences: Sequence[str],
    k: int = 3,
    n_reduces: int = 4,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Count k-mers across DNA/RNA sequences (the CloudBlast-style
    bioinformatics use case the paper cites [12])."""
    if k < 1:
        raise LocalRuntimeError("k must be >= 1")

    def map_fn(_idx, seq: str) -> Iterable[KeyValue]:
        s = seq.upper()
        for i in range(len(s) - k + 1):
            yield (s[i : i + k], 1)

    def reduce_fn(kmer, counts) -> Iterable[KeyValue]:
        yield (kmer, sum(counts))

    records = list(enumerate(sequences))
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=n_reduces,
        combiner=reduce_fn, faults=faults,
    )


# ======================================================================
# Log analysis: histogram
# ======================================================================
def histogram(
    values: Sequence[float],
    bins: int = 10,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    faults: FaultPlan = NO_FAULTS,
) -> JobOutput:
    """Bin numeric values (bin index -> count) via MapReduce."""
    if bins < 1:
        raise LocalRuntimeError("bins must be >= 1")
    if not values:
        raise LocalRuntimeError("no values")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    width = (hi - lo) / bins

    def map_fn(_idx, v: float) -> Iterable[KeyValue]:
        b = min(bins - 1, max(0, int((v - lo) / width)))
        yield (b, 1)

    def reduce_fn(b, counts) -> Iterable[KeyValue]:
        yield (b, sum(counts))

    records = list(enumerate(values))
    return run_mapreduce(
        map_fn, reduce_fn, records, n_reduces=min(bins, 4),
        combiner=reduce_fn, faults=faults,
    )
