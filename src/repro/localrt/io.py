"""Input splitting and shuffle plumbing for the functional engine."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..errors import LocalRuntimeError
from .api import KeyValue, Partitioner


def split_records(
    records: Sequence[KeyValue], n_splits: int
) -> List[List[KeyValue]]:
    """Round-robin-free contiguous splitting (like HDFS blocks)."""
    if n_splits < 1:
        raise LocalRuntimeError("n_splits must be >= 1")
    n = len(records)
    if n == 0:
        return [[] for _ in range(n_splits)]
    base, extra = divmod(n, n_splits)
    out, start = [], 0
    for i in range(n_splits):
        size = base + (1 if i < extra else 0)
        out.append(list(records[start : start + size]))
        start += size
    return out


def split_text(text: str, n_splits: int) -> List[List[KeyValue]]:
    """Line-oriented text input: key = line number, value = line."""
    records = [(i, line) for i, line in enumerate(text.splitlines())]
    return split_records(records, n_splits)


def partition(
    pairs: Iterable[KeyValue], n_reduces: int, partitioner: Partitioner
) -> List[List[KeyValue]]:
    """Scatter map output into reduce partitions."""
    out: List[List[KeyValue]] = [[] for _ in range(n_reduces)]
    for k, v in pairs:
        idx = partitioner(k, n_reduces)
        if not 0 <= idx < n_reduces:
            raise LocalRuntimeError(
                f"partitioner returned {idx} for {n_reduces} reduces"
            )
        out[idx].append((k, v))
    return out


def group_by_key(pairs: Iterable[KeyValue]) -> Dict[Any, List[Any]]:
    """The sort/group step between shuffle and reduce."""
    grouped: Dict[Any, List[Any]] = {}
    for k, v in pairs:
        grouped.setdefault(k, []).append(v)
    return grouped
