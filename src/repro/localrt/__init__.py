"""Functional in-process MapReduce engine (S12) + application library.

Owns the *semantic* side of MapReduce: a real (non-simulated)
in-process engine with the classic applications (word count, grep,
join, histogram, inverted index, k-means, k-mer counting) and
fault-injection hooks — the functional complement to the performance
simulator, validating that the programming model the paper assumes
(Section II) actually computes what it should.

See docs/ARCHITECTURE.md#local-runtime for the layer map.
"""

from .api import JobOutput, MapReduceJob, default_partitioner
from .apps import (
    grep_count,
    histogram,
    inverted_index,
    join,
    kmeans,
    kmeans_iteration,
    kmer_count,
    word_count,
)
from .faults import NO_FAULTS, FaultPlan, InjectedFault
from .io import group_by_key, partition, split_records, split_text
from .runner import LocalRunner, run_mapreduce

__all__ = [
    "MapReduceJob",
    "JobOutput",
    "LocalRunner",
    "run_mapreduce",
    "FaultPlan",
    "InjectedFault",
    "NO_FAULTS",
    "default_partitioner",
    "split_records",
    "split_text",
    "partition",
    "group_by_key",
    "word_count",
    "grep_count",
    "inverted_index",
    "join",
    "kmeans",
    "kmeans_iteration",
    "kmer_count",
    "histogram",
]
