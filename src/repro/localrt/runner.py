"""The functional MapReduce runner.

Executes a :class:`~repro.localrt.api.MapReduceJob` over real input
records with retries under fault injection.  Execution is
deterministic: task order, partitioning and output ordering do not
depend on thread scheduling (maps can optionally run on a thread pool,
but results are collected in task order).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..errors import LocalRuntimeError
from .api import JobOutput, KeyValue, MapReduceJob
from .faults import NO_FAULTS, FaultPlan, InjectedFault
from .io import group_by_key, partition, split_records


class LocalRunner:
    """Runs functional jobs; one instance may run many jobs."""

    def __init__(
        self, faults: FaultPlan = NO_FAULTS, max_workers: Optional[int] = None
    ) -> None:
        self.faults = faults
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def run(
        self,
        job: MapReduceJob,
        records: Sequence[KeyValue],
        n_maps: Optional[int] = None,
    ) -> JobOutput:
        job.validate()
        n_maps = n_maps or max(1, min(len(records), 8))
        splits = split_records(records, n_maps)
        output = JobOutput(pairs=[])

        map_results = self._run_maps(job, splits, output)

        # Shuffle: scatter every map's output into reduce partitions.
        partitions: List[List[KeyValue]] = [[] for _ in range(job.n_reduces)]
        for result in map_results:
            for idx, part in enumerate(partition(result, job.n_reduces,
                                                 job.partitioner)):
                partitions[idx].extend(part)
        output.partitions = partitions

        # Reduce phase.
        for idx, part in enumerate(partitions):
            reduced = self._run_with_retries(
                job,
                lambda: self._reduce_once(job, part),
                is_map=False,
                output=output,
                what=f"reduce {idx}",
            )
            output.pairs.extend(reduced)
        output.pairs.sort(key=lambda kv: repr(kv[0]))
        return output

    # ------------------------------------------------------------------
    def _run_maps(self, job, splits, output) -> List[List[KeyValue]]:
        def one_map(split):
            return self._run_with_retries(
                job,
                lambda: self._map_once(job, split),
                is_map=True,
                output=output,
                what="map",
            )

        if self.max_workers and self.max_workers > 1:
            # Threads execute; results are collected in task order so
            # the run stays deterministic.
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(one_map, splits))
        return [one_map(split) for split in splits]

    def _map_once(self, job, split) -> List[KeyValue]:
        if self.faults.map_attempt_fails():
            raise InjectedFault("map attempt lost its node")
        out: List[KeyValue] = []
        for k, v in split:
            out.extend(job.map_fn(k, v))
        if job.combiner is not None:
            combined: List[KeyValue] = []
            for k, values in group_by_key(out).items():
                combined.extend(job.combiner(k, values))
            return combined
        return out

    def _reduce_once(self, job, part) -> List[KeyValue]:
        if self.faults.reduce_attempt_fails():
            raise InjectedFault("reduce attempt lost its node")
        out: List[KeyValue] = []
        for k, values in sorted(
            group_by_key(part).items(), key=lambda kv: repr(kv[0])
        ):
            out.extend(job.reduce_fn(k, values))
        return out

    def _run_with_retries(self, job, fn, is_map, output, what):
        for attempt in range(job.max_attempts):
            if is_map:
                output.map_attempts += 1
            else:
                output.reduce_attempts += 1
            try:
                return fn()
            except InjectedFault:
                if is_map:
                    output.map_failures += 1
                else:
                    output.reduce_failures += 1
        raise LocalRuntimeError(
            f"{what} failed {job.max_attempts} times (footnote-1 limit)"
        )


def run_mapreduce(
    map_fn,
    reduce_fn,
    records: Sequence[KeyValue],
    n_reduces: int = 2,
    n_maps: Optional[int] = None,
    combiner=None,
    faults: FaultPlan = NO_FAULTS,
    max_workers: Optional[int] = None,
) -> JobOutput:
    """One-call convenience wrapper (see examples/real_wordcount.py)."""
    job = MapReduceJob(
        map_fn=map_fn, reduce_fn=reduce_fn, n_reduces=n_reduces,
        combiner=combiner,
    )
    return LocalRunner(faults=faults, max_workers=max_workers).run(
        job, records, n_maps=n_maps
    )
