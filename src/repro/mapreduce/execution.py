"""Attempt execution engine.

Runs map/reduce attempts phase by phase on the simulated clock with the
paper's VM-pause semantics (Section III): while an attempt's node is
unavailable no compute progress is made and its in-flight I/O aborts;
on resume the current I/O step restarts and compute continues from
where it froze.

Three layers of "suspended" exist deliberately:

* **physical** — the node is down *now*; runners pause instantly
  (they're on the node), but the JobTracker cannot see this;
* **judged** — after SuspensionInterval without heartbeats the MOON
  JobTracker flags the attempts INACTIVE (Section V-A), feeding the
  frozen-task list.  Hadoop has no such judgement: it only ever sees
  stalled progress, then kills at TrackerExpiryInterval;
* **job-held** — the service layer paused the whole *job* (SLO-aware
  preemption): :meth:`AttemptRunner.hold` banks compute progress with
  the same mechanics as a physical pause, but the flag belongs to the
  job, so a node coming back up must not wake the attempt —
  only :meth:`AttemptRunner.release` (the job resuming) may.

Map phases:    read input -> compute -> write intermediate
Reduce phases: shuffle -> sort -> compute -> write output
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Optional

from ..dfs import FileKind
from ..errors import BlockUnavailable
from .task import AttemptState, TaskAttempt

#: Progress weight of each map phase (Hadoop-like: compute dominates).
MAP_WEIGHTS = (0.15, 0.70, 0.15)
#: Reduce thirds: shuffle / sort / reduce+write (paper II-C wording).
REDUCE_WEIGHTS = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)


class _ComputeStep:
    """A pausable compute timer."""

    def __init__(self, runner: "AttemptRunner", seconds: float, on_done) -> None:
        self.runner = runner
        self.remaining = seconds
        self.on_done = on_done
        self.started_at: Optional[float] = None
        self.event = None
        self.total = max(seconds, 1e-9)

    def start(self) -> None:
        sim = self.runner.rt.sim
        self.started_at = sim.now
        self.event = sim.call_after(self.remaining, self._fire)

    def _fire(self) -> None:
        self.event = None
        self.remaining = 0.0
        self.on_done()

    def pause(self) -> None:
        if self.event is not None:
            sim = self.runner.rt.sim
            self.remaining -= sim.now - self.started_at
            self.event.cancel()
            self.event = None

    def resume(self) -> None:
        if self.remaining > 0.0 and self.event is None:
            self.start()

    def cancel(self) -> None:
        if self.event is not None:
            self.event.cancel()
            self.event = None

    def fraction_done(self) -> float:
        if self.started_at is None:
            return 0.0
        done = self.total - self._live_remaining()
        return min(1.0, max(0.0, done / self.total))

    def _live_remaining(self) -> float:
        if self.event is None:
            return self.remaining
        return self.remaining - (self.runner.rt.sim.now - self.started_at)


class AttemptRunner:
    """Base machinery shared by map and reduce runners."""

    def __init__(self, rt, attempt: TaskAttempt) -> None:
        self.rt = rt
        self.attempt = attempt
        self.node = rt.cluster.node(attempt.node_id)
        self.phase = 0
        self.paused = not self.node.available
        #: Job-level preemption hold (service layer).  Orthogonal to
        #: ``paused``: a held attempt stays paused across physical
        #: node resumes until the job itself is resumed.
        self.job_held = False
        self.done = False
        self._io_op = None
        self._compute: Optional[_ComputeStep] = None
        attempt.runner = self

    # ------------------------------------------------------------------
    # Lifecycle driven by the TaskTracker / JobTracker
    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self.paused:
            self._enter_phase()

    def pause(self) -> None:
        """Physical node suspension."""
        if self.done or self.paused:
            return
        self.paused = True
        if self._compute is not None:
            self._compute.pause()
        self._cancel_io()

    def resume(self) -> None:
        """Physical node resumption: restart the interrupted step.

        A job-held attempt stays paused — its pause belongs to the
        job, not the node, and only :meth:`release` may wake it."""
        if self.done or not self.paused or self.job_held:
            return
        self.paused = False
        if self._compute is not None:
            self._compute.resume()
        else:
            self._enter_phase()

    def hold(self) -> None:
        """Job-level preemption pause (service layer).

        Same mechanics as a physical :meth:`pause` — compute progress
        is banked, in-flight I/O aborts and restarts on wake — but the
        hold outlives physical node churn: the attempt wakes only when
        the *job* is resumed."""
        if self.done or self.job_held:
            return
        self.job_held = True
        if not self.paused:
            self.pause()

    def release(self) -> None:
        """Lift the job-level hold; wake the attempt if its node is up.

        On a physically-unavailable node the attempt stays paused and
        the normal VM-resume path wakes it when the node returns."""
        if self.done or not self.job_held:
            return
        self.job_held = False
        if self.node.available:
            self.resume()

    def kill(self) -> None:
        self.done = True
        self._cancel_io()
        if self._compute is not None:
            self._compute.cancel()
            self._compute = None

    # ------------------------------------------------------------------
    def _cancel_io(self) -> None:
        if self._io_op is not None:
            self._io_op.cancel()
            self._io_op = None

    def _finish_success(self, output_file=None) -> None:
        self.done = True
        self.attempt.progress = 1.0
        self.rt.jobtracker.attempt_succeeded(self.attempt, output_file)

    def _finish_failure(self, reason: str) -> None:
        self.done = True
        self.rt.jobtracker.attempt_failed(self.attempt, reason)

    def _io_failed_or_pause(self, retry, reason: str) -> None:
        """Common I/O failure handling: if our node is down this is a
        suspension (wait for resume); otherwise report the failure."""
        self._io_op = None
        if self.done:
            return
        if not self.node.available:
            # Physical suspension beat the callback: wait for resume.
            self.paused = True
            return
        retry(reason)

    # Picklable I/O continuations (snapshot/resume): callbacks handed
    # to the DFS/network must never be local closures.
    def _read_io_failed(self, e) -> None:
        self._io_failed_or_pause(self._read_failed, str(e))

    def _write_io_failed(self, e) -> None:
        self._io_failed_or_pause(self._write_failed, str(e))

    def _read_failed(self, reason: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def _write_failed(self, reason: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def mark(self, name: str) -> None:
        self.attempt.phase_marks[name] = self.rt.sim.now

    # Subclasses implement -------------------------------------------------
    def _enter_phase(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def update_progress(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class MapRunner(AttemptRunner):
    """read input block -> compute -> write intermediate file."""

    def _enter_phase(self) -> None:
        if self.done or self.paused:
            return
        if self.phase == 0:
            self._read_input()
        elif self.phase == 1:
            self._start_compute()
        else:
            self._write_output()

    # -- phase 0: input ---------------------------------------------------
    def _read_input(self) -> None:
        task = self.attempt.task
        block = task.input_block
        if block is None or block.size_mb <= 0:
            self._advance_after_read()
            return
        self._io_op = self.rt.dfs.read_block(
            block,
            self.attempt.node_id,
            on_complete=self._on_read_ok,
            on_fail=self._read_io_failed,
        )

    def _on_read_ok(self) -> None:
        self._io_op = None
        self._advance_after_read()

    def _advance_after_read(self) -> None:
        self.mark("read_done")
        self.phase = 1
        self.attempt.progress = MAP_WEIGHTS[0]
        self._enter_phase()

    def _read_failed(self, reason: str) -> None:
        # Input genuinely unavailable (footnote 1 path).
        self._finish_failure(f"input unavailable: {reason}")

    # -- phase 1: compute ---------------------------------------------------
    def _start_compute(self) -> None:
        seconds = self.attempt.task.job.spec.map_cpu_seconds / self.node.spec.cpu_scale
        self._compute = _ComputeStep(self, seconds, self._on_compute_done)
        self._compute.start()

    def _on_compute_done(self) -> None:
        self._compute = None
        self.mark("compute_done")
        self.phase = 2
        self.attempt.progress = MAP_WEIGHTS[0] + MAP_WEIGHTS[1]
        self._enter_phase()

    # -- phase 2: write intermediate ---------------------------------------
    def _write_output(self) -> None:
        task = self.attempt.task
        spec = task.job.spec
        path = task.job.intermediate_path(task.index, self.attempt.attempt_id)
        if self.rt.namenode.exists(path):  # restart after suspension
            self.rt.namenode.delete_file(path)
        kind = (
            FileKind.RELIABLE if spec.intermediate_reliable
            else FileKind.OPPORTUNISTIC
        )
        self._io_op = self.rt.dfs.write_file(
            path,
            spec.map_output_mb,
            kind,
            spec.intermediate_rf,
            client_node=self.attempt.node_id,
            on_complete=partial(self._on_write_ok, path),
            on_fail=self._write_io_failed,
            block_size_mb=max(spec.map_output_mb, 1.0),
        )

    def _on_write_ok(self, path: str) -> None:
        self._io_op = None
        self.mark("write_done")
        self._finish_success(self.rt.namenode.file(path))

    def _write_failed(self, reason: str) -> None:
        self._finish_failure(f"intermediate write failed: {reason}")

    # ------------------------------------------------------------------
    def update_progress(self) -> None:
        p = sum(MAP_WEIGHTS[: self.phase])
        if self.phase == 1 and self._compute is not None:
            p += MAP_WEIGHTS[1] * self._compute.fraction_done()
        self.attempt.progress = min(1.0, p)


class ReduceRunner(AttemptRunner):
    """shuffle -> sort -> compute -> write output."""

    #: Fetch retries back off exponentially up to this ceiling, so a
    #: stalled shuffle does not flood the event queue for hours.
    MAX_RETRY_INTERVAL = 120.0

    def __init__(self, rt, attempt: TaskAttempt) -> None:
        super().__init__(rt, attempt)
        self.fetched: set = set()  # map indices fetched
        self._inflight: dict = {}  # map index -> ReadOp
        self._retry_events: dict = {}  # map index -> Event
        self._retry_counts: dict = {}  # map index -> consecutive failures
        self.shuffled_mb = 0.0
        # Fetch candidates as a lazy min-heap of map indices, so each
        # pump touches only ready maps instead of rescanning the whole
        # map list (O(maps) per completion -> O(maps^2) per reduce).
        self._ready_heap: list = []
        self._ready_stale = True

    # ------------------------------------------------------------------
    def _enter_phase(self) -> None:
        if self.done or self.paused:
            return
        if self.phase == 0:
            self._shuffle_pump()
        elif self.phase == 1:
            self._start_sort()
        elif self.phase == 2:
            self._start_reduce_compute()
        else:
            self._write_output()

    def pause(self) -> None:
        if self.done or self.paused:
            return
        super().pause()
        for op in self._inflight.values():
            op.cancel()
        self._inflight.clear()
        for ev in self._retry_events.values():
            ev.cancel()
        self._retry_events.clear()

    def resume(self) -> None:
        if self.done or not self.paused or self.job_held:
            return
        self.paused = False
        if self._compute is not None:
            self._compute.resume()
        elif self.phase == 0:
            self._ready_stale = True  # cancelled fetches must re-enter
            self._shuffle_pump()
        else:
            self._enter_phase()

    def kill(self) -> None:
        super().kill()
        for op in self._inflight.values():
            op.cancel()
        self._inflight.clear()
        for ev in self._retry_events.values():
            ev.cancel()
        self._retry_events.clear()

    # -- phase 0: shuffle ---------------------------------------------------
    def notify_map_completed(self, map_index: int) -> None:
        """JobTracker push: a (re-)executed map's output is ready."""
        ev = self._retry_events.pop(map_index, None)
        if ev is not None:
            ev.cancel()
        if not self._ready_stale:
            heapq.heappush(self._ready_heap, map_index)
        if not self.done and not self.paused and self.phase == 0:
            self._shuffle_pump()

    def _rebuild_ready(self) -> None:
        """Full rescan of the map list (start of phase 0 and resume)."""
        self._ready_stale = False
        self._ready_heap = [
            m.index
            for m in self.attempt.task.job.maps
            if m.index not in self.fetched
            and m.index not in self._inflight
            and m.index not in self._retry_events
            and m.complete
            and m.output_file is not None
        ]
        heapq.heapify(self._ready_heap)

    def _shuffle_pump(self) -> None:
        if self.done or self.paused or self.phase != 0:
            return
        if self._ready_stale:
            self._rebuild_ready()
        job = self.attempt.task.job
        maps = job.maps
        parallel = self.rt.shuffle_cfg.parallel_copies
        heap = self._ready_heap
        while heap and len(self._inflight) < parallel:
            i = heapq.heappop(heap)
            # Entries can go stale (fetched meanwhile, duplicate push,
            # map re-executed): drop them — a later completion
            # notification re-enqueues whatever becomes ready again.
            if (
                i in self.fetched
                or i in self._inflight
                or i in self._retry_events
            ):
                continue
            m = maps[i]
            if not m.complete or m.output_file is None:
                continue
            self._start_fetch(m)
        self._check_shuffle_done()

    def _start_fetch(self, map_task) -> None:
        job = self.attempt.task.job
        size = job.spec.partition_mb(job.n_reduces)
        block = map_task.output_file.blocks[0]
        index = map_task.index
        self._inflight[index] = self.rt.dfs.read_block(
            block,
            self.attempt.node_id,
            on_complete=partial(self._fetch_ok, index, size),
            on_fail=partial(self._fetch_failed, index, map_task),
            size_mb=size,
        )

    def _fetch_ok(self, index: int, size: float) -> None:
        self._inflight.pop(index, None)
        if self.done:
            return
        self.fetched.add(index)
        self._retry_counts.pop(index, None)
        self.shuffled_mb += size
        self._shuffle_pump()

    def _fetch_failed(self, index: int, map_task, err) -> None:
        self._inflight.pop(index, None)
        if self.done:
            return
        if not self.node.available:
            self.paused = True
            return
        if isinstance(err, BlockUnavailable):
            self.rt.jobtracker.report_fetch_failure(
                self.attempt.task, map_task
            )
        # Retry with exponential backoff; a re-executed map's
        # completion notification re-triggers us immediately.
        n = self._retry_counts.get(index, 0)
        self._retry_counts[index] = n + 1
        delay = min(
            self.rt.shuffle_cfg.fetch_retry_interval * (2.0**n),
            self.MAX_RETRY_INTERVAL,
        )
        self._retry_events[index] = self.rt.sim.call_after(
            delay, self._retry_fetch, index
        )

    def _retry_fetch(self, index: int) -> None:
        self._retry_events.pop(index, None)
        if not self._ready_stale:
            heapq.heappush(self._ready_heap, index)
        if not self.done and not self.paused and self.phase == 0:
            self._shuffle_pump()

    def _check_shuffle_done(self) -> None:
        job = self.attempt.task.job
        if len(self.fetched) == len(job.maps):
            self.mark("shuffle_done")
            self.phase = 1
            self._enter_phase()

    # -- phase 1: sort -------------------------------------------------------
    def _start_sort(self) -> None:
        spec = self.attempt.task.job.spec
        seconds = (
            self.shuffled_mb * spec.sort_seconds_per_mb / self.node.spec.cpu_scale
        )
        self._compute = _ComputeStep(self, seconds, self._on_sort_done)
        self._compute.start()

    def _on_sort_done(self) -> None:
        self._compute = None
        self.mark("sort_done")
        self.phase = 2
        self._enter_phase()

    # -- phase 2: reduce compute ---------------------------------------------
    def _start_reduce_compute(self) -> None:
        spec = self.attempt.task.job.spec
        seconds = spec.reduce_cpu_seconds / self.node.spec.cpu_scale
        self._compute = _ComputeStep(self, seconds, self._on_reduce_done)
        self._compute.start()

    def _on_reduce_done(self) -> None:
        self._compute = None
        self.mark("reduce_done")
        self.phase = 3
        self._enter_phase()

    # -- phase 3: write output -------------------------------------------------
    def _write_output(self) -> None:
        task = self.attempt.task
        job = task.job
        size = job.spec.resolve_reduce_output_mb(job.n_reduces)
        path = job.output_path(task.index, self.attempt.attempt_id)
        if size <= 0:
            self._finish_success(None)
            return
        if self.rt.namenode.exists(path):
            self.rt.namenode.delete_file(path)
        self._io_op = self.rt.dfs.write_file(
            path,
            size,
            FileKind.OPPORTUNISTIC,  # converted to reliable at commit
            job.spec.output_rf,
            client_node=self.attempt.node_id,
            on_complete=partial(self._on_write_ok, path),
            on_fail=self._write_io_failed,
        )

    def _on_write_ok(self, path: str) -> None:
        self._io_op = None
        self.mark("write_done")
        self._finish_success(self.rt.namenode.file(path))

    def _write_failed(self, reason: str) -> None:
        self._finish_failure(f"output write failed: {reason}")

    # ------------------------------------------------------------------
    def update_progress(self) -> None:
        job = self.attempt.task.job
        n = max(1, len(job.maps))
        if self.phase == 0:
            p = REDUCE_WEIGHTS[0] * len(self.fetched) / n
        elif self.phase == 1:
            p = REDUCE_WEIGHTS[0]
            if self._compute is not None:
                p += REDUCE_WEIGHTS[1] * self._compute.fraction_done()
        else:
            p = REDUCE_WEIGHTS[0] + REDUCE_WEIGHTS[1]
            if self.phase >= 2 and self._compute is not None:
                p += REDUCE_WEIGHTS[2] * 0.5 * self._compute.fraction_done()
            elif self.phase == 3:
                p += REDUCE_WEIGHTS[2] * 0.5
        self.attempt.progress = min(1.0, p)


def make_runner(rt, attempt: TaskAttempt) -> AttemptRunner:
    """Instantiate the map or reduce runner for an attempt."""
    if attempt.task.is_map:
        return MapRunner(rt, attempt)
    return ReduceRunner(rt, attempt)
