"""TaskTracker: per-node execution slots + attempt registry."""

from __future__ import annotations

from typing import Dict, List

from ..cluster import Node
from .task import AttemptState, TaskAttempt, TaskType


class TaskTracker:
    """The worker-side agent (paper II-C): M map + R reduce slots.

    Attempts are kept in an insertion-ordered dict (never an unordered
    set): suspension/kill sweeps iterate it, and their order feeds the
    event queue — id-hashed set iteration would make runs differ
    across processes.  Per-type occupancy is counted on add/release so
    the scheduler's free-slot checks are O(1) instead of scanning.
    """

    def __init__(self, node: Node, view=None, busy_registry=None) -> None:
        self.node = node
        #: Honest observers cannot read ground truth: ``usable`` then
        #: rests purely on the suspicion flags the detector maintains.
        self._honest_view = view is not None and view.honest
        #: Shared ``{node_id: tracker}`` map of trackers hosting live
        #: attempts (owned by the JobTracker): the heartbeat's progress
        #: refresh walks it instead of every tracker, so a 10k-node
        #: cluster pays for its busy handful, not its idle thousands.
        self._busy_registry = busy_registry
        self.map_slots = node.spec.map_slots
        self.reduce_slots = node.spec.reduce_slots
        self.attempts: Dict[TaskAttempt, None] = {}
        self._occupied_maps = 0
        self._occupied_reduces = 0
        #: MOON judgement after SuspensionInterval of silence (V-A).
        self.suspected = False
        #: JobTracker judgement after TrackerExpiryInterval of silence.
        self.dead = False
        #: Graceful decommission: run existing attempts to completion
        #: but accept no new work (service autoscaling).
        self.draining = False

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def usable(self) -> bool:
        """Can receive new work right now (as far as the observer knows)."""
        if self._honest_view:
            return not (self.dead or self.suspected or self.draining)
        return (
            self.node.available
            and not self.dead
            and not self.suspected
            and not self.draining
        )

    def occupied(self, task_type: TaskType) -> int:
        return (
            self._occupied_maps
            if task_type is TaskType.MAP
            else self._occupied_reduces
        )

    def free_slots(self, task_type: TaskType) -> int:
        # The max(0, ...) clamp matters under preemption: resuming a
        # paused job re-adds its held attempts to their old trackers,
        # which may transiently overcommit a slot type — the tracker
        # then simply accepts no new work until occupancy drops back
        # below capacity (see ``overcommitted``).
        if task_type is TaskType.MAP:
            return max(0, self.map_slots - self._occupied_maps)
        return max(0, self.reduce_slots - self._occupied_reduces)

    def overcommitted(self, task_type: TaskType) -> int:
        """Attempts beyond slot capacity (job-resume transients only)."""
        if task_type is TaskType.MAP:
            return max(0, self._occupied_maps - self.map_slots)
        return max(0, self._occupied_reduces - self.reduce_slots)

    def total_slots(self) -> int:
        return self.map_slots + self.reduce_slots

    def busy_slots(self) -> int:
        return self._occupied_maps + self._occupied_reduces

    # ------------------------------------------------------------------
    def add(self, attempt: TaskAttempt) -> None:
        if attempt not in self.attempts:
            self.attempts[attempt] = None
            if attempt.task.is_map:
                self._occupied_maps += 1
            else:
                self._occupied_reduces += 1
            if self._busy_registry is not None:
                self._busy_registry[self.node_id] = self

    def release(self, attempt: TaskAttempt) -> None:
        if attempt in self.attempts:
            del self.attempts[attempt]
            if attempt.task.is_map:
                self._occupied_maps -= 1
            else:
                self._occupied_reduces -= 1
            if self._busy_registry is not None and not self.attempts:
                self._busy_registry.pop(self.node_id, None)

    def running_attempts(self) -> List[TaskAttempt]:
        return [a for a in self.attempts if not a.finished]

    def mark_suspected(self) -> None:
        self.suspected = True
        for a in self.running_attempts():
            if a.state is AttemptState.RUNNING:
                a.state = AttemptState.INACTIVE

    def mark_recovered(self) -> None:
        self.suspected = False
        for a in self.running_attempts():
            if a.state is AttemptState.INACTIVE:
                a.state = AttemptState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, on in (("S", self.suspected), ("D", self.dead)) if on
        )
        return f"<Tracker n{self.node_id} {len(self.attempts)} att {flags}>"
