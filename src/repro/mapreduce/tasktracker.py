"""TaskTracker: per-node execution slots + attempt registry."""

from __future__ import annotations

from typing import List, Set

from ..cluster import Node
from .task import AttemptState, TaskAttempt, TaskType


class TaskTracker:
    """The worker-side agent (paper II-C): M map + R reduce slots."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.map_slots = node.spec.map_slots
        self.reduce_slots = node.spec.reduce_slots
        self.attempts: Set[TaskAttempt] = set()
        #: MOON judgement after SuspensionInterval of silence (V-A).
        self.suspected = False
        #: JobTracker judgement after TrackerExpiryInterval of silence.
        self.dead = False

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def usable(self) -> bool:
        """Can receive new work right now."""
        return self.node.available and not self.dead and not self.suspected

    def occupied(self, task_type: TaskType) -> int:
        return sum(
            1
            for a in self.attempts
            if a.task.task_type is task_type and not a.finished
        )

    def free_slots(self, task_type: TaskType) -> int:
        cap = self.map_slots if task_type is TaskType.MAP else self.reduce_slots
        return max(0, cap - self.occupied(task_type))

    def total_slots(self) -> int:
        return self.map_slots + self.reduce_slots

    # ------------------------------------------------------------------
    def add(self, attempt: TaskAttempt) -> None:
        self.attempts.add(attempt)

    def release(self, attempt: TaskAttempt) -> None:
        self.attempts.discard(attempt)

    def running_attempts(self) -> List[TaskAttempt]:
        return [a for a in self.attempts if not a.finished]

    def mark_suspected(self) -> None:
        self.suspected = True
        for a in self.running_attempts():
            if a.state is AttemptState.RUNNING:
                a.state = AttemptState.INACTIVE

    def mark_recovered(self) -> None:
        self.suspected = False
        for a in self.running_attempts():
            if a.state is AttemptState.INACTIVE:
                a.state = AttemptState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, on in (("S", self.suspected), ("D", self.dead)) if on
        )
        return f"<Tracker n{self.node_id} {len(self.attempts)} att {flags}>"
