"""MapReduce runtime (S6): JobTracker, TaskTrackers, tasks, shuffle."""

from .execution import MapRunner, ReduceRunner, make_runner
from .job import Job, JobState
from .jobtracker import JobTracker, Runtime
from .task import AttemptState, Task, TaskAttempt, TaskState, TaskType
from .tasktracker import TaskTracker

__all__ = [
    "Job",
    "JobState",
    "JobTracker",
    "Runtime",
    "Task",
    "TaskAttempt",
    "TaskType",
    "TaskState",
    "AttemptState",
    "TaskTracker",
    "MapRunner",
    "ReduceRunner",
    "make_runner",
]
