"""MapReduce runtime (S6): JobTracker, TaskTrackers, tasks, shuffle.

Owns task execution end to end: pull-style assignment on heartbeat
ticks (paper II-C), pausable map/reduce phase machines with the
VM-pause semantics of Section III, the O(ready) shuffle pump with
fetch-failure handling (Section VI-B's re-execution fast path), both
failure-handling generations (Hadoop kill-at-expiry vs MOON's
suspended/dead judgement, Section V-A), and the graceful-drain watch
that completes dedicated-node decommissions.

This is the layer behind the job-time comparisons of Figs. 4-7 and
the execution profiles of Table II; see
docs/ARCHITECTURE.md#mapreduce-runtime.
"""

from .execution import MapRunner, ReduceRunner, make_runner
from .job import Job, JobState
from .jobtracker import JobTracker, Runtime
from .task import AttemptState, Task, TaskAttempt, TaskState, TaskType
from .tasktracker import TaskTracker

__all__ = [
    "Job",
    "JobState",
    "JobTracker",
    "Runtime",
    "Task",
    "TaskAttempt",
    "TaskType",
    "TaskState",
    "AttemptState",
    "TaskTracker",
    "MapRunner",
    "ReduceRunner",
    "make_runner",
]
