"""Tasks and task attempts.

A :class:`Task` is the unit of work (one map or one reduce); a
:class:`TaskAttempt` is one execution instance on one node.  Attempts
on suspended TaskTrackers become *inactive* — MOON's key observation is
that they may come back, so they are flagged rather than killed
(Section V-A).
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dfs.types import BlockInfo, FileInfo


class TaskType(enum.Enum):
    """Map or reduce."""
    MAP = "map"
    REDUCE = "reduce"

    # Identity hash (C-level) instead of enum's per-call name hash:
    # these members key the hottest dicts in the scheduler (per-state
    # task indices, candidacy maps), tens of millions of lookups per
    # big run.  Member equality is identity, so the hash stays
    # consistent, and dicts iterate in insertion order regardless —
    # no observable behaviour depends on the hash value.
    __hash__ = object.__hash__


class AttemptState(enum.Enum):
    """Attempt lifecycle; INACTIVE is MOON's suspended-not-killed state."""
    RUNNING = "running"
    INACTIVE = "inactive"  # node suspended; may resume (MOON V-A)
    SUCCEEDED = "succeeded"
    FAILED = "failed"  # error (input unavailable, write declined...)
    KILLED = "killed"  # tracker death / redundant speculative copy

    __hash__ = object.__hash__  # see TaskType


class TaskState(enum.Enum):
    """Task lifecycle (PENDING until first launch)."""
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    __hash__ = object.__hash__  # see TaskType


class TaskAttempt:
    """One execution of a task on a specific node."""

    _ids = itertools.count()

    __slots__ = (
        "attempt_id",
        "task",
        "node_id",
        "is_speculative",
        "on_dedicated",
        "_state",
        "active",
        "finished",
        "started_at",
        "finished_at",
        "progress",
        "phase_marks",
        "runner",
        "abandoned",
        "cause",
    )

    def __init__(
        self, task: "Task", node_id: int, now: float,
        is_speculative: bool, on_dedicated: bool,
    ) -> None:
        self.attempt_id = next(TaskAttempt._ids)
        self.task = task
        self.node_id = node_id
        self.is_speculative = is_speculative
        self.on_dedicated = on_dedicated
        self._state = AttemptState.RUNNING
        #: Plain attributes mirroring ``state`` (kept exact by the
        #: setter): the scheduler's per-slot liveness probes read these
        #: millions of times per run, so they must be slot reads, not
        #: property calls re-deriving the same enum comparisons.
        self.active = True
        self.finished = False
        self.started_at = now
        self.finished_at: Optional[float] = None
        self.progress = 0.0
        #: phase name -> completion timestamp (Table II accounting).
        self.phase_marks: dict = {}
        self.runner = None  # set by the execution engine
        #: Suspicion requeue gave this attempt's task back to the
        #: scheduler; if the attempt still finishes, its runtime is
        #: duplicated effort (``wasted_work``).
        self.abandoned = False
        #: Causal parent of this launch: "first" | "speculative" |
        #: "failure" | "suspicion" | "fetch_failure" (why the
        #: scheduler started it — the flight recorder stamps it on the
        #: sched.assign instant and the attempt span so the explain
        #: layer can attribute re-execution time to its root cause).
        self.cause = "first"

    @property
    def state(self) -> AttemptState:
        return self._state

    @state.setter
    def state(self, new: AttemptState) -> None:
        self._state = new
        self.active = new is AttemptState.RUNNING
        self.finished = (
            new is not AttemptState.RUNNING
            and new is not AttemptState.INACTIVE
        )

    def runtime(self, now: float) -> float:
        return (self.finished_at or now) - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Attempt#{self.attempt_id} {self.task} on n{self.node_id} "
            f"{self.state.value} p={self.progress:.2f}>"
        )


class Task:
    """One map or reduce task of a job."""

    __slots__ = (
        "job",
        "task_type",
        "is_map",
        "index",
        "_state",
        "attempts",
        "input_block",
        "output_file",
        "failed_attempts",
        "fetch_failure_reporters",
        "total_fetch_failures",
        "scheduled_order",
        "finished_at",
        "requeue_cause",
    )

    def __init__(self, job, task_type: TaskType, index: int) -> None:
        self.job = job
        self.task_type = task_type
        self.is_map = task_type is TaskType.MAP
        self.index = index
        self._state = TaskState.PENDING
        job.note_state(self, None, TaskState.PENDING)
        self.attempts: List[TaskAttempt] = []
        #: map input (set at staging time).
        self.input_block: Optional["BlockInfo"] = None
        #: map intermediate output (set when the task succeeds).
        self.output_file: Optional["FileInfo"] = None
        self.failed_attempts = 0
        #: reduce task ids that reported failures fetching this map.
        self.fetch_failure_reporters: set = set()
        self.total_fetch_failures = 0
        self.scheduled_order: Optional[int] = None
        self.finished_at: Optional[float] = None
        #: Why the task most recently went back to PENDING ("failure",
        #: "suspicion" or "fetch_failure"); the next launch inherits it
        #: as its attempt cause.  None until a requeue happens.
        self.requeue_cause: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> TaskState:
        return self._state

    @state.setter
    def state(self, new: TaskState) -> None:
        """Transitions keep the job's O(1) pending counters and the
        per-state candidate indices exact (the scheduler probes 'any
        pending work?' once per free slot and walks pending/running
        candidates once per tick)."""
        old = self._state
        if old is new:
            return
        self._state = new
        self.job.note_state(self, old, new)

    @property
    def task_id(self) -> str:
        prefix = "m" if self.is_map else "r"
        return f"{self.job.job_id}-{prefix}{self.index}"

    @property
    def complete(self) -> bool:
        return self._state is TaskState.SUCCEEDED

    def active_attempts(self) -> List[TaskAttempt]:
        return [a for a in self.attempts if a.active]

    def live_attempts(self) -> List[TaskAttempt]:
        """Running or inactive (could still finish if resumed)."""
        return [a for a in self.attempts if not a.finished]

    def has_dedicated_attempt(self) -> bool:
        return any(a.on_dedicated for a in self.live_attempts())

    def is_frozen(self) -> bool:
        """MOON V-A: scheduled, not complete, and *all* copies inactive."""
        if self.complete or not self.attempts:
            return False
        live = self.live_attempts()
        return bool(live) and all(
            a.state is AttemptState.INACTIVE for a in live
        )

    def best_progress(self) -> float:
        if self._state is TaskState.SUCCEEDED:
            return 1.0
        attempts = self.attempts
        if not attempts:
            return 0.0
        return max(a.progress for a in attempts)

    def nodes_with_attempts(self) -> set:
        return {a.node_id for a in self.live_attempts()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.state.value}>"
