"""Tasks and task attempts.

A :class:`Task` is the unit of work (one map or one reduce); a
:class:`TaskAttempt` is one execution instance on one node.  Attempts
on suspended TaskTrackers become *inactive* — MOON's key observation is
that they may come back, so they are flagged rather than killed
(Section V-A).
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dfs.types import BlockInfo, FileInfo


class TaskType(enum.Enum):
    """Map or reduce."""
    MAP = "map"
    REDUCE = "reduce"


class AttemptState(enum.Enum):
    """Attempt lifecycle; INACTIVE is MOON's suspended-not-killed state."""
    RUNNING = "running"
    INACTIVE = "inactive"  # node suspended; may resume (MOON V-A)
    SUCCEEDED = "succeeded"
    FAILED = "failed"  # error (input unavailable, write declined...)
    KILLED = "killed"  # tracker death / redundant speculative copy


class TaskState(enum.Enum):
    """Task lifecycle (PENDING until first launch)."""
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class TaskAttempt:
    """One execution of a task on a specific node."""

    _ids = itertools.count()

    __slots__ = (
        "attempt_id",
        "task",
        "node_id",
        "is_speculative",
        "on_dedicated",
        "state",
        "started_at",
        "finished_at",
        "progress",
        "phase_marks",
        "runner",
        "abandoned",
        "cause",
    )

    def __init__(
        self, task: "Task", node_id: int, now: float,
        is_speculative: bool, on_dedicated: bool,
    ) -> None:
        self.attempt_id = next(TaskAttempt._ids)
        self.task = task
        self.node_id = node_id
        self.is_speculative = is_speculative
        self.on_dedicated = on_dedicated
        self.state = AttemptState.RUNNING
        self.started_at = now
        self.finished_at: Optional[float] = None
        self.progress = 0.0
        #: phase name -> completion timestamp (Table II accounting).
        self.phase_marks: dict = {}
        self.runner = None  # set by the execution engine
        #: Suspicion requeue gave this attempt's task back to the
        #: scheduler; if the attempt still finishes, its runtime is
        #: duplicated effort (``wasted_work``).
        self.abandoned = False
        #: Causal parent of this launch: "first" | "speculative" |
        #: "failure" | "suspicion" | "fetch_failure" (why the
        #: scheduler started it — the flight recorder stamps it on the
        #: sched.assign instant and the attempt span so the explain
        #: layer can attribute re-execution time to its root cause).
        self.cause = "first"

    @property
    def active(self) -> bool:
        return self.state is AttemptState.RUNNING

    @property
    def finished(self) -> bool:
        state = self.state
        return (
            state is AttemptState.SUCCEEDED
            or state is AttemptState.FAILED
            or state is AttemptState.KILLED
        )

    def runtime(self, now: float) -> float:
        return (self.finished_at or now) - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Attempt#{self.attempt_id} {self.task} on n{self.node_id} "
            f"{self.state.value} p={self.progress:.2f}>"
        )


class Task:
    """One map or reduce task of a job."""

    __slots__ = (
        "job",
        "task_type",
        "is_map",
        "index",
        "_state",
        "attempts",
        "input_block",
        "output_file",
        "failed_attempts",
        "fetch_failure_reporters",
        "total_fetch_failures",
        "scheduled_order",
        "finished_at",
        "requeue_cause",
    )

    def __init__(self, job, task_type: TaskType, index: int) -> None:
        self.job = job
        self.task_type = task_type
        self.is_map = task_type is TaskType.MAP
        self.index = index
        self._state = TaskState.PENDING
        job.note_pending(self, +1)
        self.attempts: List[TaskAttempt] = []
        #: map input (set at staging time).
        self.input_block: Optional["BlockInfo"] = None
        #: map intermediate output (set when the task succeeds).
        self.output_file: Optional["FileInfo"] = None
        self.failed_attempts = 0
        #: reduce task ids that reported failures fetching this map.
        self.fetch_failure_reporters: set = set()
        self.total_fetch_failures = 0
        self.scheduled_order: Optional[int] = None
        self.finished_at: Optional[float] = None
        #: Why the task most recently went back to PENDING ("failure",
        #: "suspicion" or "fetch_failure"); the next launch inherits it
        #: as its attempt cause.  None until a requeue happens.
        self.requeue_cause: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> TaskState:
        return self._state

    @state.setter
    def state(self, new: TaskState) -> None:
        """Transitions keep the job's O(1) pending counters exact (the
        scheduler probes 'any pending work?' once per free slot)."""
        old = self._state
        if old is new:
            return
        self._state = new
        if old is TaskState.PENDING:
            self.job.note_pending(self, -1)
        elif new is TaskState.PENDING:
            self.job.note_pending(self, +1)

    @property
    def task_id(self) -> str:
        prefix = "m" if self.is_map else "r"
        return f"{self.job.job_id}-{prefix}{self.index}"

    @property
    def complete(self) -> bool:
        return self._state is TaskState.SUCCEEDED

    def active_attempts(self) -> List[TaskAttempt]:
        return [a for a in self.attempts if a.active]

    def live_attempts(self) -> List[TaskAttempt]:
        """Running or inactive (could still finish if resumed)."""
        return [a for a in self.attempts if not a.finished]

    def has_dedicated_attempt(self) -> bool:
        return any(a.on_dedicated for a in self.live_attempts())

    def is_frozen(self) -> bool:
        """MOON V-A: scheduled, not complete, and *all* copies inactive."""
        if self.complete or not self.attempts:
            return False
        live = self.live_attempts()
        return bool(live) and all(
            a.state is AttemptState.INACTIVE for a in live
        )

    def best_progress(self) -> float:
        if self.complete:
            return 1.0
        if not self.attempts:
            return 0.0
        return max(a.progress for a in self.attempts)

    def nodes_with_attempts(self) -> set:
        return {a.node_id for a in self.live_attempts()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.state.value}>"
