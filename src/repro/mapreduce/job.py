"""Job state: tasks, lifecycle, per-job counters."""

from __future__ import annotations

import enum
import itertools
from collections import Counter
from typing import List, Optional

from ..workloads import JobSpec
from .task import Task, TaskState, TaskType


class JobState(enum.Enum):
    """Job lifecycle: RUNNING -> COMMITTING -> SUCCEEDED / FAILED."""
    PENDING = "pending"
    RUNNING = "running"
    COMMITTING = "committing"  # reduces done; output reaching its factor
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Job:
    """One submitted MapReduce job."""

    _ids = itertools.count()

    def __init__(self, spec: JobSpec, priority: int = 0) -> None:
        spec.validate()
        self.spec = spec
        self.priority = priority
        self.job_id = f"job{next(Job._ids)}"
        self.state = JobState.PENDING
        #: live PENDING-task counts, maintained by Task.state (the
        #: scheduler's has-pending probe runs once per free slot).
        self._pending_maps = 0
        self._pending_reduces = 0
        #: Per-state task indices (``{task.index: task}``), maintained
        #: by :meth:`note_state` from the ``Task.state`` setter so the
        #: scheduler's candidate scans cost O(tasks in that state)
        #: instead of O(all tasks) per probe.  Keyed by task index and
        #: read back in sorted-index order, which is exactly the pool
        #: order the original full-pool comprehensions produced.
        self._pending_idx = {TaskType.MAP: {}, TaskType.REDUCE: {}}
        self._running_idx = {TaskType.MAP: {}, TaskType.REDUCE: {}}
        self._completed_maps = 0
        self._completed_reduces = 0
        #: Assignment-candidacy index wiring, stamped by the JobTracker
        #: at submit: ``_assign_index`` is its shared ``{task_type:
        #: {job: None}}`` map of jobs the walk must consider, kept
        #: exact by :meth:`note_state` (every candidacy-changing fact —
        #: pending/running counts, map completions — flows through task
        #: state transitions).  ``None`` until submitted; must exist
        #: before the first Task below fires ``note_state``.
        self._assign_index = None
        self._slowstart_fraction = 0.0
        self._spec_enabled = True
        self.maps: List[Task] = [
            Task(self, TaskType.MAP, i) for i in range(spec.n_maps)
        ]
        self.reduces: List[Task] = []  # created at submit (slot-dependent)
        self.n_reduces = 0
        self.submitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.counters: Counter = Counter()
        #: Output files still replicating during COMMITTING (the commit
        #: countdown lives here so the continuation pickles).
        self.commit_remaining = 0
        #: set when the job fails (diagnostics / tests).
        self.failure_reason: Optional[str] = None
        #: live count of unfinished speculative attempts, maintained by
        #: the JobTracker (cheap cap checks on every assignment).
        self._spec_active = 0
        #: Submission sequence (set by the JobTracker): the stable
        #: minor key of the priority-ordered active-jobs walk.
        self.submit_seq = 0
        #: SLO-aware preemption (service layer).  ``paused`` jobs are
        #: skipped by the assignment walk and their unfinished attempts
        #: are held (slots released) in ``held_attempts``;
        #: ``deprioritised`` jobs drop to the back of the walk and get
        #: no new speculative copies.  Both default off, so batch runs
        #: are byte-identical with the flags unused.
        self.paused = False
        self.deprioritised = False
        self.held_attempts: List = []

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> List[Task]:
        return self.maps + self.reduces

    @property
    def finished(self) -> bool:
        state = self.state
        return state is JobState.SUCCEEDED or state is JobState.FAILED

    def note_state(self, task: Task, old, new) -> None:
        """Task.state transition hook: keeps the pending counters and
        the per-state indices exact (``old is None`` at task creation).
        """
        tt = task.task_type
        if old is TaskState.PENDING:
            del self._pending_idx[tt][task.index]
            if task.is_map:
                self._pending_maps -= 1
            else:
                self._pending_reduces -= 1
        elif old is TaskState.RUNNING:
            del self._running_idx[tt][task.index]
        elif old is TaskState.SUCCEEDED:
            if task.is_map:
                self._completed_maps -= 1
            else:
                self._completed_reduces -= 1
        if new is TaskState.PENDING:
            self._pending_idx[tt][task.index] = task
            if task.is_map:
                self._pending_maps += 1
            else:
                self._pending_reduces += 1
        elif new is TaskState.RUNNING:
            self._running_idx[tt][task.index] = task
        elif new is TaskState.SUCCEEDED:
            if task.is_map:
                self._completed_maps += 1
            else:
                self._completed_reduces += 1
        if self._assign_index is not None:
            self._sync_candidacy(tt)
            if tt is TaskType.MAP and (
                old is TaskState.SUCCEEDED or new is TaskState.SUCCEEDED
            ):
                # Map completions move the reduce slow-start gate.
                self._sync_candidacy(TaskType.REDUCE)

    def assign_candidate(self, task_type: TaskType) -> bool:
        """Mirror of ``SchedulerPolicy.job_is_candidate`` evaluated
        from the job's own counters (the slow-start fraction and the
        speculation switch are stamped on the job at submit), so the
        index can be maintained at transition time instead of being
        recomputed over every active job on every tick."""
        if self.pending_count(task_type) > 0:
            if task_type is TaskType.MAP:
                return True
            maps = self.maps
            if (
                not maps
                or self._completed_maps / len(maps)
                >= self._slowstart_fraction
            ):
                return True
            if self._spec_enabled and self.any_pending_attempted(task_type):
                return True
        return bool(self._spec_enabled and self._running_idx[task_type])

    def _sync_candidacy(self, task_type: TaskType) -> None:
        idx = self._assign_index[task_type]
        if self.assign_candidate(task_type):
            idx[self] = None
        else:
            idx.pop(self, None)

    def register_candidacy(self, index, slowstart_fraction, spec_enabled):
        """JobTracker submit-time hook: wire the shared index and seed
        this job's entries (task creation predates registration)."""
        self._assign_index = index
        self._slowstart_fraction = slowstart_fraction
        self._spec_enabled = spec_enabled
        self._sync_candidacy(TaskType.MAP)
        self._sync_candidacy(TaskType.REDUCE)

    def unregister_candidacy(self) -> None:
        if self._assign_index is not None:
            self._assign_index[TaskType.MAP].pop(self, None)
            self._assign_index[TaskType.REDUCE].pop(self, None)
            self._assign_index = None

    def pending_count(self, task_type: TaskType) -> int:
        return (
            self._pending_maps
            if task_type is TaskType.MAP
            else self._pending_reduces
        )

    def running_count(self, task_type: TaskType) -> int:
        return len(self._running_idx[task_type])

    def any_pending_attempted(self, task_type: TaskType) -> bool:
        """Any PENDING task that ran before (i.e. was requeued)?  Feeds
        the assignment-walk candidate gate; O(pending of that type)."""
        return any(
            t.attempts for t in self._pending_idx[task_type].values()
        )

    @property
    def elapsed(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def input_path(self) -> str:
        return f"/{self.job_id}/input"

    def intermediate_path(self, map_index: int, attempt_id: int) -> str:
        return f"/{self.job_id}/intermediate/m{map_index}/a{attempt_id}"

    def output_path(self, reduce_index: int, attempt_id: int) -> str:
        return f"/{self.job_id}/output/r{reduce_index}/a{attempt_id}"

    # ------------------------------------------------------------------
    def _incomplete_of(self, task_type: TaskType) -> List[Task]:
        # Incomplete == PENDING or RUNNING (FAILED is terminal and
        # SUCCEEDED is complete): merge the two indices in index order.
        pend = self._pending_idx[task_type]
        run = self._running_idx[task_type]
        if not pend:
            return [run[i] for i in sorted(run)]
        if not run:
            return [pend[i] for i in sorted(pend)]
        merged = {**pend, **run}
        return [merged[i] for i in sorted(merged)]

    def incomplete_tasks(self, task_type: Optional[TaskType] = None) -> List[Task]:
        if task_type is None:
            return self._incomplete_of(TaskType.MAP) + self._incomplete_of(
                TaskType.REDUCE
            )
        return self._incomplete_of(task_type)

    def pending_tasks(self, task_type: TaskType) -> List[Task]:
        idx = self._pending_idx[task_type]
        return [idx[i] for i in sorted(idx)]

    def running_tasks(self, task_type: TaskType) -> List[Task]:
        idx = self._running_idx[task_type]
        return [idx[i] for i in sorted(idx)]

    def maps_completed(self) -> int:
        return self._completed_maps

    def reduces_completed(self) -> int:
        return self._completed_reduces

    def all_maps_done(self) -> bool:
        return self._completed_maps == len(self.maps)

    def all_reduces_done(self) -> bool:
        return self.reduces and self._completed_reduces == len(self.reduces)

    def speculative_attempts_active(self) -> int:
        return self._spec_active

    def recount_speculative(self) -> int:
        """O(attempts) ground truth for the `_spec_active` counter
        (consistency checks in tests)."""
        return sum(
            1
            for t in self.tasks
            for a in t.attempts
            if a.is_speculative and not a.finished
        )

    def average_progress(self, task_type: TaskType) -> float:
        # Left-fold in pool (index) order, exactly like the original
        # ``sum()`` over the started-task comprehension: float addition
        # is order-sensitive and scheduling thresholds compare against
        # this value, so the iteration order is part of the contract.
        pool = self.maps if task_type is TaskType.MAP else self.reduces
        total = 0.0
        n = 0
        for t in pool:
            if t._state is TaskState.SUCCEEDED:
                total += 1.0
                n += 1
            elif t.attempts:
                total += max(a.progress for a in t.attempts)
                n += 1
        if not n:
            return 0.0
        return total / n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.spec.name} {self.state.value}>"
