"""Job state: tasks, lifecycle, per-job counters."""

from __future__ import annotations

import enum
import itertools
from collections import Counter
from typing import List, Optional

from ..workloads import JobSpec
from .task import Task, TaskState, TaskType


class JobState(enum.Enum):
    """Job lifecycle: RUNNING -> COMMITTING -> SUCCEEDED / FAILED."""
    PENDING = "pending"
    RUNNING = "running"
    COMMITTING = "committing"  # reduces done; output reaching its factor
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Job:
    """One submitted MapReduce job."""

    _ids = itertools.count()

    def __init__(self, spec: JobSpec, priority: int = 0) -> None:
        spec.validate()
        self.spec = spec
        self.priority = priority
        self.job_id = f"job{next(Job._ids)}"
        self.state = JobState.PENDING
        #: live PENDING-task counts, maintained by Task.state (the
        #: scheduler's has-pending probe runs once per free slot).
        self._pending_maps = 0
        self._pending_reduces = 0
        self.maps: List[Task] = [
            Task(self, TaskType.MAP, i) for i in range(spec.n_maps)
        ]
        self.reduces: List[Task] = []  # created at submit (slot-dependent)
        self.n_reduces = 0
        self.submitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.counters: Counter = Counter()
        #: set when the job fails (diagnostics / tests).
        self.failure_reason: Optional[str] = None
        #: live count of unfinished speculative attempts, maintained by
        #: the JobTracker (cheap cap checks on every assignment).
        self._spec_active = 0
        #: Submission sequence (set by the JobTracker): the stable
        #: minor key of the priority-ordered active-jobs walk.
        self.submit_seq = 0
        #: SLO-aware preemption (service layer).  ``paused`` jobs are
        #: skipped by the assignment walk and their unfinished attempts
        #: are held (slots released) in ``held_attempts``;
        #: ``deprioritised`` jobs drop to the back of the walk and get
        #: no new speculative copies.  Both default off, so batch runs
        #: are byte-identical with the flags unused.
        self.paused = False
        self.deprioritised = False
        self.held_attempts: List = []

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> List[Task]:
        return self.maps + self.reduces

    @property
    def finished(self) -> bool:
        state = self.state
        return state is JobState.SUCCEEDED or state is JobState.FAILED

    def note_pending(self, task: Task, delta: int) -> None:
        """Task.state transition hook (see ``pending_count``)."""
        if task.is_map:
            self._pending_maps += delta
        else:
            self._pending_reduces += delta

    def pending_count(self, task_type: TaskType) -> int:
        return (
            self._pending_maps
            if task_type is TaskType.MAP
            else self._pending_reduces
        )

    @property
    def elapsed(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def input_path(self) -> str:
        return f"/{self.job_id}/input"

    def intermediate_path(self, map_index: int, attempt_id: int) -> str:
        return f"/{self.job_id}/intermediate/m{map_index}/a{attempt_id}"

    def output_path(self, reduce_index: int, attempt_id: int) -> str:
        return f"/{self.job_id}/output/r{reduce_index}/a{attempt_id}"

    # ------------------------------------------------------------------
    def incomplete_tasks(self, task_type: Optional[TaskType] = None) -> List[Task]:
        pool = (
            self.tasks
            if task_type is None
            else (self.maps if task_type is TaskType.MAP else self.reduces)
        )
        return [t for t in pool if not t.complete and t.state is not TaskState.FAILED]

    def pending_tasks(self, task_type: TaskType) -> List[Task]:
        pool = self.maps if task_type is TaskType.MAP else self.reduces
        return [t for t in pool if t.state is TaskState.PENDING]

    def running_tasks(self, task_type: TaskType) -> List[Task]:
        pool = self.maps if task_type is TaskType.MAP else self.reduces
        return [t for t in pool if t.state is TaskState.RUNNING]

    def maps_completed(self) -> int:
        return sum(1 for t in self.maps if t.complete)

    def reduces_completed(self) -> int:
        return sum(1 for t in self.reduces if t.complete)

    def all_maps_done(self) -> bool:
        return self.maps_completed() == len(self.maps)

    def all_reduces_done(self) -> bool:
        return self.reduces and self.reduces_completed() == len(self.reduces)

    def speculative_attempts_active(self) -> int:
        return self._spec_active

    def recount_speculative(self) -> int:
        """O(attempts) ground truth for the `_spec_active` counter
        (consistency checks in tests)."""
        return sum(
            1
            for t in self.tasks
            for a in t.attempts
            if a.is_speculative and not a.finished
        )

    def average_progress(self, task_type: TaskType) -> float:
        pool = self.maps if task_type is TaskType.MAP else self.reduces
        started = [t for t in pool if t.attempts or t.complete]
        if not started:
            return 0.0
        return sum(t.best_progress() for t in started) / len(started)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.spec.name} {self.state.value}>"
