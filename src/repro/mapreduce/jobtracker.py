"""The JobTracker: job lifecycle, task assignment, failure handling.

Assignment is pull-style as in Hadoop (II-C): a heartbeat tick walks
the TaskTrackers and fills free slots by asking the scheduling policy
for work.  Failure handling implements both generations of behaviour:

* Hadoop: TrackerExpiryInterval -> kill + reschedule; fetch failures
  re-execute a map once >50% of running reduces report it;
* MOON: SuspensionInterval flags attempts inactive (frozen-task input),
  TrackerExpiryInterval (much longer) kills; after 3 fetch failures the
  JobTracker queries the file system and immediately re-executes a map
  whose output has no live replica (VI-B).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional

from ..cluster import Cluster, Node, NodeView
from ..config import SchedulerConfig, ShuffleConfig
from ..dfs import DfsClient, NameNode
from ..errors import SchedulingError
from ..obs import ATTEMPT_LANE_BASE
from ..simulation import PRIORITY_HEARTBEAT, PeriodicTask, Simulation
from ..workloads import JobSpec
from .execution import ReduceRunner, make_runner
from .job import Job, JobState
from .task import AttemptState, Task, TaskAttempt, TaskState, TaskType
from .tasktracker import TaskTracker


class Runtime:
    """Shared context handed to attempt runners."""

    def __init__(self, sim, cluster, namenode, dfs, shuffle_cfg, jobtracker):
        self.sim = sim
        self.cluster = cluster
        self.namenode = namenode
        self.dfs = dfs
        self.shuffle_cfg = shuffle_cfg
        self.jobtracker = jobtracker


class JobTracker:
    """Master-side control (II-C) with MOON extensions (V)."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        namenode: NameNode,
        scheduler_cfg: SchedulerConfig,
        shuffle_cfg: ShuffleConfig,
        policy,
        heartbeat_interval: float = 3.0,
        view: Optional[NodeView] = None,
    ) -> None:
        scheduler_cfg.validate()
        shuffle_cfg.validate()
        self.sim = sim
        self.cluster = cluster
        self.namenode = namenode
        #: This observer's belief about node liveness (oracle by default).
        self.view = view if view is not None else NodeView("jobtracker")
        # Flight recorder: spans/instants when tracing is armed, and
        # run-level aggregates folded into the registry at job end.
        self._trace = sim.obs.tracer
        self._metrics = sim.obs.metrics
        self.cfg = scheduler_cfg
        self.shuffle_cfg = shuffle_cfg
        self.policy = policy
        self.dfs = DfsClient(namenode)
        self.rt = Runtime(sim, cluster, namenode, self.dfs, shuffle_cfg, self)

        # Trackers currently hosting live attempts, maintained by
        # TaskTracker.add/release: the heartbeat's progress refresh
        # walks this instead of the full membership, so big, mostly
        # idle clusters pay for their busy handful per tick.
        self._busy_trackers: Dict[int, TaskTracker] = {}
        self.trackers: Dict[int, TaskTracker] = {
            n.node_id: TaskTracker(n, self.view, self._busy_trackers)
            for n in cluster.nodes
        }
        # Tracker membership only changes on explicit provision or
        # decommission events (service autoscaling), so the assignment
        # walk order (volatile first, then by node id) is computed once
        # per membership change instead of re-sorted every heartbeat.
        self._assignment_order_cache: List[TaskTracker] = []
        self._rebuild_assignment_order()
        #: Trackers mid-drain, watched by the heartbeat tick.
        self._draining_trackers: Dict[int, TaskTracker] = {}
        self.jobs: List[Job] = []
        # Unfinished jobs only, priority-ordered: the heartbeat tick
        # walks this, so a long-lived service (thousands of completed
        # jobs in ``self.jobs``) never rescans its whole history.
        self._active_jobs: List[Job] = []
        # Jobs the assignment walk must consider, per task type,
        # maintained by Job.note_state at every task transition (see
        # Job.assign_candidate).  The tick reads it instead of probing
        # every active job, so a submit on a 10k-node cluster costs the
        # handful of jobs with placeable work, not the whole window.
        self._assign_candidates: Dict[TaskType, Dict[Job, None]] = {
            TaskType.MAP: {},
            TaskType.REDUCE: {},
        }
        self._schedule_seq = 0
        #: Monotone submission counter (equals ``len(self.jobs)`` until
        #: :meth:`release` starts forgetting finished jobs).
        self._submit_seq = 0
        #: Opt-in for week-long streams: the service layer calls
        #: :meth:`release` after reaping so memory tracks the in-flight
        #: window, not the job history.
        self.release_finished = False

        policy.bind(self)

        # Physical pause/resume of runners (VM-pause semantics).
        cluster.on_suspend(self._physical_suspend)
        cluster.on_resume(self._physical_resume)

        # Dedicated-tier autoscaling: tracker membership follows the
        # cluster's; this JobTracker owns drain completion.
        cluster.on_provision(self._node_provisioned)
        cluster.on_drain_begin(self._node_drain_begin)
        cluster.on_decommission(self._node_decommissioned)

        # Heartbeat judgements (through this observer's view: the plain
        # analytical detector under the oracle, honest otherwise).
        self._detector = self.view.make_detector(
            sim, cluster, heartbeat_interval=heartbeat_interval
        )
        if self.cfg.kind == "moon":
            self._detector.add_threshold(
                "suspension",
                self.cfg.suspension_interval,
                self._tracker_suspected,
                self._tracker_unsuspected,
                adapt=True,
            )
        self._detector.add_threshold(
            "expiry",
            self.cfg.tracker_expiry_interval,
            self._tracker_dead,
            self._tracker_rejoined,
        )

        self._tick_task = PeriodicTask(sim, heartbeat_interval, self._tick)

    # ==================================================================
    # Submission
    # ==================================================================
    def submit(self, spec: JobSpec, priority: int = 0) -> Job:
        job = Job(spec, priority)
        job.submitted_at = self.sim.now
        job.state = JobState.RUNNING

        # Stage the input file (paper: inputs staged before the runs).
        if spec.map_input_mb > 0:
            input_file = self.dfs.stage_input(
                job.input_path(),
                spec.input_mb,
                spec.input_rf,
                block_size_mb=spec.map_input_mb,
            )
            for task, block in zip(job.maps, input_file.blocks):
                task.input_block = block

        # Explicit reduce counts skip the cluster-wide slot census —
        # resolve_reduces only reads it for the slot-derived sizing.
        n_reduces = (
            spec.n_reduces
            if spec.n_reduces is not None
            else spec.resolve_reduces(self._available_reduce_slots())
        )
        job.n_reduces = n_reduces
        job.reduces = [Task(job, TaskType.REDUCE, i) for i in range(n_reduces)]

        job.register_candidacy(
            self._assign_candidates,
            self.cfg.reduce_slowstart_fraction,
            self.cfg.speculative_enabled,
        )
        job.submit_seq = self._submit_seq
        self._submit_seq += 1
        self.jobs.append(job)
        prev = self._active_jobs[-1] if self._active_jobs else None
        self._active_jobs.append(job)
        # The walk order is kept sorted as an invariant, and submit_seq
        # is monotone: an in-order append (every equal-priority stream)
        # skips the resort.
        if prev is not None and (
            (prev.deprioritised, -prev.priority, prev.submit_seq)
            > (job.deprioritised, -job.priority, job.submit_seq)
        ):
            self._resort_active_jobs()
        if self._trace.enabled:
            self._trace.instant(
                "job.submit",
                "job",
                self.sim.now,
                job=job.job_id,
                workload=spec.name,
                maps=len(job.maps),
                reduces=job.n_reduces,
                priority=priority,
            )
        self._tick()  # give it a first assignment round immediately
        return job

    def _resort_active_jobs(self) -> None:
        """Canonical assignment-walk order: deprioritised jobs last,
        then priority-major, submission-order-minor.  With no job
        deprioritised this equals the historical stable sort by
        ``-priority``, so batch runs are byte-identical."""
        self._active_jobs.sort(
            key=lambda j: (j.deprioritised, -j.priority, j.submit_seq)
        )

    # ==================================================================
    # Views used by scheduling policies
    # ==================================================================
    def available_slots(self) -> int:
        """'Currently available execution slots' (paper V-A/V-B).

        Counts the slots of every tracker not judged *dead*: suspended
        trackers keep their slots in the job's capacity (their tasks
        are inactive, not lost — that is the point of MOON's long
        TrackerExpiryInterval).  Making the speculative budget shrink
        with every suspension would throttle frozen-task rescue exactly
        when it is most needed, inverting the paper's Fig. 4 results.
        """
        return sum(
            t.total_slots()
            for t in self.trackers.values()
            if not t.dead and not t.draining
        )

    def _available_reduce_slots(self) -> int:
        """Table I's 'AvailSlots': total cluster reduce-slot capacity
        (not the instantaneous live subset), so the reduce count is
        deterministic across traces.  Draining trackers are about to
        leave and do not count."""
        return sum(
            t.reduce_slots
            for t in self.trackers.values()
            if not t.draining
        )

    def running_jobs(self) -> List[Job]:
        return [j for j in self._active_jobs if not j.finished]

    def release(self, job: Job) -> None:
        """Forget a finished job entirely (opt-in, long-lived streams).

        The caller owns whatever record it needs — after this the
        JobTracker no longer reports the job anywhere.
        """
        if not job.finished:
            raise SchedulingError(
                f"cannot release unfinished job {job.job_id}"
            )
        try:
            self.jobs.remove(job)
        except ValueError:
            pass
        try:
            self._active_jobs.remove(job)
        except ValueError:
            pass

    def next_schedule_order(self) -> int:
        self._schedule_seq += 1
        return self._schedule_seq

    # ==================================================================
    # Heartbeat tick: progress refresh + assignment
    # ==================================================================
    def _tick(self) -> None:
        # Drain watch: a decommissioning tracker leaves the cluster at
        # this tick (deterministic, and safely outside any cluster-
        # notification fan-out) once (a) it has no unfinished attempts
        # and (b) it no longer holds the only replica of any block —
        # the proactive copy-off queued at drain-begin must land a
        # second copy before the disk disappears with the machine.
        if self._draining_trackers:
            for node_id in list(self._draining_trackers):
                tracker = self._draining_trackers[node_id]
                if any(not a.finished for a in tracker.attempts):
                    continue
                if self.namenode.holds_sole_replicas(node_id):
                    continue
                self.cluster.finish_decommission(node_id)
        # Dirty-set refresh: only trackers that actually host attempts
        # are touched (idle trackers dominate on big, quiet clusters).
        # The registry is walked in node-id order — trackers are
        # created with ascending ids, so this is the same order the
        # full membership scan used.  Mid-flight progress feeds only
        # the straggler/frozen machinery, so the refresh rides the
        # speculation switch: with backups disabled nothing reads it
        # between an attempt's launch and its completion events.
        if self.cfg.speculative_enabled:
            for node_id in sorted(self._busy_trackers):
                for attempt in self._busy_trackers[node_id].attempts:
                    runner = attempt.runner
                    if runner is not None and not attempt.finished:
                        runner.update_progress()
        # The candidacy index holds exactly the jobs select_task could
        # accept on some tracker (see Job.assign_candidate): skipping
        # the rest — and on a quiet cluster, the whole tracker sweep —
        # changes no decision.  Launches re-sync the index through
        # note_state, so the sweep stops as soon as both types run dry.
        index = self._assign_candidates
        idx_map, idx_red = index[TaskType.MAP], index[TaskType.REDUCE]
        if not (idx_map or idx_red):
            return
        # Candidate lists (pending, stragglers, frozen...) are memoised
        # inside the policy for the duration of one tick, so idle ticks
        # on big clusters cost O(tasks) once instead of per free slot.
        self.policy.begin_tick()
        # The walk visits candidates in the active-jobs order:
        # deprioritised last, then priority-major, submission-minor.
        def walk_order(members) -> List[Job]:
            return sorted(
                members,
                key=lambda j: (j.deprioritised, -j.priority, j.submit_seq),
            )

        types = (TaskType.MAP, TaskType.REDUCE)
        candidates = {tt: walk_order(index[tt]) for tt in types}
        for tracker in self._assignment_order():
            if not tracker.usable:
                continue
            launched = False
            for task_type in types:
                cand = candidates[task_type]
                if not cand:
                    continue
                free = tracker.free_slots(task_type)
                for _ in range(free):
                    if not self._assign_one(tracker, task_type, cand):
                        break
                    launched = True
            if launched:
                for tt in types:
                    lst = candidates[tt]
                    if lst:
                        live = index[tt]
                        lst[:] = [j for j in lst if j in live]
                if not (
                    candidates[TaskType.MAP] or candidates[TaskType.REDUCE]
                ):
                    break

    def _assignment_order(self) -> List[TaskTracker]:
        # Volatile trackers first so dedicated slots stay free for the
        # hybrid policy's speculative placement (V-C).
        return self._assignment_order_cache

    def _assign_one(self, tracker, task_type, jobs) -> bool:
        for job in jobs:
            if job.finished or job.paused:
                continue
            picked = self.policy.select_task(job, tracker, task_type)
            if picked is not None:
                task, speculative = picked
                self.launch(task, tracker, speculative)
                return True
        return False

    # ==================================================================
    # Launch / lifecycle
    # ==================================================================
    def launch(
        self, task: Task, tracker: TaskTracker, speculative: bool
    ) -> TaskAttempt:
        if task.complete:
            raise SchedulingError(f"launching completed task {task.task_id}")
        # Causal parent of this launch, read before the append below:
        # a relaunch inherits the reason its task went back to PENDING.
        if speculative:
            cause = "speculative"
        elif not task.attempts:
            cause = "first"
        else:
            cause = task.requeue_cause or "failure"
        attempt = TaskAttempt(
            task,
            tracker.node_id,
            self.sim.now,
            is_speculative=speculative,
            on_dedicated=tracker.node.is_dedicated,
        )
        attempt.cause = cause
        task.attempts.append(attempt)
        if task.scheduled_order is None:
            task.scheduled_order = self.next_schedule_order()
        if task.state is TaskState.PENDING:
            task.state = TaskState.RUNNING
        tracker.add(attempt)

        job = task.job
        kind = "map" if task.is_map else "reduce"
        job.counters[f"attempts_{kind}"] += 1
        if len(task.attempts) > 1:
            job.counters["duplicated_tasks"] += 1
            job.counters[f"duplicated_{kind}s"] += 1
        if speculative:
            job.counters["speculative_launched"] += 1
            job._spec_active += 1

        if self._trace.enabled:
            self._trace.instant(
                "sched.assign",
                "sched",
                self.sim.now,
                task=task.task_id,
                job=job.job_id,
                node=tracker.node_id,
                speculative=speculative,
                attempt=attempt.attempt_id,
                cause=cause,
            )
        runner = make_runner(self.rt, attempt)
        runner.start()
        return attempt

    def _trace_attempt(self, attempt: TaskAttempt, outcome: str) -> None:
        """Record one finished attempt as a span on its node's lane.

        The args carry the causal parents the explain layer rebuilds
        the per-job graph from: the launch cause, the attempt id, the
        task kind, and the phase-completion marks (``name=ts`` pairs,
        ``;``-joined in mark order — deterministic, since marks land in
        execution order)."""
        task = attempt.task
        self._trace.span(
            task.task_id,
            "attempt",
            attempt.started_at,
            self.sim.now,
            tid=ATTEMPT_LANE_BASE + attempt.node_id,
            job=task.job.job_id,
            node=attempt.node_id,
            outcome=outcome,
            speculative=attempt.is_speculative,
            attempt=attempt.attempt_id,
            cause=attempt.cause,
            kind="map" if task.is_map else "reduce",
            phases=";".join(
                f"{name}={ts!r}" for name, ts in attempt.phase_marks.items()
            ),
        )

    def _note_attempt_finished(self, attempt: TaskAttempt) -> None:
        if attempt.is_speculative:
            attempt.task.job._spec_active -= 1

    def attempt_succeeded(self, attempt: TaskAttempt, output_file) -> None:
        attempt.state = AttemptState.SUCCEEDED
        attempt.finished_at = self.sim.now
        if self._trace.enabled:
            self._trace_attempt(attempt, "succeeded")
        self._note_attempt_finished(attempt)
        self.trackers[attempt.node_id].release(attempt)
        task = attempt.task
        job = task.job

        if task.complete:
            # A redundant copy finished after the winner: discard.  A
            # falsely-suspected node completing work that was requeued
            # past the grace window lands here — pure duplicated effort.
            if attempt.abandoned:
                job.counters["wasted_work_seconds"] += attempt.runtime(self.sim.now)
            if output_file is not None:
                self._delete_quiet(output_file.path)
            return

        task.state = TaskState.SUCCEEDED
        task.finished_at = self.sim.now
        task.output_file = output_file
        # Kill the losing copies (they count as killed task instances).
        # When winner or loser was abandoned by a suspicion requeue, the
        # loser's runtime is duplicated effort caused by the detector.
        for other in list(task.attempts):
            if other is not attempt and not other.finished:
                if attempt.abandoned or other.abandoned:
                    job.counters["wasted_work_seconds"] += other.runtime(
                        self.sim.now
                    )
                self.kill_attempt(other, "redundant copy")

        if task.is_map:
            task.fetch_failure_reporters.clear()
            task.total_fetch_failures = 0
            self._notify_reduces_of_map(job, task.index)
            if job.n_reduces == 0 and job.all_maps_done():
                self._commit_job(job)
        else:
            if job.all_reduces_done():
                self._commit_job(job)

    def attempt_failed(self, attempt: TaskAttempt, reason: str) -> None:
        attempt.state = AttemptState.FAILED
        attempt.finished_at = self.sim.now
        if self._trace.enabled:
            self._trace_attempt(attempt, "failed")
        self._note_attempt_finished(attempt)
        self.trackers[attempt.node_id].release(attempt)
        task = attempt.task
        job = task.job
        job.counters["attempt_failures"] += 1
        task.failed_attempts += 1
        if task.failed_attempts >= self.cfg.max_task_attempts:
            self._job_failed(
                job,
                f"task {task.task_id} failed "
                f"{task.failed_attempts} times: {reason}",
            )
            return
        if not task.complete and not task.live_attempts():
            task.state = TaskState.PENDING
            task.requeue_cause = "failure"

    def kill_attempt(self, attempt: TaskAttempt, reason: str) -> None:
        if attempt.finished:
            return
        if attempt.runner is not None:
            attempt.runner.kill()
        attempt.state = AttemptState.KILLED
        attempt.finished_at = self.sim.now
        if self._trace.enabled:
            self._trace_attempt(attempt, "killed")
        self._note_attempt_finished(attempt)
        # A held attempt's node may have been decommissioned while its
        # job was paused (the drain gate does not wait for held work);
        # the tracker is then already gone and there is no slot to free.
        tracker = self.trackers.get(attempt.node_id)
        if tracker is not None:
            tracker.release(attempt)
        task = attempt.task
        job = task.job
        kind = "map" if task.is_map else "reduce"
        job.counters[f"killed_{kind}_attempts"] += 1
        # Drop any partial output the attempt had registered.
        path = (
            job.intermediate_path(task.index, attempt.attempt_id)
            if task.is_map
            else job.output_path(task.index, attempt.attempt_id)
        )
        if task.output_file is None or task.output_file.path != path:
            self._delete_quiet(path)
        if not task.complete and not task.live_attempts():
            task.state = TaskState.PENDING
            # A kill on a live task (tracker expiry, decommission, a
            # node gone during a pause) loses real work; redundant-copy
            # and job-terminal kills never reach here (task complete or
            # job finished), so "failure" is the honest cause.
            task.requeue_cause = "failure"

    # ==================================================================
    # Fetch failures (VI-B)
    # ==================================================================
    def report_fetch_failure(self, reduce_task: Task, map_task: Task) -> None:
        job = map_task.job
        job.counters["fetch_failures"] += 1
        if not map_task.complete:
            return  # already being re-executed
        map_task.fetch_failure_reporters.add(reduce_task.index)
        map_task.total_fetch_failures += 1

        if self.cfg.kind == "hadoop":
            running = max(1, len(job.running_tasks(TaskType.REDUCE)))
            if (
                len(map_task.fetch_failure_reporters)
                > self.shuffle_cfg.hadoop_failure_fraction * running
            ):
                self.reexecute_map(map_task)
        else:
            # MOON fast path: after 3 failures ask the file system.
            if (
                map_task.total_fetch_failures
                >= self.shuffle_cfg.moon_fetch_failures
            ):
                f = map_task.output_file
                alive = f is not None and self.namenode.block_availability_now(
                    f.blocks[0]
                )
                if not alive:
                    self.reexecute_map(map_task)

    def reexecute_map(self, map_task: Task) -> None:
        job = map_task.job
        job.counters["map_reexecutions"] += 1
        job.counters["killed_map_attempts"] += 1  # the lost instance
        # The lost instance is dead, not merely stale: its output is
        # about to be deleted, so its attempt record must not read as a
        # live success (execution profiles and dead-tracker re-execution
        # probes both key on SUCCEEDED attempts).
        for attempt in map_task.attempts:
            if attempt.state is AttemptState.SUCCEEDED:
                attempt.state = AttemptState.KILLED
        if map_task.output_file is not None:
            self._delete_quiet(map_task.output_file.path)
        map_task.output_file = None
        map_task.state = TaskState.PENDING
        map_task.requeue_cause = "fetch_failure"
        map_task.finished_at = None
        map_task.fetch_failure_reporters.clear()
        map_task.total_fetch_failures = 0

    # ==================================================================
    # Tracker judgements
    # ==================================================================
    def _tracker_suspected(self, node: Node) -> None:
        tracker = self.trackers[node.node_id]
        tracker.mark_suspected()
        for job in self.running_jobs():
            job.counters["tracker_suspensions"] += 1
            break
        # Snippet 3 Policy B: suspect first, requeue only once the node
        # has stayed suspect past the grace window.  Oracle observers
        # never requeue on suspicion (suspension is then known-true and
        # MOON's frozen-task rescue already covers it).
        if self.view.honest:
            self.sim.call_after(
                self.view.config.grace_period,
                self._suspicion_requeue,
                node,
                priority=PRIORITY_HEARTBEAT,
                daemon=True,
            )

    def _suspicion_requeue(self, node: Node) -> None:
        """Grace window elapsed with the node still suspect: hand every
        unfinished task it hosts back to the scheduler.

        The suspect attempts are *abandoned*, not killed: the node may
        be falsely accused, and if its results arrive after the requeue
        they reconcile through the normal winner/redundant-copy paths —
        with the duplicated attempt-seconds accounted as wasted work.
        Slots are not released either (as far as the observer knows
        the node may still be running the work)."""
        tracker = self.trackers.get(node.node_id)
        if tracker is None or tracker.dead or not tracker.suspected:
            return  # recovered (or expired) before the grace ran out
        requeued = 0
        requeued_jobs: set = set()
        for attempt in list(tracker.attempts):
            if attempt.finished or attempt.abandoned:
                continue
            task = attempt.task
            if task.complete or task.job.finished or task.job.paused:
                continue
            attempt.abandoned = True
            if all(a.abandoned for a in task.live_attempts()):
                task.state = TaskState.PENDING
                task.requeue_cause = "suspicion"
                task.job.counters["suspicion_requeues"] += 1
                requeued += 1
                requeued_jobs.add(task.job.job_id)
        if requeued:
            self._metrics.counter("detector/suspicion_requeues").inc(requeued)
            if self._trace.enabled:
                self._trace.instant(
                    "detector.requeue",
                    "detector",
                    self.sim.now,
                    node=node.node_id,
                    tasks=requeued,
                    jobs=",".join(sorted(requeued_jobs)),
                )

    def _tracker_unsuspected(self, node: Node) -> None:
        self.trackers[node.node_id].mark_recovered()

    def _tracker_dead(self, node: Node) -> None:
        tracker = self.trackers[node.node_id]
        tracker.dead = True
        # Measurement only (never behaviour): an honest expiry of a node
        # that is actually up destroys genuinely running work.
        false_expiry = self.view.honest and node.available
        for attempt in list(tracker.running_attempts()):
            if false_expiry and not attempt.task.complete:
                attempt.task.job.counters["wasted_work_seconds"] += (
                    attempt.runtime(self.sim.now)
                )
            self.kill_attempt(attempt, "tracker expired")
        # Held attempts of paused jobs escaped the registry at pause
        # time, but they die with the tracker like everything else:
        # otherwise a pause spanning an expiry would resurrect work on
        # a rejoined node that every registered attempt lost for good.
        for job in self._active_jobs:
            if job.paused:
                for attempt in job.held_attempts:
                    if (
                        attempt.node_id == node.node_id
                        and not attempt.finished
                    ):
                        self.kill_attempt(attempt, "tracker expired")
        # Stock Hadoop: completed maps whose output lived on the dead
        # tracker's disk are re-executed while reduces still need them.
        if self.cfg.reexec_completed_maps():
            for job in self.running_jobs():
                if job.state is not JobState.RUNNING:
                    continue
                if job.n_reduces > 0 and not job.all_reduces_done():
                    for task in job.maps:
                        if (
                            task.complete
                            and task.output_file is not None
                            and any(
                                a.node_id == node.node_id
                                and a.state is AttemptState.SUCCEEDED
                                for a in task.attempts
                            )
                        ):
                            self.reexecute_map(task)

    def _tracker_rejoined(self, node: Node) -> None:
        self.trackers[node.node_id].dead = False

    # ==================================================================
    # Dedicated-tier membership (service autoscaling)
    # ==================================================================
    def _rebuild_assignment_order(self) -> None:
        # Volatile trackers first so dedicated slots stay free for the
        # hybrid policy's speculative placement (V-C).
        self._assignment_order_cache = sorted(
            self.trackers.values(),
            key=lambda t: (t.node.is_dedicated, t.node_id),
        )

    def _node_provisioned(self, node: Node) -> None:
        self.trackers[node.node_id] = TaskTracker(
            node, self.view, self._busy_trackers
        )
        self._rebuild_assignment_order()

    def _node_drain_begin(self, node: Node) -> None:
        tracker = self.trackers[node.node_id]
        tracker.draining = True
        self._draining_trackers[node.node_id] = tracker

    def _node_decommissioned(self, node: Node) -> None:
        tracker = self.trackers[node.node_id]
        # The drain watch only completes idle trackers, but guard the
        # direct finish_decommission path too: nothing may keep running
        # on a node that no longer exists.
        for attempt in list(tracker.running_attempts()):
            self.kill_attempt(attempt, "node decommissioned")
        del self.trackers[node.node_id]
        self._busy_trackers.pop(node.node_id, None)
        self._draining_trackers.pop(node.node_id, None)
        self._rebuild_assignment_order()

    # ==================================================================
    # Job-level preemption (SLO-aware service pressure)
    # ==================================================================
    # The VM-pause machinery below suspends whatever runs on one *node*;
    # these hooks suspend or demote one *job* across every node — the
    # service layer's PreemptionController drives them when tight-SLO
    # arrivals queue behind loose-SLO work.  Completed map output is
    # never touched, so a resumed job re-executes nothing it finished.
    def pause_job(self, job: Job) -> None:
        """Suspend every unfinished attempt of ``job`` and release
        their slots.  Held attempts keep their banked compute progress
        (same mechanics as a VM pause) but leave the tracker registry,
        so tracker sweeps — drain gates, expiry kills, suspension
        marks — no longer see them; :meth:`resume_job` reconciles the
        held set against whatever happened to the nodes meanwhile."""
        if job.finished or job.paused:
            return
        job.paused = True
        job.counters["preempt_pauses"] += 1
        for task in job.tasks:
            for attempt in task.live_attempts():
                runner = attempt.runner
                if runner is not None:
                    runner.hold()
                if attempt.state is AttemptState.RUNNING:
                    attempt.state = AttemptState.INACTIVE
                tracker = self.trackers.get(attempt.node_id)
                if tracker is not None:
                    tracker.release(attempt)
                job.held_attempts.append(attempt)

    def resume_job(self, job: Job) -> None:
        """Wake a paused job: re-register its held attempts (their old
        trackers may transiently overcommit — they accept no new work
        until occupancy drops back) and kill the ones whose node died
        or left while the job was paused, returning those tasks to
        PENDING for normal re-scheduling."""
        if job.finished or not job.paused:
            return
        job.paused = False
        job.counters["preempt_resumes"] += 1
        held, job.held_attempts = job.held_attempts, []
        for attempt in held:
            if attempt.finished:
                continue  # killed while paused (job commit/failure)
            tracker = self.trackers.get(attempt.node_id)
            if tracker is None or tracker.dead:
                self.kill_attempt(attempt, "preemption resume: node gone")
                continue
            tracker.add(attempt)
            if (
                attempt.state is AttemptState.INACTIVE
                and not tracker.suspected
            ):
                attempt.state = AttemptState.RUNNING
            runner = attempt.runner
            if runner is not None:
                runner.release()

    def deprioritise_job(self, job: Job) -> None:
        """Demote ``job`` to the back of the assignment walk and stop
        granting it new speculative copies; running work continues, so
        slots free up exactly as its tasks finish."""
        if job.finished or job.deprioritised:
            return
        job.deprioritised = True
        job.counters["preempt_deprioritisations"] += 1
        self._resort_active_jobs()

    def restore_job(self, job: Job) -> None:
        """Undo :meth:`deprioritise_job` (pressure cleared)."""
        if not job.deprioritised:
            return
        job.deprioritised = False
        job.counters["preempt_restores"] += 1
        if not job.finished:
            self._resort_active_jobs()

    # ==================================================================
    # Physical suspend/resume (VM-pause)
    # ==================================================================
    def _physical_suspend(self, node: Node) -> None:
        tracker = self.trackers.get(node.node_id)
        if tracker is None:
            return
        for attempt in tracker.running_attempts():
            if attempt.runner is not None:
                attempt.runner.pause()

    def _physical_resume(self, node: Node) -> None:
        tracker = self.trackers.get(node.node_id)
        if tracker is None:
            return
        for attempt in tracker.running_attempts():
            if attempt.runner is not None:
                attempt.runner.resume()

    # ==================================================================
    # Completion
    # ==================================================================
    def _notify_reduces_of_map(self, job: Job, map_index: int) -> None:
        for reduce_task in job.reduces:
            for attempt in reduce_task.live_attempts():
                runner = attempt.runner
                if isinstance(runner, ReduceRunner):
                    runner.notify_map_completed(map_index)

    def _commit_job(self, job: Job) -> None:
        if job.state is not JobState.RUNNING:
            return
        job.state = JobState.COMMITTING
        # Causal boundary for the explain layer: compute is done, the
        # remaining response time is output replication (IV-A).
        if self._trace.enabled:
            self._trace.instant(
                "job.commit", "job", self.sim.now, job=job.job_id
            )
        # Output files become reliable; the job is complete only when
        # every block reaches its replication factor (IV-A).
        paths = [
            t.output_file.path for t in job.reduces if t.output_file is not None
        ]
        if job.n_reduces == 0:
            paths = [
                t.output_file.path for t in job.maps if t.output_file is not None
            ]
        if not paths:
            self._finish_job(job)
            return

        # Picklable commit continuation (snapshot/resume): the countdown
        # lives on the job, the callback is a partial of a bound method.
        job.commit_remaining = len(paths)
        one_done = partial(self._commit_output_replicated, job)
        for path in paths:
            self.namenode.convert_to_reliable(path)
            self.namenode.when_fully_replicated(path, one_done)

    def _commit_output_replicated(self, job: Job) -> None:
        job.commit_remaining -= 1
        if job.commit_remaining == 0 and job.state is JobState.COMMITTING:
            self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        job.state = JobState.SUCCEEDED
        job.finished_at = self.sim.now
        # Kill outstanding attempts (leftover speculative copies and
        # maps re-executed for reduces that no longer need them): the
        # job is complete, so their results are moot.
        for task in job.tasks:
            for attempt in list(task.live_attempts()):
                self.kill_attempt(attempt, "job complete")
        self._cleanup_job(job)

    def _job_failed(self, job: Job, reason: str) -> None:
        if job.finished:
            return
        job.state = JobState.FAILED
        job.failure_reason = reason
        job.finished_at = self.sim.now
        for task in job.tasks:
            for attempt in task.live_attempts():
                self.kill_attempt(attempt, "job failed")
        self._cleanup_job(job)

    def _cleanup_job(self, job: Job) -> None:
        job.unregister_candidacy()
        try:
            self._active_jobs.remove(job)
        except ValueError:  # pragma: no cover - defensive
            pass
        # Fold the job's per-run counters into the registry.  Reports
        # and goldens keep reading ``job.counters`` directly — the
        # registry is an additive aggregate view, never a replacement.
        metrics = self._metrics
        metrics.counter(f"mapreduce/jobs_{job.state.value}").inc()
        for key, value in job.counters.items():
            metrics.counter(f"mapreduce/{key}").inc(value)
        if self._trace.enabled and job.submitted_at is not None:
            self._trace.span(
                job.job_id,
                "job",
                job.submitted_at,
                self.sim.now,
                state=job.state.value,
                workload=job.spec.name,
            )
        # Intermediate data is transient: drop it at job end.
        for task in job.maps:
            if task.output_file is not None:
                self._delete_quiet(task.output_file.path)
                task.output_file = None

    def _delete_quiet(self, path: str) -> None:
        if self.namenode.exists(path):
            self.namenode.delete_file(path)

    # ==================================================================
    def stop(self) -> None:
        self._tick_task.stop()

    def run_to_completion(self, job: Job, time_limit: float) -> Job:
        """Convenience: advance the simulation until ``job`` finishes or
        the limit is hit (callers check ``job.state``)."""
        self.sim.run(until=time_limit, stop_when=lambda: job.finished)
        return job
