"""MOON-DFS (S5 + S11): multi-dimensional, cost-effective replication
on the hybrid dedicated/volatile architecture (paper Section IV)."""

from .availability import (
    block_availability,
    hybrid_equivalent,
    replication_cost_mb,
    required_volatile_replicas,
)
from .client import DfsClient, ReadOp, WriteOp
from .journal import (
    RECORD_TYPES,
    SCHEMA_VERSION,
    Journal,
    JournalRecord,
    NamespaceImage,
)
from .namenode import NameNode
from .placement import PlacementPolicy, WritePlan
from .throttle import THROTTLED, UNTHROTTLED, ThrottleDetector, ThrottleService
from .types import (
    BlockInfo,
    DataNodeInfo,
    FileInfo,
    FileKind,
    NodeState,
    ReplicationFactor,
)

__all__ = [
    "NameNode",
    "Journal",
    "JournalRecord",
    "NamespaceImage",
    "RECORD_TYPES",
    "SCHEMA_VERSION",
    "DfsClient",
    "WriteOp",
    "ReadOp",
    "PlacementPolicy",
    "WritePlan",
    "ThrottleDetector",
    "ThrottleService",
    "THROTTLED",
    "UNTHROTTLED",
    "ReplicationFactor",
    "FileKind",
    "FileInfo",
    "BlockInfo",
    "DataNodeInfo",
    "NodeState",
    "block_availability",
    "required_volatile_replicas",
    "hybrid_equivalent",
    "replication_cost_mb",
]
