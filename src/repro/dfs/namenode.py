"""The MOON-DFS NameNode (paper Section IV).

Owns all metadata (files, blocks, replica maps), judges DataNode states
through heartbeat thresholds (``alive -> hibernated -> dead``), runs
the prioritised replication queue, estimates volatile-node
unavailability ``p`` for the adaptive replication rule, and hosts the
throttle service for dedicated DataNodes.

Key behaviours from the paper:

* hibernated DataNodes are not sent I/O requests (IV-C);
* on hibernation, only opportunistic blocks *without* a dedicated
  replica are queued for re-replication — blocks anchored on dedicated
  nodes already have the availability to ride out transient outages;
* on expiry (dead), the node's replicas are dropped from the replica
  maps and every affected block is queued (reliable files first);
* when a dead node returns, its block report re-registers surviving
  replicas; any copies beyond a file's factor are recorded as
  *replication thrashing* (the waste MOON's hibernate state avoids);
* files below their replication factor sit in a queue scanned
  periodically, reliable files served before opportunistic ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..cluster import Cluster, Node, NodeView
from ..config import DfsConfig
from ..errors import DfsError, FileAlreadyExists, FileNotFound
from ..net import NetworkModel
from ..obs import CounterBag
from ..simulation import PeriodicTask, Simulation
from .journal import Journal, JournalRecord, NamespaceImage
from .placement import PlacementPolicy
from .throttle import ThrottleService
from .types import (
    BlockInfo,
    DataNodeInfo,
    FileInfo,
    FileKind,
    NodeState,
    ReplicationFactor,
)

#: Replication-queue priorities (lower = served first).
PRIO_RELIABLE = 0
PRIO_OPPORTUNISTIC = 1


class NameNode:
    """Metadata service + replication manager."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        network: NetworkModel,
        config: DfsConfig,
        view: Optional[NodeView] = None,
    ) -> None:
        config.validate()
        self.sim = sim
        self.cluster = cluster
        self.network = network
        self.config = config
        #: This observer's belief about node liveness (oracle by default).
        self.view = view if view is not None else NodeView("namenode")
        self._honest = self.view.honest
        # DFS bookkeeping now lives in the run's metrics registry under
        # the ``dfs/`` prefix; the bag keeps the historical
        # collections.Counter surface (`nn.counters[k] += 1`,
        # ``dict(nn.counters)``) for callers and tests.
        self.counters: CounterBag = CounterBag(sim.obs.metrics, "dfs/")
        self.rng = sim.rng("namenode")

        self._files: Dict[str, FileInfo] = {}
        self._blocks: Dict[int, BlockInfo] = {}
        self._infos: Dict[int, DataNodeInfo] = {}
        self._states: Dict[int, NodeState] = {}
        for node in cluster.nodes:
            self._infos[node.node_id] = DataNodeInfo(
                node.node_id, node.is_dedicated, node.spec.storage_gb * 1024.0
            )
            self._states[node.node_id] = NodeState.ALIVE

        self.placement = PlacementPolicy(self)
        self.throttle = ThrottleService(
            sim,
            network,
            [n.node_id for n in cluster.dedicated],
            config,
            on_unthrottled=self._dedicated_unthrottled,
        )

        # Heartbeat judgements (through this observer's view: the plain
        # analytical detector under the oracle, honest otherwise).
        self._detector = self.view.make_detector(sim, cluster)
        self._detector.add_threshold(
            "hibernate",
            config.node_hibernate_interval,
            self._on_hibernate,
            self._on_wake,
            adapt=True,
        )
        self._detector.add_threshold(
            "expiry", config.node_expiry_interval, self._on_expiry, self._on_rejoin
        )

        # Dedicated-tier autoscaling: a provisioned node becomes a
        # DataNode immediately; a decommissioned one's replicas are
        # dropped and re-replicated.  Registered before the network's
        # decommission wiring (see repro.core.MoonSystem) so replica
        # maps are consistent by the time in-flight transfers abort.
        cluster.on_provision(self._on_provision)
        cluster.on_drain_begin(self._on_drain_begin)
        cluster.on_decommission(self._on_decommission)
        #: Nodes mid-drain: they still serve reads, but their replicas
        #: no longer count toward replication factors, so their data is
        #: copied off proactively (HDFS-style decommissioning).
        self._draining_ids: Dict[int, None] = {}

        # p estimation over the past interval I (volatile nodes only).
        self._down_integral = 0.0
        self._down_count = 0
        self._last_down_change = 0.0
        self._p_window_start_integral = 0.0
        self._p_estimate = 0.0
        cluster.on_suspend(self._track_down)
        cluster.on_resume(self._track_up)
        self._p_task = PeriodicTask(
            sim, config.p_estimate_interval, self._refresh_p_estimate
        )

        # Replication queue: (priority, seq, block_id).  The membership
        # indexes are insertion-ordered dicts, never unordered sets —
        # scan order feeds the event queue, so it must be identical
        # across processes (ROADMAP: cross-process golden stability).
        self._repl_queue: List[Tuple[int, int, int]] = []
        self._queued: Dict[int, None] = {}
        self._seq = itertools.count()
        self._repl_task = PeriodicTask(
            sim, config.replication_check_interval, self._replication_scan
        )
        #: Opportunistic blocks awaiting a dedicated replica.
        self._want_dedicated: Dict[int, None] = {}
        #: file path -> list of commit watchers awaiting full factor.
        self._watchers: Dict[str, List[Callable[[], None]]] = {}
        #: file path -> block_ids still below factor (dirty-set view of
        #: the watched files, so replica registrations re-check one
        #: block instead of rescanning the whole file).
        self._watch_pending: Dict[str, Dict[int, None]] = {}

        # Durable metadata: write-ahead journal + periodic checkpoints.
        # Strictly opt-in — with the journal off (the paper-figure
        # default) no task is armed and no event is scheduled, so
        # pre-journal goldens stay byte-identical.
        jcfg = config.journal
        self.journal: Optional[Journal] = Journal(jcfg) if jcfg.enabled else None
        self._ckpt_task: Optional[PeriodicTask] = None
        #: Nodes whose post-crash block report is still outstanding.
        self._report_owed: Dict[int, None] = {}
        if self.journal is not None:
            # Baseline checkpoint: the initial cluster, empty namespace.
            self.journal.checkpoint(self.snapshot_image())
            self._ckpt_task = PeriodicTask(
                sim, jcfg.checkpoint_interval, self.take_checkpoint
            )
            if jcfg.crash_at is not None:
                sim.call_at(jcfg.crash_at, self.simulate_crash, daemon=True)

    def _j(self, rtype: str, **payload) -> None:
        """Append a journal record *before* the mutation it describes
        (no-op when the journal is disabled).  Durability is decided by
        record type: namespace records fsync immediately, replica-map
        records group-commit."""
        j = self.journal
        if j is None:
            return
        if j.append(rtype, payload):
            self.counters["journal_fsyncs"] += 1
        self.counters["journal_records"] += 1

    # ==================================================================
    # Views used by the placement policy and clients
    # ==================================================================
    def info(self, node_id: int) -> DataNodeInfo:
        return self._infos[node_id]

    def dedicated_infos(self) -> Iterable[DataNodeInfo]:
        return (self._infos[n.node_id] for n in self.cluster.dedicated)

    def volatile_infos(self) -> Iterable[DataNodeInfo]:
        return (self._infos[n.node_id] for n in self.cluster.volatile)

    def is_dedicated(self, node_id: int) -> bool:
        return self._infos[node_id].is_dedicated

    def node_state(self, node_id: int) -> NodeState:
        return self._states[node_id]

    def node_is_servable(self, node_id: int) -> bool:
        """Should the NameNode direct I/O at this node?  Hibernated and
        dead nodes are excluded (IV-C); an undetected outage still
        counts as servable — clients then pay the timeout.

        An honest NameNode knows suspicion can be wrong: a hibernated
        (suspected-but-possibly-alive) node keeps serving reads until it
        is expired for good, so only DEAD excludes it."""
        if self._honest:
            return self._states[node_id] is not NodeState.DEAD
        return self._states[node_id] is NodeState.ALIVE

    def estimated_p(self) -> float:
        return self._p_estimate

    # ==================================================================
    # Namespace operations
    # ==================================================================
    def create_file(
        self,
        path: str,
        kind: FileKind,
        rf: ReplicationFactor,
        size_mb: float,
        block_size_mb: Optional[float] = None,
    ) -> FileInfo:
        if path in self._files:
            raise FileAlreadyExists(path)
        rf.validate()
        if size_mb < 0:
            raise DfsError("negative file size")
        bs = block_size_mb or self.config.block_size_mb
        sizes: List[float] = []
        remaining = size_mb
        while remaining > 0 or not sizes:
            size = min(bs, remaining) if remaining > 0 else 0.0
            sizes.append(size)
            remaining -= size
            if remaining <= 0:
                break
        self._j(
            "create",
            path=path,
            kind=kind.value,
            d=rf.dedicated,
            v=rf.volatile,
            sizes=sizes,
            created_at=self.sim.now,
        )
        file = FileInfo(path, kind, rf, self.sim.now)
        for index, size in enumerate(sizes):
            block = BlockInfo(file, index, size)
            file.blocks.append(block)
            self._blocks[block.block_id] = block
        self._files[file.path] = file
        return file

    def file(self, path: str) -> FileInfo:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def files(self) -> Iterable[FileInfo]:
        return self._files.values()

    def delete_file(self, path: str) -> None:
        file = self.file(path)
        self._j("delete", path=file.path)
        self._drop_file_state(file.path)

    def _drop_file_state(self, path: str) -> None:
        """Remove a file's metadata (shared by delete and the defensive
        arm of recovery, which must not journal)."""
        file = self._files.pop(path)
        for block in file.blocks:
            for node_id in list(block.replicas):
                info = self._infos.get(node_id)
                if info is not None:
                    info.drop_block(block)
            block.replicas.clear()
            block.dedicated_replicas.clear()
            self._blocks.pop(block.block_id, None)
            self._want_dedicated.pop(block.block_id, None)
        self._watchers.pop(path, None)
        self._watch_pending.pop(path, None)

    def convert_to_reliable(self, path: str) -> None:
        """Opportunistic -> reliable (output commit, Section IV-A); any
        missing dedicated replicas are queued with top priority."""
        file = self.file(path)
        if file.kind is FileKind.RELIABLE:
            return
        self._j("convert", path=file.path)
        file.kind = FileKind.RELIABLE
        file.adjusted_volatile = None
        for block in file.blocks:
            self._want_dedicated.pop(block.block_id, None)
            if self._block_deficit(block):
                self._enqueue(block)

    def set_adjusted_volatile(self, file: FileInfo, v: int) -> None:
        """Placement declined the dedicated copy and adapted v' (paper
        IV-A); routed through the NameNode so the adjustment is
        journaled with the rest of the namespace."""
        if file.adjusted_volatile == v:
            return
        self._j("adjust", path=file.path, v=v)
        file.adjusted_volatile = v

    # ==================================================================
    # Replica bookkeeping
    # ==================================================================
    def register_replica(self, block: BlockInfo, node_id: int) -> None:
        if block.block_id not in self._blocks:
            return  # file deleted while the write was in flight
        if node_id in block.replicas:
            return
        if self.journal is not None:  # hot path: skip the kwargs build
            self._j("add", path=block.file.path, i=block.index, node=node_id)
        block.replicas.add(node_id)
        info = self._infos[node_id]
        info.add_block(block)
        if info.is_dedicated:
            block.dedicated_replicas.add(node_id)
            self._want_dedicated.pop(block.block_id, None)
        self.counters["replicas_written"] += 1
        self._watched_block_changed(block)

    def drop_replica(self, block: BlockInfo, node_id: int) -> None:
        if self.journal is not None and node_id in block.replicas:
            self._j("drop", path=block.file.path, i=block.index, node=node_id)
        block.replicas.discard(node_id)
        block.dedicated_replicas.discard(node_id)
        self._infos[node_id].drop_block(block)

    def read_targets(self, block: BlockInfo, reader_node: int) -> List[int]:
        """Replica candidates in MOON's preferred order: local copy,
        then volatile replicas, then dedicated (Section IV-B: volatile
        clients only touch dedicated nodes as a last resort)."""
        local: List[int] = []
        volatile: List[int] = []
        dedicated: List[int] = []
        states = self._states
        infos = self._infos
        alive = NodeState.ALIVE
        for nid in block.replicas:
            if states[nid] is not alive:
                continue
            if nid == reader_node:
                local.append(nid)
            elif infos[nid].is_dedicated:
                dedicated.append(nid)
            else:
                volatile.append(nid)
        # Deterministic shuffle for load spreading.
        if len(volatile) > 1:
            self.rng.shuffle(volatile)
        if len(dedicated) > 1:
            self.rng.shuffle(dedicated)
        if self.is_dedicated(reader_node):
            return local + dedicated + volatile
        return local + volatile + dedicated

    def live_dedicated_replicas(self, block: BlockInfo) -> set:
        """Dedicated replicas on nodes currently judged ALIVE.

        Draining nodes are excluded: their copies still serve reads but
        are about to disappear, so they must not satisfy a factor."""
        # Inlined node_is_servable: this runs per dedicated replica on
        # every deficit probe, and the replication scan re-probes its
        # whole deferred queue each period.
        states = self._states
        draining = self._draining_ids
        if self._honest:
            dead = NodeState.DEAD
            return {
                n
                for n in block.dedicated_replicas
                if states[n] is not dead and n not in draining
            }
        alive = NodeState.ALIVE
        return {
            n
            for n in block.dedicated_replicas
            if states[n] is alive and n not in draining
        }

    def effective_volatile_count(self, block: BlockInfo) -> int:
        """Volatile copies that count toward the replication target.

        Paper IV-C: a block with a (live) dedicated replica already has
        the availability to ride out transient outages, so hibernated
        volatile copies still count; without a dedicated anchor only
        copies on ALIVE nodes count, which is what triggers the
        hibernate-time re-replication of unanchored opportunistic data.
        """
        if self.live_dedicated_replicas(block):
            return len(block.volatile_replicas)
        states = self._states
        if self._honest:
            dead = NodeState.DEAD
            return sum(
                1 for n in block.volatile_replicas if states[n] is not dead
            )
        alive = NodeState.ALIVE
        return sum(
            1 for n in block.volatile_replicas if states[n] is alive
        )

    def block_availability_now(self, block: BlockInfo) -> bool:
        """Is any replica reachable this instant, as far as this
        observer can tell?  (Used by the MOON JobTracker's fetch-failure
        fast path, Section VI-B.)  The oracle view still consults
        ground truth exactly as the paper's simulation did; an honest
        view can only answer from its own judgement state."""
        view = self.view
        cluster_node = self.cluster.node
        return any(
            self.node_is_servable(nid) and view.believes_up(cluster_node(nid))
            for nid in block.replicas
        )

    # ==================================================================
    # Commit watchers (output files reaching full factor)
    # ==================================================================
    def when_fully_replicated(self, path: str, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once every block of ``path`` meets its
        replication factor (used for output commit)."""
        file = self.file(path)
        pending = {
            b.block_id: None for b in file.blocks if self._block_deficit(b)
        }
        if not pending:
            self.sim.call_after(0.0, callback)
            return
        self._watchers.setdefault(path, []).append(callback)
        self._watch_pending[path] = pending
        for block in file.blocks:
            if block.block_id in pending:
                self._enqueue(block)

    def _watched_block_changed(self, block: BlockInfo) -> None:
        """Replica-set change on one block: re-check only that block
        against its file's pending set; the full-file rescan happens
        once, when the set drains (and re-fills it if a block regressed
        while the watch was open)."""
        pending = self._watch_pending.get(block.file.path)
        if pending is None:
            return
        if block.block_id in pending and not self._block_deficit(block):
            del pending[block.block_id]
        if not pending:
            self._fire_watchers(block.file)

    def _fire_watchers(self, file: FileInfo) -> None:
        pending = self._watch_pending.get(file.path)
        if pending is not None:
            # Exactness guard: a block may have slipped back below
            # factor (expiry, hibernation) since it left the set.
            for b in file.blocks:
                if self._block_deficit(b):
                    pending[b.block_id] = None
            if pending:
                return
            del self._watch_pending[file.path]
        watchers = self._watchers.pop(file.path, None)
        if not watchers:
            return
        for cb in watchers:
            self.sim.call_after(0.0, cb)

    # ==================================================================
    # Node-state transitions
    # ==================================================================
    def _on_hibernate(self, node: Node) -> None:
        self._states[node.node_id] = NodeState.HIBERNATED
        self.counters["hibernations"] += 1
        # Honest observers defer re-replication to *expiry*: first
        # suspicion may be a false positive, and copying data off every
        # suspect node would turn detector noise into replication storms.
        if self._honest:
            return
        # Re-replicate only opportunistic blocks lacking a dedicated copy.
        info = self._infos[node.node_id]
        for block_id in info.blocks:
            block = self._blocks.get(block_id)
            if block is None:
                continue
            if (
                block.file.kind is FileKind.OPPORTUNISTIC
                and not self.live_dedicated_replicas(block)
            ):
                self._enqueue(block)

    def _on_wake(self, node: Node) -> None:
        if self._states[node.node_id] is not NodeState.HIBERNATED:
            return
        self._states[node.node_id] = NodeState.ALIVE
        # A node returning after a NameNode failover owes the new master
        # a block report (replicas registered in the lost journal tail
        # are only on its disk).
        if node.node_id in self._report_owed:
            self.deliver_block_report(node.node_id)
        # Becoming servable again can clear a watched block's deficit
        # without any replica registration: re-check this node's blocks.
        if self._watch_pending:
            for block_id in list(self._infos[node.node_id].blocks):
                block = self._blocks.get(block_id)
                if (
                    block is not None
                    and block.file.path in self._watch_pending
                ):
                    self._watched_block_changed(block)

    def _on_expiry(self, node: Node) -> None:
        self._states[node.node_id] = NodeState.DEAD
        self.counters["expiries"] += 1
        info = self._infos[node.node_id]
        for block_id in list(info.blocks):
            block = self._blocks.get(block_id)
            if block is None:
                info.blocks.pop(block_id, None)
                continue
            if self.journal is not None and node.node_id in block.replicas:
                self._j(
                    "drop", path=block.file.path, i=block.index,
                    node=node.node_id,
                )
            block.replicas.discard(node.node_id)
            block.dedicated_replicas.discard(node.node_id)
            if not block.replicas:
                self.counters["blocks_lost"] += 1
            self._enqueue(block)
        # The data remains on the node's disk (info.blocks kept) so a
        # rejoin can re-register it via block report.

    def _on_provision(self, node: Node) -> None:
        """A new (dedicated) DataNode joins: empty disk, ALIVE, and —
        when dedicated — throttle-watched and placement-eligible."""
        self._j(
            "node_add",
            node=node.node_id,
            dedicated=node.is_dedicated,
            capacity_mb=node.spec.storage_gb * 1024.0,
        )
        self._infos[node.node_id] = DataNodeInfo(
            node.node_id, node.is_dedicated, node.spec.storage_gb * 1024.0
        )
        self._states[node.node_id] = NodeState.ALIVE
        self.counters["provisions"] += 1
        if node.is_dedicated:
            self.throttle.add_node(node.node_id)
            # Opportunistic blocks that were denied a dedicated anchor
            # can have one now.
            self._dedicated_unthrottled(node.node_id)

    def holds_sole_replicas(self, node_id: int) -> bool:
        """Does this node hold the *only* replica of any live block?
        Used as the drain-completion gate: decommissioning such a node
        would lose data, so the drain waits for the proactive copy-off
        (queued at drain-begin) to land a second copy first."""
        info = self._infos.get(node_id)
        if info is None:
            return False
        for block_id in info.blocks:
            block = self._blocks.get(block_id)
            if block is not None and block.replicas == {node_id}:
                return True
        return False

    def _on_drain_begin(self, node: Node) -> None:
        """Start copying the draining node's data off while it can
        still act as a source: mark its replicas non-counting and queue
        every block it holds for a deficit check.  Blocks whose only
        dedicated anchor is the draining node get no *volatile* deficit
        from that (e.g. opportunistic ``{1,0}`` intermediates), so they
        additionally join the dedicated-fill queue — the drain cannot
        complete while the node holds a sole replica."""
        self._j("node_drain", node=node.node_id)
        self._draining_ids[node.node_id] = None
        info = self._infos[node.node_id]
        for block_id in list(info.blocks):
            block = self._blocks.get(block_id)
            if block is None:
                continue
            if not self.live_dedicated_replicas(block):
                self._j("want", path=block.file.path, i=block.index)
                self._want_dedicated[block.block_id] = None
            self._enqueue(block)

    def _on_decommission(self, node: Node) -> None:
        """A drained node leaves for good: unlike expiry, its replicas
        are dropped permanently (the disk goes away with the machine)
        and every affected block is queued for re-replication."""
        self._j("node_retire", node=node.node_id)
        self.counters["decommissions"] += 1
        self._draining_ids.pop(node.node_id, None)
        self._report_owed.pop(node.node_id, None)
        info = self._infos.pop(node.node_id)
        self._states.pop(node.node_id)
        self.throttle.remove_node(node.node_id)
        for block_id in list(info.blocks):
            block = self._blocks.get(block_id)
            if block is None:
                continue
            block.replicas.discard(node.node_id)
            block.dedicated_replicas.discard(node.node_id)
            if not block.replicas:
                self.counters["blocks_lost"] += 1
            self._enqueue(block)
            # Losing a replica can drop a watched commit block back
            # below factor; _enqueue re-arms the pending set.

    def _on_rejoin(self, node: Node) -> None:
        if self._states[node.node_id] is not NodeState.DEAD:
            return
        self._states[node.node_id] = NodeState.ALIVE
        info = self._infos[node.node_id]
        for block_id in list(info.blocks):
            block = self._blocks.get(block_id)
            if block is None:
                info.blocks.pop(block_id, None)
                continue
            was_needed = self._block_deficit(block)
            if self.journal is not None and node.node_id not in block.replicas:
                self._j(
                    "add", path=block.file.path, i=block.index,
                    node=node.node_id,
                )
            block.replicas.add(node.node_id)
            if info.is_dedicated:
                block.dedicated_replicas.add(node.node_id)
            if not was_needed:
                # The system replicated elsewhere meanwhile: thrashing.
                self.counters["replication_thrash"] += 1
            self._watched_block_changed(block)
        # The rejoin loop re-registered the full disk: the post-crash
        # block report (if one was owed) is covered.
        self._report_owed.pop(node.node_id, None)

    # ==================================================================
    # p estimation
    # ==================================================================
    def _track_down(self, node: Node) -> None:
        if node.is_volatile:
            self._integrate_downtime()
            self._down_count += 1

    def _track_up(self, node: Node) -> None:
        if node.is_volatile:
            self._integrate_downtime()
            self._down_count -= 1

    def _integrate_downtime(self) -> None:
        now = self.sim.now
        self._down_integral += self._down_count * (now - self._last_down_change)
        self._last_down_change = now

    def _refresh_p_estimate(self) -> None:
        self._integrate_downtime()
        n = max(1, len(self.cluster.volatile))
        window = self.config.p_estimate_interval
        seen = self._down_integral - self._p_window_start_integral
        self._p_estimate = min(0.99, seen / (n * window))
        self._p_window_start_integral = self._down_integral

    # ==================================================================
    # Replication queue
    # ==================================================================
    def _block_deficit(self, block: BlockInfo) -> bool:
        file = block.file
        if block.block_id not in self._blocks:
            return False
        if file.rf.dedicated > 0 and file.kind is FileKind.RELIABLE:
            if len(self.live_dedicated_replicas(block)) < file.rf.dedicated:
                return True
        return self.effective_volatile_count(block) < file.volatile_target()

    def _enqueue(self, block: BlockInfo) -> None:
        if block.block_id not in self._blocks:
            return
        # A watched file's block going (back) into deficit must re-join
        # its pending set, or the commit could fire early.
        pending = self._watch_pending.get(block.file.path)
        if pending is not None and self._block_deficit(block):
            pending[block.block_id] = None
        if block.block_id in self._queued:
            return
        prio = (
            PRIO_RELIABLE
            if block.file.kind is FileKind.RELIABLE
            else PRIO_OPPORTUNISTIC
        )
        heapq.heappush(self._repl_queue, (prio, next(self._seq), block.block_id))
        self._queued[block.block_id] = None

    def note_write_shortfall(self, block: BlockInfo, declined: bool) -> None:
        """Client tells us a block finished its pipeline below target."""
        if declined and not block.has_dedicated_replica():
            self._j("want", path=block.file.path, i=block.index)
            self._want_dedicated[block.block_id] = None
            self._enqueue(block)
        if self._block_deficit(block):
            self._enqueue(block)

    def _dedicated_unthrottled(self, node_id: int) -> None:
        """A dedicated node left saturation: try to give opportunistic
        files their dedicated copies (paper IV-A: 'MOON will attempt to
        have dedicated replicas for opportunistic files when possible')."""
        for block_id in list(self._want_dedicated):
            block = self._blocks.get(block_id)
            if block is None:
                self._want_dedicated.pop(block_id, None)
                continue
            self._enqueue(block)

    def _replication_scan(self) -> None:
        budget = self.config.max_replications_per_scan
        deferred: List[Tuple[int, int, int]] = []
        while self._repl_queue and budget > 0:
            prio, seq, block_id = heapq.heappop(self._repl_queue)
            self._queued.pop(block_id, None)
            block = self._blocks.get(block_id)
            if block is None or not self._block_deficit(block):
                if block is not None and block.block_id in self._want_dedicated:
                    self._try_dedicated_fill(block)
                continue
            plan = self.placement.plan_rereplication(block)
            if plan is None:
                deferred.append((prio, seq, block_id))
                continue
            source, target = plan
            self._issue_replication(block, source, target)
            budget -= 1
            if self._block_deficit(block):
                deferred.append((prio, next(self._seq), block_id))
        for item in deferred:
            if item[2] not in self._queued:
                heapq.heappush(self._repl_queue, item)
                self._queued[item[2]] = None

    def _try_dedicated_fill(self, block: BlockInfo) -> None:
        # live_ rather than has_: a copy on a draining (or hibernated)
        # dedicated node is about to disappear and does not satisfy
        # the want.
        if self.live_dedicated_replicas(block):
            self._want_dedicated.pop(block.block_id, None)
            return
        targets = self.placement._pick_dedicated(
            1, block.replicas, require_unthrottled=True, size=block.size_mb
        )
        live = [n for n in block.replicas if self.node_is_servable(n)]
        if targets and live:
            self._issue_replication(block, live[0], targets[0])

    def _issue_replication(self, block: BlockInfo, source: int, target: int) -> None:
        self.counters["replications_issued"] += 1
        self.counters["replication_mb"] += block.size_mb
        issued_at = self.sim.now
        tracer = self.sim.obs.tracer
        # Trace label: path#index, not the numeric block id — the id
        # stream is process-global, the path is run-stable (the
        # byte-identical-trace guarantee rides on it).
        block_label = block.label

        def done(_t) -> None:
            if tracer.enabled:
                tracer.span(
                    "dfs.replicate",
                    "dfs",
                    issued_at,
                    self.sim.now,
                    block=block_label,
                    source=source,
                    target=target,
                    mb=block.size_mb,
                )
            self.register_replica(block, target)

        def fail(_t) -> None:
            self.counters["replications_failed"] += 1
            if tracer.enabled:
                tracer.instant(
                    "dfs.replicate_failed",
                    "dfs",
                    self.sim.now,
                    block=block_label,
                    source=source,
                    target=target,
                )
            if self._block_deficit(block):
                self._enqueue(block)

        self.network.transfer(
            source, target, block.size_mb, on_complete=done, on_fail=fail,
            kind="replication",
        )

    # ==================================================================
    # Durable metadata: checkpoints, crash, recovery
    # ==================================================================
    def snapshot_image(self) -> NamespaceImage:
        """Canonical semantic snapshot of the live metadata — the
        checkpoint payload, and the oracle side of the recovery-equality
        fuzz suite."""
        img = NamespaceImage()
        for nid, info in self._infos.items():
            img.nodes[nid] = (info.is_dedicated, info.capacity_mb)
        for nid in self._draining_ids:
            img.draining[nid] = None
        for path, file in self._files.items():
            img.files[path] = {
                "kind": file.kind.value,
                "d": file.rf.dedicated,
                "v": file.rf.volatile,
                "adjusted": file.adjusted_volatile,
                "created_at": file.created_at,
                "sizes": [b.size_mb for b in file.blocks],
                "replicas": [set(b.replicas) for b in file.blocks],
            }
        for block_id in self._want_dedicated:
            block = self._blocks.get(block_id)
            if block is not None:
                img.wants[(block.file.path, block.index)] = None
        return img

    def take_checkpoint(self) -> None:
        """Snapshot the namespace and truncate the journal (a full
        durability barrier; runs on the sim clock while the journal is
        enabled)."""
        if self.journal is None:
            return
        truncated = self.journal.checkpoint(self.snapshot_image())
        self.counters["checkpoints"] += 1
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "dfs.checkpoint", "dfs", self.sim.now,
                truncated=truncated, files=len(self._files),
            )

    def recover(
        self,
        checkpoint: Optional[NamespaceImage] = None,
        records: Optional[List[JournalRecord]] = None,
    ) -> NamespaceImage:
        """Rebuild namespace, replica maps, watcher state and the
        replication queue from ``checkpoint`` + ``records`` (default:
        this NameNode's own journal — its durable prefix).

        Namespace records fsync synchronously, so the recovered
        namespace always matches the in-memory object graph and
        recovery happens *in place*: ``FileInfo``/``BlockInfo``
        identities survive the failover, keeping references held by
        clients, the JobTracker and in-flight transfer callbacks valid.
        Replica knowledge resets to what the journal proves; the gap to
        disk truth closes via :meth:`deliver_block_report`.
        """
        if checkpoint is None:
            if self.journal is None:
                raise DfsError("recovery requires the journal")
            image = self.journal.recovered_image()
        else:
            image = checkpoint.copy().replay(records or [])
        self.counters["recoveries"] += 1

        # Namespace: reconcile the object graph against the image.
        for path in [p for p in self._files if p not in image.files]:
            # Unreachable in-place (namespace records are synchronous);
            # kept so recover() also works onto a fresh standby.
            self._drop_file_state(path)
        for path, fimg in image.files.items():
            file = self._files.get(path)
            if file is None:
                file = FileInfo(
                    path,
                    FileKind(fimg["kind"]),
                    ReplicationFactor(fimg["d"], fimg["v"]),
                    fimg["created_at"],
                )
                for index, size in enumerate(fimg["sizes"]):
                    block = BlockInfo(file, index, size)
                    file.blocks.append(block)
                    self._blocks[block.block_id] = block
                self._files[file.path] = file
            else:
                file.kind = FileKind(fimg["kind"])
                file.adjusted_volatile = fimg["adjusted"]

        # Replica maps: reset to journal-proven knowledge.
        for path, fimg in image.files.items():
            file = self._files[path]
            for block, reps in zip(file.blocks, fimg["replicas"]):
                known = {n for n in reps if n in self._infos}
                block.replicas.clear()
                block.replicas.update(known)
                block.dedicated_replicas.clear()
                block.dedicated_replicas.update(
                    n for n in known if self._infos[n].is_dedicated
                )

        # Detector judgements survive the failover (the standby shares
        # the heartbeat stream), so re-apply what the journal may have
        # lost with its tail: an expired node's replicas are dropped
        # again.  Its disk is untouched — a later rejoin re-reports it.
        for nid, info in self._infos.items():
            if self._states.get(nid) is NodeState.DEAD:
                for block_id in info.blocks:
                    block = self._blocks.get(block_id)
                    if block is not None:
                        block.replicas.discard(nid)
                        block.dedicated_replicas.discard(nid)

        self._draining_ids = {
            nid: None for nid in image.draining if nid in self._infos
        }

        # Want-dedicated set, normalised: a live dedicated replica
        # satisfies any want the journal still carries.
        self._want_dedicated = {}
        for path, index in image.wants:
            file = self._files.get(path)
            if file is None or file.kind is FileKind.RELIABLE:
                continue
            if index >= len(file.blocks):
                continue
            block = file.blocks[index]
            if not self.live_dedicated_replicas(block):
                self._want_dedicated[block.block_id] = None

        # The replication queue and watcher dirty-sets are derived
        # state: recompute both with a full deficit scan (this is what
        # lets them survive checkpoint truncation — they are never
        # journaled at all).
        self._repl_queue = []
        self._queued = {}
        self._watch_pending = {}
        for path in list(self._watchers):
            file = self._files.get(path)
            if file is None:
                self._watchers.pop(path, None)
                continue
            pending = {
                b.block_id: None for b in file.blocks if self._block_deficit(b)
            }
            if pending:
                self._watch_pending[path] = pending
            else:
                self._fire_watchers(file)
        for file in self._files.values():
            for block in file.blocks:
                if (
                    self._block_deficit(block)
                    or block.block_id in self._want_dedicated
                ):
                    self._enqueue(block)
        return image

    def simulate_crash(self) -> Dict[str, object]:
        """Kill the NameNode and fail over: the unsynced journal tail
        dies with the master, a standby replays checkpoint + durable
        log (charged at ``replay_seconds_per_record``), then datanodes
        re-report their disks on a staggered schedule.  Returns the
        recovery stats (also pushed to metrics and the flight
        recorder)."""
        if self.journal is None:
            raise DfsError("simulate_crash requires the journal (--journal on)")
        t0 = self.sim.now
        jcfg = self.config.journal
        self.counters["namenode_crashes"] += 1
        lost = self.journal.drop_unsynced()
        self.counters["journal_records_lost"] += lost
        replayed = len(self.journal.durable_records())
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "dfs.namenode_crash", "dfs", t0,
                lost_records=lost, replay_records=replayed,
            )
        self.recover()
        # Every datanode owes the new master a block report.  ALIVE
        # nodes deliver on a staggered schedule once replay finishes;
        # the rest report when they wake or rejoin.
        self._report_owed = {nid: None for nid in sorted(self._infos)}
        reporters = [
            nid
            for nid in self._report_owed
            if self._states.get(nid) is NodeState.ALIVE
        ]
        replay_time = jcfg.replay_seconds_per_record * replayed
        t_first = t0 + replay_time + jcfg.block_report_delay
        for k, nid in enumerate(reporters):
            self.sim.call_at(
                t_first + k * jcfg.block_report_stagger,
                self._scheduled_report,
                nid,
                daemon=True,
            )
        t_done = (
            t_first + (len(reporters) - 1) * jcfg.block_report_stagger
            if reporters
            else t0 + replay_time
        )
        self.sim.call_at(
            t_done, self._finish_recovery, t0, replayed, len(reporters),
            daemon=True,
        )
        return {
            "crashed_at": t0,
            "lost_records": lost,
            "replayed_records": replayed,
            "reporters": len(reporters),
            "recovery_done_at": t_done,
        }

    def _scheduled_report(self, node_id: int) -> None:
        # Owed may have been cleared (rejoin, decommission, a second
        # crash); a node that went silent meanwhile reports on wake.
        if (
            node_id in self._report_owed
            and self._states.get(node_id) is NodeState.ALIVE
        ):
            self.deliver_block_report(node_id)

    def deliver_block_report(self, node_id: int) -> Tuple[int, int]:
        """Reconcile one node's disk contents against the recovered
        replica maps: registrations lost with the unsynced journal tail
        are re-learned here, and replicas the journal remembers but the
        disk no longer holds are dropped.  Returns ``(added,
        dropped)``."""
        self._report_owed.pop(node_id, None)
        info = self._infos.get(node_id)
        if info is None:
            return (0, 0)
        added = dropped = 0
        for block_id in list(info.blocks):
            block = self._blocks.get(block_id)
            if block is None:
                info.blocks.pop(block_id, None)
                continue
            if node_id in block.replicas:
                continue
            was_needed = self._block_deficit(block)
            self._j("add", path=block.file.path, i=block.index, node=node_id)
            block.replicas.add(node_id)
            if info.is_dedicated:
                block.dedicated_replicas.add(node_id)
                self._want_dedicated.pop(block.block_id, None)
            added += 1
            self.counters["replicas_recovered"] += 1
            if not was_needed:
                # Re-replication already covered it: thrashing, same as
                # a dead node rejoining.
                self.counters["replication_thrash"] += 1
            self._watched_block_changed(block)
        # Phantom sweep: journal-attributed replicas the disk lacks.
        for block in self._blocks.values():
            if node_id in block.replicas and block.block_id not in info.blocks:
                self._j(
                    "drop", path=block.file.path, i=block.index, node=node_id
                )
                block.replicas.discard(node_id)
                block.dedicated_replicas.discard(node_id)
                dropped += 1
                if self._block_deficit(block):
                    self._enqueue(block)
        return (added, dropped)

    def _finish_recovery(self, t0: float, replayed: int, reporters: int) -> None:
        dt = self.sim.now - t0
        self.sim.obs.metrics.histogram("dfs/recovery_seconds").observe(dt)
        tracer = self.sim.obs.tracer
        if tracer.enabled:
            tracer.span(
                "dfs.namenode_recovery", "dfs", t0, self.sim.now,
                replay_records=replayed, reports=reporters,
            )

    # ------------------------------------------------------------------
    def replication_queue_length(self) -> int:
        return len(self._queued)

    def stop(self) -> None:
        """Halt periodic services (end of experiment)."""
        self._repl_task.stop()
        self._p_task.stop()
        self.throttle.stop()
        if self._ckpt_task is not None:
            self._ckpt_task.stop()
