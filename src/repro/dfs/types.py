"""Core MOON-DFS data types: replication factors, files, blocks.

Paper Section IV: the replication factor of a file is the pair
``{d, v}`` (dedicated + volatile replicas); files are *reliable*
(never lost: input, system data, committed output) or *opportunistic*
(transient: intermediate data, in-flight output).
"""

from __future__ import annotations

import enum
import itertools
import sys
from typing import Dict, List, NamedTuple, Optional, Set

from ..errors import DfsError


class ReplicationFactor(NamedTuple):
    """``{d, v}`` — replicas on dedicated / volatile DataNodes."""

    dedicated: int
    volatile: int

    def validate(self) -> None:
        if self.dedicated < 0 or self.volatile < 0:
            raise DfsError("replica counts must be non-negative")
        if self.dedicated + self.volatile == 0:
            raise DfsError("replication factor must request >= 1 replica")

    @property
    def total(self) -> int:
        return self.dedicated + self.volatile

    def __str__(self) -> str:
        return f"{{{self.dedicated},{self.volatile}}}"


class FileKind(enum.Enum):
    """MOON's two file classes (IV-A): RELIABLE vs OPPORTUNISTIC."""
    RELIABLE = "reliable"
    OPPORTUNISTIC = "opportunistic"


class NodeState(enum.Enum):
    """NameNode's judgement of a DataNode (paper IV-C)."""

    ALIVE = "alive"
    HIBERNATED = "hibernated"
    DEAD = "dead"


class BlockInfo:
    """One DFS block plus the NameNode's replica map for it."""

    __slots__ = (
        "block_id",
        "file",
        "index",
        "size_mb",
        "replicas",
        "dedicated_replicas",
    )

    _ids = itertools.count()

    def __init__(self, file: "FileInfo", index: int, size_mb: float) -> None:
        if size_mb < 0:
            raise DfsError("negative block size")
        self.block_id = next(BlockInfo._ids)
        self.file = file
        self.index = index
        self.size_mb = size_mb
        #: node_id -> True for every node holding a replica.
        self.replicas: Set[int] = set()
        #: subset of ``replicas`` on dedicated nodes (kept in sync by
        #: the NameNode, which knows node kinds).
        self.dedicated_replicas: Set[int] = set()

    @property
    def volatile_replicas(self) -> Set[int]:
        return self.replicas - self.dedicated_replicas

    @property
    def label(self) -> str:
        """Run-stable identity ``path#index`` — unlike ``block_id``
        (process-global counter), the label survives checkpoints,
        failovers and process boundaries; traces and journal records
        use it exclusively."""
        return f"{self.file.path}#{self.index}"

    def has_dedicated_replica(self) -> bool:
        return bool(self.dedicated_replicas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Block#{self.block_id} {self.file.path}[{self.index}] "
            f"{self.size_mb:.1f}MB reps={sorted(self.replicas)}>"
        )


class FileInfo:
    """A DFS file: path, kind, replication target and blocks."""

    __slots__ = (
        "path",
        "kind",
        "rf",
        "blocks",
        "committed",
        "adjusted_volatile",
        "created_at",
    )

    def __init__(
        self,
        path: str,
        kind: FileKind,
        rf: ReplicationFactor,
        created_at: float,
    ) -> None:
        rf.validate()
        # Interned: paths recur in every block label, journal record and
        # trace row — million-block namespaces must not store a million
        # copies of "/job3/part-00017".
        self.path = sys.intern(path)
        self.kind = kind
        self.rf = rf
        self.blocks: List[BlockInfo] = []
        self.committed = False
        #: When an opportunistic file's dedicated replica was declined,
        #: the NameNode records the adaptive v' here (paper IV-A).
        self.adjusted_volatile: Optional[int] = None
        self.created_at = created_at

    @property
    def is_reliable(self) -> bool:
        return self.kind is FileKind.RELIABLE

    @property
    def size_mb(self) -> float:
        return sum(b.size_mb for b in self.blocks)

    def volatile_target(self) -> int:
        """Current volatile replica goal (adaptive v' wins if larger)."""
        if self.adjusted_volatile is not None:
            return max(self.rf.volatile, self.adjusted_volatile)
        return self.rf.volatile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<File {self.path} {self.kind.value} rf={self.rf}>"


class DataNodeInfo:
    """Per-node storage accounting kept by the NameNode.

    ``blocks`` is an insertion-ordered dict of block ids, not a set:
    the NameNode's node-state sweeps iterate it and the order feeds
    the replication queue.  An int set would iterate in *value* order,
    tying behaviour to the global block-id counter (and therefore to
    whatever else ran earlier in the process).
    """

    __slots__ = ("node_id", "is_dedicated", "capacity_mb", "used_mb", "blocks")

    def __init__(self, node_id: int, is_dedicated: bool, capacity_mb: float):
        self.node_id = node_id
        self.is_dedicated = is_dedicated
        self.capacity_mb = capacity_mb
        self.used_mb = 0.0
        self.blocks: Dict[int, None] = {}

    def has_room(self, size_mb: float) -> bool:
        return self.used_mb + size_mb <= self.capacity_mb

    def add_block(self, block: BlockInfo) -> None:
        if block.block_id not in self.blocks:
            self.blocks[block.block_id] = None
            self.used_mb += block.size_mb

    def drop_block(self, block: BlockInfo) -> None:
        if block.block_id in self.blocks:
            del self.blocks[block.block_id]
            self.used_mb = max(0.0, self.used_mb - block.size_mb)
