"""Sliding-window I/O throttling on dedicated DataNodes (Algorithm 1).

The paper's algorithm verbatim: given the current sample ``bw_i`` and
the mean ``avg_bw`` of the previous ``W`` samples,

* if ``bw_i > avg_bw`` and the node is *unthrottled* and
  ``bw_i < avg_bw * (1 + Tb)`` — the bandwidth is still rising but only
  by a small margin — the node is **throttled** (saturated);
* if ``bw_i < avg_bw`` and the node is *throttled* and
  ``bw_i < avg_bw * (1 - Tb)`` — the bandwidth fell by more than the
  margin — the node is **unthrottled**.

The hysteresis avoids flapping on load oscillation.  Samples are the
I/O bandwidth consumed per interval, which each dedicated DataNode
reports to the NameNode piggybacked on heartbeats; here the
:class:`ThrottleService` derives them from the network model's served-
byte counters on a fixed sampling period.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from ..config import DfsConfig
from ..net import NetworkModel
from ..simulation import PeriodicTask, Simulation

THROTTLED = "throttled"
UNTHROTTLED = "unthrottled"


class ThrottleDetector:
    """Algorithm 1 for a single dedicated DataNode."""

    __slots__ = ("window", "threshold", "_samples", "state", "transitions")

    def __init__(self, window: int, threshold: float) -> None:
        self.window = window
        self.threshold = threshold
        self._samples: deque = deque(maxlen=window)
        self.state = UNTHROTTLED
        self.transitions = 0

    @property
    def throttled(self) -> bool:
        return self.state == THROTTLED

    def observe(self, bw: float) -> str:
        """Feed one bandwidth sample; returns the (possibly new) state.

        Deviation note: the paper's inequalities are strict, which is
        fine for noisy real measurements where ``bw == avg`` has measure
        zero.  A deterministic simulator serving a saturated queue emits
        *exactly* equal samples, so a flat **positive** plateau is
        treated as the limiting case of "increasing by a small margin"
        and throttles; a flat zero plateau (idle node) never does.
        """
        if len(self._samples) == self.window:
            avg_bw = sum(self._samples) / self.window
            if bw > avg_bw:
                if self.state == UNTHROTTLED and bw < avg_bw * (1.0 + self.threshold):
                    self.state = THROTTLED
                    self.transitions += 1
            elif bw < avg_bw:
                if self.state == THROTTLED and bw < avg_bw * (1.0 - self.threshold):
                    self.state = UNTHROTTLED
                    self.transitions += 1
            elif bw > 0.0 and self.state == UNTHROTTLED:
                self.state = THROTTLED
                self.transitions += 1
        self._samples.append(bw)
        return self.state


class ThrottleService:
    """Samples served bandwidth for every dedicated node and runs one
    :class:`ThrottleDetector` each; consulted by the placement policy."""

    def __init__(
        self,
        sim: Simulation,
        network: NetworkModel,
        dedicated_ids: Iterable[int],
        config: DfsConfig,
        on_unthrottled: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.detectors: Dict[int, ThrottleDetector] = {
            nid: ThrottleDetector(config.throttle_window, config.throttle_threshold)
            for nid in dedicated_ids
        }
        self._last_mb: Dict[int, float] = {
            nid: network.mb_served.get(nid, 0.0) for nid in self.detectors
        }
        self._on_unthrottled = on_unthrottled
        self._task = PeriodicTask(
            sim, config.throttle_sample_interval, self._sample
        )

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """Start watching a freshly provisioned dedicated DataNode."""
        if node_id in self.detectors:
            return
        self.detectors[node_id] = ThrottleDetector(
            self.config.throttle_window, self.config.throttle_threshold
        )
        self._last_mb[node_id] = self.network.mb_served.get(node_id, 0.0)

    def remove_node(self, node_id: int) -> None:
        """Forget a decommissioned node (its id may be reused later)."""
        self.detectors.pop(node_id, None)
        self._last_mb.pop(node_id, None)

    # ------------------------------------------------------------------
    def is_throttled(self, node_id: int) -> bool:
        det = self.detectors.get(node_id)
        return det.throttled if det is not None else False

    def all_throttled(self) -> bool:
        """True when *every* dedicated DataNode is saturated — the
        condition under which opportunistic writes are declined."""
        return bool(self.detectors) and all(
            d.throttled for d in self.detectors.values()
        )

    def unthrottled_nodes(self) -> List[int]:
        return [nid for nid, d in self.detectors.items() if not d.throttled]

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        dt = self.config.throttle_sample_interval
        for nid, det in self.detectors.items():
            total = self.network.mb_served.get(nid, 0.0)
            bw = (total - self._last_mb[nid]) / dt
            self._last_mb[nid] = total
            was = det.throttled
            det.observe(bw)
            if was and not det.throttled and self._on_unthrottled is not None:
                self._on_unthrottled(nid)
