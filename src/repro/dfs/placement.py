"""Write-placement decision process (paper Figure 3 + Section IV-A/B).

Rules implemented:

* **Reliable file** — dedicated replicas are always satisfied on
  dedicated DataNodes (even when they are saturated: reliable writes
  take priority over opportunistic ones at full load).
* **Opportunistic file** — a dedicated replica is *declined* when every
  dedicated DataNode is near saturation (Algorithm 1 state); the
  volatile degree is then adjusted to ``v'`` so that availability under
  the currently estimated node unavailability ``p`` exceeds the
  user-defined goal: ``1 - p^v' > A``.
* First volatile replica goes to the writing client's own node when
  possible (Hadoop's local-first write), remaining volatile targets are
  drawn uniformly from alive volatile DataNodes with room.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from ..errors import DfsError
from .availability import required_volatile_replicas
from .types import BlockInfo, DataNodeInfo, FileInfo, FileKind


@dataclass
class WritePlan:
    """Ordered pipeline targets for one block write."""

    targets: List[int] = field(default_factory=list)
    dedicated_declined: bool = False
    adjusted_volatile: Optional[int] = None

    @property
    def n_targets(self) -> int:
        return len(self.targets)


class PlacementPolicy:
    """Chooses replica targets.  The NameNode supplies cluster views via
    the ``namenode`` protocol (alive nodes, throttle state, p estimate)."""

    def __init__(self, namenode) -> None:
        self.namenode = namenode

    # ------------------------------------------------------------------
    def plan_write(
        self,
        file: FileInfo,
        block: BlockInfo,
        client_node: Optional[int],
        exclude: Sequence[int] = (),
    ) -> WritePlan:
        nn = self.namenode
        plan = WritePlan()
        excluded: Set[int] = set(exclude) | block.replicas

        want_d = file.rf.dedicated
        dedicated_targets: List[int] = []
        if want_d > 0:
            if file.kind is FileKind.RELIABLE:
                # Always satisfied on dedicated DataNodes.
                dedicated_targets = self._pick_dedicated(
                    want_d, excluded, require_unthrottled=False, size=block.size_mb
                )
            else:
                if nn.throttle.all_throttled():
                    plan.dedicated_declined = True
                    nn.counters["writes_declined_dedicated"] += 1
                else:
                    dedicated_targets = self._pick_dedicated(
                        want_d, excluded, require_unthrottled=True, size=block.size_mb
                    )
                    if not dedicated_targets:
                        plan.dedicated_declined = True
                        nn.counters["writes_declined_dedicated"] += 1

        want_v = file.volatile_target()
        if plan.dedicated_declined:
            # Adaptive rule: raise v so 1 - p^v' exceeds the goal.
            v_prime = required_volatile_replicas(
                nn.config.availability_goal,
                nn.estimated_p(),
                nn.config.max_volatile_replicas,
            )
            plan.adjusted_volatile = v_prime
            want_v = max(want_v, v_prime)

        volatile_targets = self._pick_volatile(
            want_v, excluded | set(dedicated_targets), client_node, block.size_mb
        )

        # Pipeline order: local copy first (cheap), then dedicated (gets
        # the availability anchor early), then the other volatile nodes.
        ordered: List[int] = []
        if client_node is not None and client_node in volatile_targets:
            ordered.append(client_node)
            volatile_targets.remove(client_node)
        ordered.extend(dedicated_targets)
        ordered.extend(volatile_targets)
        plan.targets = ordered
        return plan

    # ------------------------------------------------------------------
    def plan_rereplication(self, block: BlockInfo) -> Optional[tuple]:
        """``(source, target)`` for one missing replica, or ``None`` when
        nothing can or needs to be done right now.  Dedicated deficits
        are filled before volatile ones."""
        nn = self.namenode
        file = block.file
        live = [n for n in block.replicas if nn.node_is_servable(n)]
        if not live:
            return None  # nothing to copy from; stays in the queue

        # Prefer volatile sources to spare dedicated bandwidth (IV-B).
        volatile_sources = [n for n in live if not nn.is_dedicated(n)]
        source = volatile_sources[0] if volatile_sources else live[0]

        want_d = file.rf.dedicated
        if (
            file.kind is FileKind.RELIABLE
            and len(nn.live_dedicated_replicas(block)) < want_d
        ):
            targets = self._pick_dedicated(
                1, block.replicas, require_unthrottled=False, size=block.size_mb
            )
            if targets:
                return (source, targets[0])
            return None  # wait for a dedicated node; do not substitute

        if nn.effective_volatile_count(block) < file.volatile_target():
            targets = self._pick_volatile(1, block.replicas, None, block.size_mb)
            if targets:
                return (source, targets[0])
        return None

    # ------------------------------------------------------------------
    def _pick_dedicated(
        self,
        count: int,
        excluded: Set[int],
        require_unthrottled: bool,
        size: float,
    ) -> List[int]:
        nn = self.namenode
        candidates: List[DataNodeInfo] = []
        for info in nn.dedicated_infos():
            if info.node_id in excluded:
                continue
            if not nn.node_is_servable(info.node_id):
                continue
            if require_unthrottled and nn.throttle.is_throttled(info.node_id):
                continue
            if not info.has_room(size):
                continue
            candidates.append(info)
        # Least-loaded first, node-id tiebreak.  nsmallest(k) returns
        # exactly sorted(...)[:k] for any key (the tiebreak makes the
        # order total), at O(n log k) instead of O(n log n) — writes
        # typically want one dedicated replica from a sizeable tier.
        picked = heapq.nsmallest(
            count, candidates, key=lambda i: (i.used_mb, i.node_id)
        )
        return [c.node_id for c in picked]

    def _pick_volatile(
        self,
        count: int,
        excluded: Set[int],
        client_node: Optional[int],
        size: float,
    ) -> List[int]:
        nn = self.namenode
        if count <= 0:
            return []
        chosen: List[int] = []
        if (
            client_node is not None
            and client_node not in excluded
            and not nn.is_dedicated(client_node)
            and nn.node_is_servable(client_node)
            and nn.info(client_node).has_room(size)
        ):
            chosen.append(client_node)
        pool = [
            info.node_id
            for info in nn.volatile_infos()
            if info.node_id not in excluded
            and info.node_id not in chosen
            and nn.node_is_servable(info.node_id)
            and info.has_room(size)
        ]
        need = count - len(chosen)
        if need > 0 and pool:
            rng: np.random.Generator = nn.rng
            take = min(need, len(pool))
            idx = rng.choice(len(pool), size=take, replace=False)
            chosen.extend(pool[i] for i in sorted(idx))
        return chosen


__all__ = ["PlacementPolicy", "WritePlan", "DfsError"]
