"""Write-ahead journal + checkpoints for the NameNode (durable metadata).

The paper's NameNode is an immortal in-memory singleton; this module
gives it a crash story.  Every namespace / block-map mutation appends a
typed, versioned :class:`JournalRecord` *before* the in-memory mutation
applies.  Namespace records (``create`` / ``delete`` / ``convert`` /
``adjust`` / node membership) are synchronously durable; replica-map
records (``add`` / ``drop`` / ``want``) group-commit every
``fsync_interval`` records, so a crash loses at most the unsynced tail
— exactly the window datanode block reports win back during recovery.

Records identify blocks by the run-stable ``(path, index)`` pair, never
the numeric ``block_id``: the id stream is process-global (see
``BlockInfo._ids``), while the label survives checkpoints, failovers
and process boundaries (the byte-identical-golden guarantee rides on
it).

:class:`NamespaceImage` is the pure replay state machine: a canonical,
object-graph-free view of the namespace, replica maps and
want-dedicated set.  ``image.apply(record)`` is **idempotent** —
replaying any journal prefix twice leaves the image exactly where
replaying it once does (pinned by the hypothesis property suite in
``tests/test_namenode_recovery.py``).  Checkpoints are images: the
journal snapshots the live namespace, truncates itself, and recovery is
``checkpoint.replay(durable_records)``.

Journal "I/O" is simulated — records live in memory and fsync is an
accounting event, not a syscall.  The determinism boundary: with the
journal disabled (the default for all paper figures) none of this code
schedules events, so pre-journal goldens stay byte-identical; with it
enabled, checkpoints and post-crash block reports are ordinary
deterministic sim events.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import JournalConfig
from ..errors import DfsError

#: Journal format version; bump on any record-shape change.  Checked
#: against the ARCHITECTURE.md record table by ``tools/check_journal.py``.
SCHEMA_VERSION = 1

#: Record-type registry: type -> (synchronously durable?, payload fields).
#: The payload tuple is the exact, ordered field set — encode/decode and
#: the docs validator both enforce it.
RECORD_TYPES: Dict[str, Tuple[bool, Tuple[str, ...]]] = {
    # namespace records (fsync immediately)
    "create": (True, ("path", "kind", "d", "v", "sizes", "created_at")),
    "delete": (True, ("path",)),
    "convert": (True, ("path",)),
    "adjust": (True, ("path", "v")),
    "node_add": (True, ("node", "dedicated", "capacity_mb")),
    "node_drain": (True, ("node",)),
    "node_retire": (True, ("node",)),
    # replica-map records (group commit)
    "add": (False, ("path", "i", "node")),
    "drop": (False, ("path", "i", "node")),
    "want": (False, ("path", "i")),
}


class JournalRecord:
    """One typed journal entry: ``type`` + primitive payload."""

    __slots__ = ("type", "payload")

    def __init__(self, rtype: str, payload: Dict[str, object]) -> None:
        try:
            _, fields = RECORD_TYPES[rtype]
        except KeyError:
            raise DfsError(f"unknown journal record type: {rtype!r}") from None
        if tuple(sorted(payload)) != tuple(sorted(fields)):
            raise DfsError(
                f"journal record {rtype!r} payload {sorted(payload)} != "
                f"schema fields {sorted(fields)}"
            )
        self.type = rtype
        if "path" in payload:
            payload = dict(payload, path=sys.intern(payload["path"]))
        self.payload = payload

    @property
    def synchronous(self) -> bool:
        return RECORD_TYPES[self.type][0]

    def encode(self) -> str:
        """One JSON line, fields in schema order (byte-stable)."""
        fields = RECORD_TYPES[self.type][1]
        body = {"t": self.type}
        for f in fields:
            body[f] = self.payload[f]
        return json.dumps(body, separators=(",", ":"))

    @classmethod
    def decode(cls, line: str) -> "JournalRecord":
        body = json.loads(line)
        rtype = body.pop("t")
        if "sizes" in body:
            body["sizes"] = list(body["sizes"])
        return cls(rtype, body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JournalRecord {self.encode()}>"


class NamespaceImage:
    """Canonical, pure-data view of NameNode metadata (replay target).

    Everything is primitives and insertion-ordered dicts — no
    ``BlockInfo``/``FileInfo`` object graph — so images can be copied,
    diffed and replayed without touching live state.  Record
    application is idempotent (see module docstring).
    """

    __slots__ = ("nodes", "draining", "files", "wants")

    def __init__(self) -> None:
        #: node_id -> (is_dedicated, capacity_mb)
        self.nodes: Dict[int, Tuple[bool, float]] = {}
        #: node ids mid-drain (replicas non-counting)
        self.draining: Dict[int, None] = {}
        #: path -> {kind, d, v, adjusted, created_at, sizes, replicas}
        #: where ``replicas`` is a list of per-block node-id sets.
        self.files: Dict[str, Dict[str, object]] = {}
        #: (path, index) labels of opportunistic blocks awaiting a
        #: dedicated replica.
        self.wants: Dict[Tuple[str, int], None] = {}

    # ------------------------------------------------------------------
    def copy(self) -> "NamespaceImage":
        img = NamespaceImage()
        img.nodes = dict(self.nodes)
        img.draining = dict(self.draining)
        for path, f in self.files.items():
            img.files[path] = {
                "kind": f["kind"],
                "d": f["d"],
                "v": f["v"],
                "adjusted": f["adjusted"],
                "created_at": f["created_at"],
                "sizes": list(f["sizes"]),
                "replicas": [set(r) for r in f["replicas"]],
            }
        img.wants = dict(self.wants)
        return img

    # ------------------------------------------------------------------
    # Record application (idempotent per record)
    # ------------------------------------------------------------------
    def apply(self, rec: JournalRecord) -> None:
        getattr(self, f"_apply_{rec.type}")(**rec.payload)

    def replay(self, records: Iterable[JournalRecord]) -> "NamespaceImage":
        for rec in records:
            self.apply(rec)
        return self

    def _apply_create(self, path, kind, d, v, sizes, created_at) -> None:
        if path in self.files:
            return
        self.files[sys.intern(path)] = {
            "kind": kind,
            "d": d,
            "v": v,
            "adjusted": None,
            "created_at": created_at,
            "sizes": list(sizes),
            "replicas": [set() for _ in sizes],
        }

    def _apply_delete(self, path) -> None:
        self.files.pop(path, None)
        self._apply_delete_wants(path)

    def _apply_convert(self, path) -> None:
        f = self.files.get(path)
        if f is None:
            return
        f["kind"] = "reliable"
        f["adjusted"] = None
        self._apply_delete_wants(path)

    def _apply_adjust(self, path, v) -> None:
        f = self.files.get(path)
        if f is not None:
            f["adjusted"] = v

    def _apply_add(self, path, i, node) -> None:
        reps = self._block_replicas(path, i)
        if reps is None or node not in self.nodes:
            return
        reps.add(node)
        if self.nodes[node][0]:  # dedicated replica satisfies the want
            self.wants.pop((path, i), None)

    def _apply_drop(self, path, i, node) -> None:
        reps = self._block_replicas(path, i)
        if reps is not None:
            reps.discard(node)

    def _apply_want(self, path, i) -> None:
        f = self.files.get(path)
        if f is None or f["kind"] == "reliable":
            return
        reps = self._block_replicas(path, i)
        if reps is None:
            return
        if any(n in self.nodes and self.nodes[n][0] for n in reps):
            return  # already dedicated-anchored: the want is satisfied
        self.wants[(path, i)] = None

    def _apply_node_add(self, node, dedicated, capacity_mb) -> None:
        self.nodes[node] = (dedicated, capacity_mb)

    def _apply_node_drain(self, node) -> None:
        if node in self.nodes:
            self.draining[node] = None

    def _apply_node_retire(self, node) -> None:
        self.nodes.pop(node, None)
        self.draining.pop(node, None)
        for f in self.files.values():
            for reps in f["replicas"]:
                reps.discard(node)

    # ------------------------------------------------------------------
    def _block_replicas(self, path: str, i: int) -> Optional[set]:
        f = self.files.get(path)
        if f is None or i >= len(f["replicas"]):
            return None
        return f["replicas"][i]

    def _apply_delete_wants(self, path: str) -> None:
        for label in [w for w in self.wants if w[0] == path]:
            del self.wants[label]

    # ------------------------------------------------------------------
    def canonical(self) -> Dict[str, object]:
        """Sorted, primitive form for equality checks and goldens."""
        return {
            "schema": SCHEMA_VERSION,
            "nodes": {
                str(nid): [self.nodes[nid][0], self.nodes[nid][1]]
                for nid in sorted(self.nodes)
            },
            "draining": sorted(self.draining),
            "files": {
                path: {
                    "kind": f["kind"],
                    "rf": [f["d"], f["v"]],
                    "adjusted": f["adjusted"],
                    "created_at": f["created_at"],
                    "sizes": list(f["sizes"]),
                    "replicas": [sorted(r) for r in f["replicas"]],
                }
                for path, f in sorted(self.files.items())
            },
            "wants": sorted(f"{p}#{i}" for p, i in self.wants),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NamespaceImage):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NamespaceImage files={len(self.files)} "
            f"nodes={len(self.nodes)} wants={len(self.wants)}>"
        )


class Journal:
    """The write-ahead log: an ordered record list with a durable
    prefix (``synced``) plus the last checkpoint image.

    ``append`` returns True when the record forced an fsync (so the
    NameNode can count group commits); ``drop_unsynced`` is the crash —
    it throws away the volatile tail and reports how many records died
    with the master.
    """

    def __init__(self, config: JournalConfig) -> None:
        config.validate()
        self.config = config
        self.checkpoint_image = NamespaceImage()
        self.records: List[JournalRecord] = []
        #: Number of leading records that reached stable storage.
        self.synced = 0
        self.appended_total = 0
        self.fsyncs = 0
        self.checkpoints = 0

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def append(self, rtype: str, payload: Dict[str, object], *, sync: Optional[bool] = None) -> bool:
        rec = JournalRecord(rtype, payload)
        self.records.append(rec)
        self.appended_total += 1
        force = rec.synchronous if sync is None else sync
        if force or len(self.records) - self.synced >= self.config.fsync_interval:
            self.fsync()
            return True
        return False

    def fsync(self) -> None:
        if self.synced != len(self.records):
            self.synced = len(self.records)
            self.fsyncs += 1

    def durable_records(self) -> List[JournalRecord]:
        return self.records[: self.synced]

    def unsynced_count(self) -> int:
        return len(self.records) - self.synced

    def drop_unsynced(self) -> int:
        """Crash: the volatile tail never reached stable storage."""
        lost = len(self.records) - self.synced
        del self.records[self.synced :]
        return lost

    # ------------------------------------------------------------------
    def checkpoint(self, image: NamespaceImage) -> int:
        """Install ``image`` as the recovery base and truncate the log.

        A checkpoint is itself a durability barrier (the snapshot
        captures every applied mutation, fsynced or not).  Returns the
        number of records truncated.
        """
        truncated = len(self.records)
        self.checkpoint_image = image.copy()
        self.records.clear()
        self.synced = 0
        self.checkpoints += 1
        return truncated

    def recovered_image(self) -> NamespaceImage:
        """What a failover NameNode can reconstruct: the checkpoint
        plus every *durable* record replayed on top."""
        return self.checkpoint_image.copy().replay(self.durable_records())

    # ------------------------------------------------------------------
    def dump_lines(self) -> List[str]:
        """The durable log as JSON lines (debugging / validator)."""
        return [rec.encode() for rec in self.durable_records()]


__all__ = [
    "SCHEMA_VERSION",
    "RECORD_TYPES",
    "JournalRecord",
    "NamespaceImage",
    "Journal",
]
