"""DFS client: write pipelines and replica-aware reads.

Write path (HDFS-style): blocks are written sequentially; each block
streams through a pipeline of targets chosen by the placement policy
(Figure 3).  The write completes when every planned target has been
attempted and at least one replica of every block exists; shortfalls
are handed to the NameNode's replication queue.  A map task's measured
time therefore grows with the replication degree, which is exactly the
effect behind Table II's map-time column.

Read path: candidates come from the NameNode volatile-first (IV-B).
An attempt against a node that is down but not yet judged dead costs
``client_read_timeout`` seconds before the next candidate is tried —
the timeout penalty hibernation exists to avoid (IV-C).
"""

from __future__ import annotations

import itertools
from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import BlockUnavailable, DfsError, WriteDeclined
from .namenode import NameNode
from .placement import WritePlan
from .types import BlockInfo, FileInfo, FileKind, ReplicationFactor

OnDone = Callable[[], None]
OnError = Callable[[Exception], None]


class WriteOp:
    """State machine driving one file write through its blocks."""

    _ids = itertools.count()

    def __init__(
        self,
        client: "DfsClient",
        file: FileInfo,
        client_node: Optional[int],
        on_complete: OnDone,
        on_fail: OnError,
    ) -> None:
        self.id = next(WriteOp._ids)
        self.client = client
        self.file = file
        self.client_node = client_node
        self.on_complete = on_complete
        self.on_fail = on_fail
        self.block_index = 0
        self.cancelled = False
        #: Plan allocated ahead of time for the next block (when
        #: ``preplan_writes`` is on): ``(block, plan)``.
        self._next_plan: Optional[Tuple[BlockInfo, WritePlan]] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._next_block()

    def cancel(self) -> None:
        """Abandon the write (task killed); replicas already registered
        stay in the namespace until the file is deleted."""
        self.cancelled = True
        self._next_plan = None

    # ------------------------------------------------------------------
    def _take_plan(self, block: BlockInfo) -> WritePlan:
        """Consume the pre-allocated plan for ``block`` if one exists and
        still names at least one target; otherwise plan now.  An empty
        pre-plan (the cluster had no room when it was drawn) is dropped
        rather than failing a write the current cluster could serve."""
        staged = self._next_plan
        self._next_plan = None
        if staged is not None and staged[0] is block and staged[1].targets:
            return staged[1]
        return self.client.namenode.placement.plan_write(
            self.file, block, self.client_node
        )

    def _next_block(self) -> None:
        if self.cancelled:
            return
        if self.block_index >= len(self.file.blocks):
            self.on_complete()
            return
        block = self.file.blocks[self.block_index]
        self.block_index += 1
        plan = self._take_plan(block)
        if plan.adjusted_volatile is not None:
            self.client.namenode.set_adjusted_volatile(
                self.file, plan.adjusted_volatile
            )
        if not plan.targets:
            self.on_fail(
                WriteDeclined(
                    f"no targets for block {block.block_id} of {self.file.path}"
                )
            )
            return
        if (
            self.client.namenode.config.preplan_writes
            and self.block_index < len(self.file.blocks)
        ):
            # Overlap the next allocation with this block's streaming.
            # The plan is allowed to go stale: targets that die before
            # it is used fail through the pipeline's normal skip path,
            # so replica maps still reflect the races.
            nxt = self.file.blocks[self.block_index]
            self._next_plan = (
                nxt,
                self.client.namenode.placement.plan_write(
                    self.file, nxt, self.client_node
                ),
            )
        self._pipeline(block, plan.targets, plan.dedicated_declined, 0, None)

    def _pipeline(
        self,
        block: BlockInfo,
        targets: List[int],
        declined: bool,
        idx: int,
        last_good: Optional[int],
    ) -> None:
        if self.cancelled:
            return
        nn = self.client.namenode
        if idx >= len(targets):
            if not block.replicas:
                self.on_fail(
                    WriteDeclined(f"pipeline wrote no replica of {self.file.path}")
                )
                return
            nn.note_write_shortfall(block, declined)
            self._next_block()
            return

        target = targets[idx]
        source = last_good if last_good is not None else self.client_node

        # Picklable continuations (snapshot/resume): partials of bound
        # methods, never local closures.
        ok = partial(self._stage_ok, block, targets, declined, idx, target)
        bad = partial(self._stage_bad, block, targets, declined, idx, last_good)

        if source is None or source == target:
            nn.network.disk_io(
                target, block.size_mb, on_complete=ok, on_fail=bad, kind="dfs_write"
            )
        else:
            nn.network.transfer(
                source, target, block.size_mb, on_complete=ok, on_fail=bad,
                kind="dfs_write",
            )

    def _stage_ok(
        self,
        block: BlockInfo,
        targets: List[int],
        declined: bool,
        idx: int,
        target: int,
        _t,
    ) -> None:
        self.client.namenode.register_replica(block, target)
        self._pipeline(block, targets, declined, idx + 1, target)

    def _stage_bad(
        self,
        block: BlockInfo,
        targets: List[int],
        declined: bool,
        idx: int,
        last_good: Optional[int],
        _t,
    ) -> None:
        self.client.namenode.counters["write_pipeline_failures"] += 1
        self._pipeline(block, targets, declined, idx + 1, last_good)


class ReadOp:
    """State machine driving one block read with failover + timeouts."""

    def __init__(
        self,
        client: "DfsClient",
        block: BlockInfo,
        reader_node: int,
        size_mb: float,
        on_complete: OnDone,
        on_fail: OnError,
    ) -> None:
        self.client = client
        self.block = block
        self.reader_node = reader_node
        self.size_mb = size_mb
        self.on_complete = on_complete
        self.on_fail = on_fail
        self.cancelled = False
        self._tried: set = set()

    def start(self) -> None:
        self._try_next()

    def cancel(self) -> None:
        self.cancelled = True

    def _try_next(self) -> None:
        if self.cancelled:
            return
        nn = self.client.namenode
        candidates = [
            n
            for n in nn.read_targets(self.block, self.reader_node)
            if n not in self._tried
        ]
        if not candidates:
            nn.counters["read_failures"] += 1
            self.on_fail(
                BlockUnavailable(
                    f"no live replica of block {self.block.block_id} "
                    f"({self.block.file.path})"
                )
            )
            return
        source = candidates[0]
        self._tried.add(source)
        ok = self._read_ok
        bad = self._read_bad

        if source == self.reader_node:
            nn.network.disk_io(
                self.reader_node, self.size_mb, on_complete=ok, on_fail=bad,
                kind="dfs_read",
            )
        else:
            nn.network.transfer(
                source, self.reader_node, self.size_mb, on_complete=ok,
                on_fail=bad, kind="dfs_read",
            )

    def _read_ok(self, _t) -> None:
        if not self.cancelled:
            self.on_complete()

    def _read_bad(self, _t) -> None:
        if self.cancelled:
            return
        # Undetected outage: the client burns a timeout first (IV-C).
        nn = self.client.namenode
        nn.counters["read_timeouts"] += 1
        nn.sim.call_after(nn.config.client_read_timeout, self._try_next)


class DfsClient:
    """Thin facade over the NameNode used by tasks and the job driver."""

    def __init__(self, namenode: NameNode) -> None:
        self.namenode = namenode

    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        size_mb: float,
        kind: FileKind,
        rf: ReplicationFactor,
        client_node: Optional[int],
        on_complete: OnDone,
        on_fail: OnError,
        block_size_mb: Optional[float] = None,
    ) -> WriteOp:
        file = self.namenode.create_file(path, kind, rf, size_mb, block_size_mb)
        op = WriteOp(self, file, client_node, on_complete, on_fail)
        op.start()
        return op

    def read_block(
        self,
        block: BlockInfo,
        reader_node: int,
        on_complete: OnDone,
        on_fail: OnError,
        size_mb: Optional[float] = None,
    ) -> ReadOp:
        """Read a block (or ``size_mb`` of it, for shuffle partitions)."""
        if size_mb is not None and size_mb < 0:
            raise DfsError("negative read size")
        op = ReadOp(
            self,
            block,
            reader_node,
            block.size_mb if size_mb is None else size_mb,
            on_complete,
            on_fail,
        )
        op.start()
        return op

    # ------------------------------------------------------------------
    def stage_input(
        self,
        path: str,
        size_mb: float,
        rf: ReplicationFactor,
        block_size_mb: Optional[float] = None,
    ) -> FileInfo:
        """Materialise an input file directly (no simulated transfer):
        the paper stages inputs before the measured window starts.
        Replicas are spread per the normal placement policy."""
        nn = self.namenode
        file = nn.create_file(path, FileKind.RELIABLE, rf, size_mb, block_size_mb)
        for block in file.blocks:
            plan = nn.placement.plan_write(file, block, None)
            for target in plan.targets:
                nn.register_replica(block, target)
            nn.note_write_shortfall(block, plan.dedicated_declined)
        return file
