"""Analytical availability model (paper Sections I, III, IV-A, VI-C).

The paper's motivating arithmetic, reproduced as a small API:

* at node unavailability ``p = 0.4``, a block needs **11** volatile
  replicas for 99.99% availability (Section I),
* with one dedicated replica (``p_d ~ 0.001``) plus three volatile
  copies, the same 99.99% goal is met (Section III),
* the adaptive rule: choose the smallest ``v'`` with ``1 - p^v' > A``
  (Section IV-A),
* the Hadoop-VO baseline: six uniform replicas give ~99.5% availability
  at ``p = 0.4`` (Section VI-C).
"""

from __future__ import annotations

import math

from ..errors import DfsError


def block_availability(p_volatile: float, v: int, p_dedicated: float = 0.0, d: int = 0) -> float:
    """Probability a block with ``d`` dedicated + ``v`` volatile replicas
    has at least one reachable copy, assuming independent failures."""
    _check_p(p_volatile)
    if d:
        _check_p(p_dedicated)
    if v < 0 or d < 0:
        raise DfsError("replica counts must be non-negative")
    if v + d == 0:
        return 0.0
    return 1.0 - (p_volatile**v) * (p_dedicated**d if d else 1.0)


def required_volatile_replicas(
    availability_goal: float, p: float, max_replicas: int = 64
) -> int:
    """Smallest ``v'`` with ``1 - p^v' > availability_goal``.

    This is MOON's adaptive replication rule for opportunistic files
    whose dedicated replica was declined (paper IV-A).  ``p = 0`` needs
    a single copy; the result is clamped to ``max_replicas``.
    """
    if not 0.0 < availability_goal < 1.0:
        raise DfsError("availability_goal must be in (0, 1)")
    _check_p(p)
    if p == 0.0:
        return 1
    # 1 - p^v > A  <=>  v > log(1 - A) / log(p)   (log p < 0).
    v = math.log(1.0 - availability_goal) / math.log(p)
    result = max(1, math.floor(v) + 1)  # strictly greater
    return min(result, max_replicas)


def replication_cost_mb(size_mb: float, rf_total: int) -> float:
    """Bytes moved to materialise ``rf_total`` copies of a block whose
    first copy is written locally (pipeline traffic)."""
    if rf_total < 1:
        raise DfsError("rf_total must be >= 1")
    return size_mb * (rf_total - 1)


def hybrid_equivalent(
    availability_goal: float, p_volatile: float, p_dedicated: float, max_v: int = 64
) -> int:
    """Volatile replicas needed *alongside one dedicated copy* to reach
    the goal: smallest ``v`` with ``1 - p_d * p^v > goal``."""
    if not 0.0 < availability_goal < 1.0:
        raise DfsError("availability_goal must be in (0, 1)")
    _check_p(p_volatile)
    _check_p(p_dedicated)
    if p_dedicated == 0.0:
        return 0
    for v in range(max_v + 1):
        if 1.0 - p_dedicated * (p_volatile**v) > availability_goal:
            return v
    return max_v


def _check_p(p: float) -> None:
    if not 0.0 <= p < 1.0:
        raise DfsError(f"unavailability must be in [0, 1), got {p}")
