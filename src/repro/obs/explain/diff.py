"""Run-diff triage: where exactly did two runs first diverge?

A bare checksum mismatch says *that* two runs differ; this engine says
*where* — it aligns two flight-recorder files event by event and
reports the first causal divergence (event index, sim time, layer,
event name, differing fields).  It understands both artifacts the obs
layer writes:

* ``--trace-out`` Chrome-trace JSON (``traceEvents``): events are
  compared in file order, which is recording order — the first
  mismatching index is the first moment the two runs did something
  observably different;
* ``--metrics-out`` registry JSON (``counters``/``gauges``/
  ``histograms``): keys are compared in sorted order, so the first
  differing metric is deterministic.

Two identical seeded runs must report "no divergence" — pinned by the
property suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Divergence:
    """The first observed difference between two run artifacts."""

    kind: str  #: "trace" | "metrics"
    #: Event index into ``traceEvents`` (trace) or None (metrics).
    index: Optional[int]
    #: Simulated seconds of the diverging event (None for metrics or
    #: metadata rows, which carry no timestamp).
    sim_time: Optional[float]
    #: Event category (trace) or metric family (metrics) — the layer
    #: the divergence happened in.
    layer: Optional[str]
    #: Event name (trace) or metric key (metrics).
    name: Optional[str]
    #: Human description of what differs (field-level detail).
    detail: str

    def render(self) -> str:
        where = []
        if self.index is not None:
            where.append(f"event {self.index}")
        if self.sim_time is not None:
            where.append(f"t={self.sim_time:.3f}s")
        if self.layer:
            where.append(f"layer={self.layer}")
        if self.name:
            where.append(f"name={self.name}")
        head = ", ".join(where) if where else "structure"
        return f"first divergence at {head}\n  {self.detail}"


def _load(path: str) -> Tuple[str, Any]:
    """Load a run artifact and sniff its kind."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace", doc
    if isinstance(doc, dict) and (
        "counters" in doc or "gauges" in doc or "histograms" in doc
    ):
        return "metrics", doc
    raise ValueError(
        f"{path}: neither a Chrome-trace JSON (traceEvents) nor a "
        "metrics registry JSON (counters/gauges/histograms)"
    )


def _row_time(row: Dict[str, Any]) -> Optional[float]:
    ts = row.get("ts")
    return None if ts is None or row.get("ph") == "M" else ts / 1e6


def _diff_rows(i: int, a: Dict[str, Any], b: Dict[str, Any]) -> Divergence:
    fields = sorted(set(a) | set(b))
    diffs = []
    for f in fields:
        va, vb = a.get(f, "<absent>"), b.get(f, "<absent>")
        if va != vb:
            diffs.append(f"{f}: {va!r} != {vb!r}")
    return Divergence(
        kind="trace",
        index=i,
        sim_time=_row_time(a) if _row_time(a) == _row_time(b) else _row_time(a),
        layer=a.get("cat") or b.get("cat"),
        name=a.get("name") or b.get("name"),
        detail="; ".join(diffs) or "rows differ",
    )


def _diff_trace(a: Dict[str, Any], b: Dict[str, Any]) -> Optional[Divergence]:
    rows_a: List[Dict[str, Any]] = a.get("traceEvents", [])
    rows_b: List[Dict[str, Any]] = b.get("traceEvents", [])
    for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        if ra != rb:
            return _diff_rows(i, ra, rb)
    if len(rows_a) != len(rows_b):
        i = min(len(rows_a), len(rows_b))
        longer = rows_a if len(rows_a) > len(rows_b) else rows_b
        extra = longer[i]
        side = "A" if len(rows_a) > len(rows_b) else "B"
        return Divergence(
            kind="trace",
            index=i,
            sim_time=_row_time(extra),
            layer=extra.get("cat"),
            name=extra.get("name"),
            detail=(
                f"{side} has {abs(len(rows_a) - len(rows_b))} extra "
                f"event(s) from index {i} "
                f"({len(rows_a)} vs {len(rows_b)} total)"
            ),
        )
    return None


def _flatten_metrics(doc: Dict[str, Any]) -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for section in ("counters", "gauges", "histograms"):
        for key, value in doc.get(section, {}).items():
            flat[f"{section}.{key}"] = value
    return flat


def _diff_metrics(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Optional[Divergence]:
    fa, fb = _flatten_metrics(a), _flatten_metrics(b)
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key, "<absent>"), fb.get(key, "<absent>")
        if va != vb:
            family = key.split(".", 1)[-1].split("/", 1)[0]
            return Divergence(
                kind="metrics",
                index=None,
                sim_time=None,
                layer=family,
                name=key,
                detail=f"{va!r} != {vb!r}",
            )
    return None


def diff_files(
    path_a: str, path_b: str
) -> Tuple[str, Optional[Divergence], int]:
    """Compare two run artifacts.

    Returns ``(kind, divergence, compared)`` — ``divergence`` is None
    when the files agree; ``compared`` counts events (trace) or metric
    keys (metrics).  Raises ``ValueError`` on unknown or mismatched
    file kinds."""
    kind_a, doc_a = _load(path_a)
    kind_b, doc_b = _load(path_b)
    if kind_a != kind_b:
        raise ValueError(
            f"cannot diff a {kind_a} file against a {kind_b} file "
            f"({path_a} vs {path_b})"
        )
    if kind_a == "trace":
        compared = max(
            len(doc_a.get("traceEvents", [])),
            len(doc_b.get("traceEvents", [])),
        )
        return "trace", _diff_trace(doc_a, doc_b), compared
    compared = len(set(_flatten_metrics(doc_a)) | set(_flatten_metrics(doc_b)))
    return "metrics", _diff_metrics(doc_a, doc_b), compared
