"""Explanation assembly and rendering (``repro explain`` backend).

:func:`explain_events` is the one entry point: events in, a
:class:`RunExplanation` out — per-job blame, run-local aggregation by
tenant and workload class, and deterministic text tables.  Everything
rendered here uses run-local labels only (service seq / submit index),
so the output is byte-identical across processes regardless of what
ran earlier in the same interpreter (process-global id streams never
leak into reports).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...plotting import table
from .blame import BLAME_CATEGORIES, JobBlame, aggregate, attribute_run
from .model import (
    RunContext,
    build_graphs,
    events_from_tracer,
    load_chrome_trace,
)

#: Version stamp of :meth:`RunExplanation.to_dict` (mirrors
#: ``ServiceReport.to_dict`` versioning).
EXPLAIN_SCHEMA_VERSION = 1

#: Short column headers, one per category, taxonomy order.
_CAT_HEADERS = {
    "queue_wait": "queue s",
    "exec": "exec s",
    "shuffle": "shuf s",
    "straggler_wait": "stragl s",
    "reexec_failure": "re-fail s",
    "reexec_suspicion": "re-susp s",
    "pause": "pause s",
    "recovery": "recov s",
    "slot_wait": "slot s",
    "commit": "commit s",
}


def _fmt(v: float) -> str:
    return f"{v:.1f}"


@dataclass
class RunExplanation:
    """Everything the explain layer derived from one run's trace."""

    jobs: List[JobBlame]
    ctx: RunContext = field(repr=False, default=None)
    #: Admitted jobs the trace saw start but never finish (no blame —
    #: there is no response time to conserve against).
    unfinished: int = 0

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def job(self, seq: int) -> Optional[JobBlame]:
        """The job with service seq ``seq`` (or submit index for
        batch traces without a queue)."""
        for blame in self.jobs:
            if blame.graph.seq == seq:
                return blame
        for blame in self.jobs:
            if blame.graph.seq is None and blame.graph.index == seq:
                return blame
        return None

    def worst(self, k: int) -> List[JobBlame]:
        """The k slowest jobs by response time (deterministic
        tie-break on submit order)."""
        ranked = sorted(
            self.jobs,
            key=lambda b: (-b.response_time, b.graph.index),
        )
        return ranked[:k]

    def tenant_jobs(self, tenant: str) -> List[JobBlame]:
        return [b for b in self.jobs if b.graph.tenant == tenant]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def by_tenant(self) -> Dict[str, Dict[str, float]]:
        return aggregate(self.jobs, lambda b: b.graph.tenant or "(batch)")

    def by_workload(self) -> Dict[str, Dict[str, float]]:
        return aggregate(self.jobs, lambda b: b.graph.workload or "?")

    def totals(self) -> Dict[str, float]:
        """Run-wide component sums (the ``blame/*`` metrics)."""
        return {
            c: math.fsum(b.components[c] for b in self.jobs)
            for c in BLAME_CATEGORIES
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _group_table(
        self, groups: Dict[str, Dict[str, float]], label: str, title: str
    ) -> str:
        headers = [label, "jobs", "resp s"] + [
            _CAT_HEADERS[c] for c in BLAME_CATEGORIES
        ]
        counts: Dict[str, int] = {}
        for blame in self.jobs:
            key = (
                (blame.graph.tenant or "(batch)")
                if label == "tenant"
                else (blame.graph.workload or "?")
            )
            counts[key] = counts.get(key, 0) + 1
        rows = []
        for name, comps in groups.items():
            total = math.fsum(comps.values())
            rows.append(
                [name, counts.get(name, 0), _fmt(total)]
                + [_fmt(comps[c]) for c in BLAME_CATEGORIES]
            )
        return table(headers, rows, title=title)

    def render_aggregates(self) -> str:
        """Blame-by-tenant and blame-by-workload tables."""
        parts = [
            self._group_table(
                self.by_tenant(), "tenant",
                "blame by tenant (seconds of summed response time)",
            ),
            self._group_table(
                self.by_workload(), "class",
                "blame by job class",
            ),
        ]
        if self.unfinished:
            parts.append(
                f"({self.unfinished} admitted job(s) never finished - "
                "not attributable)"
            )
        return "\n\n".join(parts)

    def render_job(self, blame: JobBlame) -> str:
        """One job's breakdown plus its critical-path segments."""
        g = blame.graph
        head = (
            f"{g.label} tenant={g.tenant or '-'} "
            f"class={g.workload or '?'} state={g.state or '?'} "
            f"response={blame.response_time:.1f}s "
            f"(arrived {g.arrival:.1f}s, finished {g.finished:.1f}s; "
            f"{g.maps} maps, {g.reduces} reduces)"
        )
        lines = [head, "  blame:"]
        for c in BLAME_CATEGORIES:
            v = blame.components[c]
            if v > 1e-9:
                share = v / blame.response_time if blame.response_time else 0.0
                lines.append(f"    {c:<17} {v:9.1f}s  {share:6.1%}")
        lines.append(
            f"    {'(sum)':<17} {blame.total:9.1f}s  "
            f"(response {blame.response_time:.1f}s)"
        )
        lines.append("  critical path:")
        for seg in blame.segments:
            anchor = f"  <- {seg.anchor}" if seg.anchor else ""
            lines.append(
                f"    {seg.start:10.1f}s .. {seg.end:10.1f}s "
                f"{seg.category:<17} {seg.seconds:8.1f}s{anchor}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Versioned summary for ``repro explain --json``."""
        return {
            "schema_version": EXPLAIN_SCHEMA_VERSION,
            "jobs": [
                {
                    "label": b.graph.label,
                    "seq": b.graph.seq,
                    "tenant": b.graph.tenant,
                    "workload": b.graph.workload,
                    "state": b.graph.state,
                    "response_time": b.response_time,
                    "blame": dict(b.components),
                }
                for b in self.jobs
            ],
            "by_tenant": self.by_tenant(),
            "by_workload": self.by_workload(),
            "totals": self.totals(),
            "unfinished": self.unfinished,
        }


def explain_events(events) -> RunExplanation:
    """Events (recording order) -> a full run explanation."""
    graphs, ctx = build_graphs(events)
    blames = attribute_run(graphs, ctx)
    unfinished = sum(1 for g in graphs if g.finished is None)
    return RunExplanation(jobs=blames, ctx=ctx, unfinished=unfinished)


def explain_tracer(tracer) -> RunExplanation:
    """Explain a live tracer (``MoonService`` calls this post-run)."""
    return explain_events(events_from_tracer(tracer))


def explain_trace_file(path: str) -> RunExplanation:
    """Explain a ``--trace-out`` Chrome-trace JSON offline."""
    return explain_events(load_chrome_trace(path))
