"""Causal reconstruction: flight-recorder events -> per-job graphs.

The tracer records *what happened*; this module rebuilds *why* — one
:class:`JobGraph` per job, linking admission (``queue.wait``), launch
causes (``sched.assign``/attempt spans carry ``cause``), preemption
pauses, suspicion requeues, node outages, NameNode recovery windows
and the commit boundary into a single per-job causal timeline that
:mod:`repro.obs.explain.blame` partitions into blame categories.

Sources are interchangeable: a live :class:`~repro.obs.trace.Tracer`
(:func:`events_from_tracer`) or a Chrome-trace JSON file written by
``--trace-out`` (:func:`load_chrome_trace`) — the explain layer is an
offline consumer of the flight recorder, never a participant in the
simulation.

Identifier discipline: process-global id streams (``job12``,
attempt 473) are not stable across in-process reruns, so every label
this layer *renders* is run-local — the service ``seq`` when the job
came through the queue, the submit-order ``index`` otherwise, and
task labels with the job prefix stripped (``m3``, ``r1``).  Raw ids
stay available on the graph for joining back to the trace.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace import TraceEvent


def events_from_tracer(tracer) -> List[TraceEvent]:
    """The tracer's recorded rows, in recording order."""
    return list(tracer.events)


def load_chrome_trace(path: str) -> List[TraceEvent]:
    """Parse a ``--trace-out`` Chrome-trace JSON back into events.

    Metadata rows (``ph == "M"``) are lane names, not events; times
    come back from microseconds to simulated seconds."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events: List[TraceEvent] = []
    for row in doc.get("traceEvents", []):
        if row.get("ph") == "M":
            continue
        dur = row.get("dur")
        events.append(
            TraceEvent(
                row.get("name", ""),
                row.get("cat", ""),
                row.get("ts", 0.0) / 1e6,
                None if dur is None else dur / 1e6,
                row.get("tid", 0),
                dict(row.get("args", {})),
            )
        )
    return events


def _parse_phases(encoded: str) -> Dict[str, float]:
    """Decode the attempt span's ``name=ts;...`` phase-mark string."""
    phases: Dict[str, float] = {}
    if not encoded:
        return phases
    for part in encoded.split(";"):
        name, _, value = part.partition("=")
        try:
            phases[name] = float(value)
        except ValueError:  # pragma: no cover - malformed external file
            continue
    return phases


@dataclass
class AttemptNode:
    """One finished task attempt, as the trace recorded it."""

    task_label: str  #: job-local task id ("m3", "r1")
    kind: str  #: "map" | "reduce"
    start: float
    end: float
    node: int
    outcome: str  #: "succeeded" | "failed" | "killed"
    speculative: bool
    cause: str  #: "first" | "speculative" | "failure" | "suspicion" | "fetch_failure"
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def is_rework(self) -> bool:
        """Re-executed work: this launch exists because earlier work
        was lost (failure/expiry, a suspicion requeue, or a fetch
        failure) — not a first copy and not a speculative hedge."""
        return self.cause in ("failure", "suspicion", "fetch_failure")

    def alive_at(self, t: float) -> bool:
        return self.start <= t < self.end

    def in_shuffle_at(self, t: float) -> bool:
        """Reduce-side shuffle window: from launch until the
        ``shuffle_done`` mark (an attempt killed mid-shuffle never
        marks it — its whole runtime was shuffle)."""
        if self.kind != "reduce":
            return False
        done = self.phases.get("shuffle_done")
        return done is None or t < done


@dataclass
class JobGraph:
    """The causal timeline of one job, rebuilt from the trace."""

    job_id: str
    index: int  #: submit order within the run (run-local, stable)
    admitted: float  #: JobTracker submit time
    arrival: float  #: queue arrival (== admitted for batch runs)
    seq: Optional[int] = None  #: service arrival seq (queue.wait join)
    tenant: Optional[str] = None
    workload: Optional[str] = None
    finished: Optional[float] = None
    state: Optional[str] = None  #: terminal JobState value
    maps: int = 0
    reduces: int = 0
    priority: int = 0
    attempts: List[AttemptNode] = field(default_factory=list)
    #: Preemption pause windows [(pause, resume)]; an unresumed pause
    #: is closed at job end by :func:`build_graphs`.
    pauses: List[Tuple[float, float]] = field(default_factory=list)
    #: Suspicion-requeue instants that returned this job's tasks to
    #: the scheduler (detector.requeue fan-out).
    requeues: List[float] = field(default_factory=list)
    #: COMMITTING boundary: compute done, replication wait begins.
    commit_at: Optional[float] = None

    @property
    def label(self) -> str:
        """Run-local display label (never a process-global id)."""
        return f"seq{self.seq}" if self.seq is not None else f"job#{self.index}"

    @property
    def response_time(self) -> Optional[float]:
        if self.finished is None:
            return None
        return self.finished - self.arrival


@dataclass
class RunContext:
    """Run-wide facts every job's attribution shares."""

    #: Per-node physical outage windows (from node.suspend/resume).
    node_down: Dict[int, List[Tuple[float, float]]] = field(
        default_factory=dict
    )
    #: NameNode crash-to-reconvergence windows (dfs.namenode_recovery).
    recoveries: List[Tuple[float, float]] = field(default_factory=list)
    #: Largest timestamp seen (closes still-open intervals).
    end_time: float = 0.0

    def node_down_at(self, node: int, t: float) -> bool:
        for start, end in self.node_down.get(node, ()):
            if start <= t < end:
                return True
        return False

    def in_recovery(self, t: float) -> bool:
        for start, end in self.recoveries:
            if start <= t < end:
                return True
        return False


def _task_label(task_id: str) -> str:
    """``job12-m3`` -> ``m3`` (job identity rides on the span args)."""
    _, _, local = task_id.partition("-")
    return local or task_id


def build_graphs(
    events: List[TraceEvent],
) -> Tuple[List[JobGraph], RunContext]:
    """One pass over the recorded events -> job graphs + run context.

    Events arrive in recording order, which the simulator guarantees
    is causal (a span is recorded when it *ends*, instants when they
    happen), so joins only ever look backwards."""
    jobs: Dict[str, JobGraph] = {}
    by_seq: Dict[int, JobGraph] = {}
    open_pauses: Dict[str, float] = {}
    down_since: Dict[int, float] = {}
    ctx = RunContext()

    for ev in events:
        end_ts = ev.ts if ev.dur is None else ev.ts + ev.dur
        if end_ts > ctx.end_time:
            ctx.end_time = end_ts
        cat, name, args = ev.cat, ev.name, ev.args
        if cat == "job":
            if name == "job.submit":
                job_id = args["job"]
                jobs[job_id] = JobGraph(
                    job_id=job_id,
                    index=len(jobs),
                    admitted=ev.ts,
                    arrival=ev.ts,
                    workload=args.get("workload"),
                    maps=int(args.get("maps", 0)),
                    reduces=int(args.get("reduces", 0)),
                    priority=int(args.get("priority", 0)),
                )
            elif name == "job.commit":
                graph = jobs.get(args.get("job"))
                if graph is not None:
                    graph.commit_at = ev.ts
            elif ev.dur is not None:
                # The terminal job span (name == job_id).
                graph = jobs.get(name)
                if graph is not None:
                    graph.finished = ev.ts + ev.dur
                    graph.state = args.get("state")
        elif cat == "queue" and name == "queue.wait":
            graph = jobs.get(args.get("job"))
            if graph is not None:
                graph.arrival = ev.ts
                graph.seq = args.get("seq")
                graph.tenant = args.get("tenant")
                graph.workload = args.get("workload", graph.workload)
                if graph.seq is not None:
                    by_seq[graph.seq] = graph
        elif cat == "attempt":
            graph = jobs.get(args.get("job"))
            if graph is not None:
                graph.attempts.append(
                    AttemptNode(
                        task_label=_task_label(name),
                        kind=args.get("kind", "map"),
                        start=ev.ts,
                        end=ev.ts + (ev.dur or 0.0),
                        node=int(args.get("node", -1)),
                        outcome=args.get("outcome", ""),
                        speculative=bool(args.get("speculative", False)),
                        cause=args.get("cause", "first"),
                        phases=_parse_phases(args.get("phases", "")),
                    )
                )
        elif cat == "preempt":
            graph = jobs.get(args.get("job"))
            if graph is None and args.get("seq") is not None:
                graph = by_seq.get(args["seq"])
            if graph is None:
                continue
            if name == "preempt.pause":
                open_pauses.setdefault(graph.job_id, ev.ts)
            elif name == "preempt.resume":
                started = open_pauses.pop(graph.job_id, None)
                if started is not None:
                    graph.pauses.append((started, ev.ts))
        elif cat == "detector" and name == "detector.requeue":
            for job_id in str(args.get("jobs", "")).split(","):
                graph = jobs.get(job_id)
                if graph is not None:
                    graph.requeues.append(ev.ts)
        elif cat == "node":
            node = args.get("node")
            if node is None:
                continue
            if name == "node.suspend":
                down_since.setdefault(node, ev.ts)
            elif name == "node.resume":
                started = down_since.pop(node, None)
                if started is not None:
                    ctx.node_down.setdefault(node, []).append(
                        (started, ev.ts)
                    )
        elif cat == "dfs" and name == "dfs.namenode_recovery":
            ctx.recoveries.append((ev.ts, ev.ts + (ev.dur or 0.0)))

    # Close still-open windows at the run's end: a job paused at the
    # drain limit stays paused (UNFINISHED), a node down at the end
    # stays down.
    for job_id, started in open_pauses.items():
        graph = jobs[job_id]
        graph.pauses.append(
            (started, graph.finished if graph.finished is not None
             else ctx.end_time)
        )
    for node, started in down_since.items():
        ctx.node_down.setdefault(node, []).append(
            (started, math.inf)
        )
    ordered = sorted(jobs.values(), key=lambda g: g.index)
    return ordered, ctx
