"""Critical-path extraction and blame attribution.

Each finished job's response time is partitioned into the blame
taxonomy below by walking its causal timeline: every instant between
arrival and completion belongs to exactly one category, decided by a
fixed priority order over what was blocking the job then.  Because the
categories partition the timeline, **conservation holds by
construction**: the components sum to the measured response time (to
float tolerance) — the invariant the property suite pins.

Taxonomy (:data:`BLAME_CATEGORIES`, priority order within the
admitted window):

``queue_wait``
    Arrival to admission — the front-door queue.
``pause``
    The job was suspended by SLO preemption (slots lent to tighter
    work).
``recovery``
    A NameNode crash-recovery window overlapped — the DFS control
    plane was down, so writes, replication and commits stalled.
``commit``
    Compute done; waiting for output replication (paper IV-A).
``slot_wait``
    Admitted and runnable but no attempt was live — waiting for
    execution slots (includes deprioritised starvation).
``straggler_wait``
    Attempts existed but every one sat on an unavailable node —
    MOON's frozen-task state (paper V-A).
``reexec_suspicion`` / ``reexec_failure``
    Re-executed work was the only thing making progress: every
    surviving first copy (if any) was blocked in shuffle, waiting on
    a task whose original was lost to a false-positive suspicion
    requeue (``suspicion``) or to real failures/expiries/fetch
    failures (everything else).  This is the detector's bill, split
    by whether the loss was honest.
``shuffle``
    Only first-copy reduces were running and all of them were still
    fetching map output — network-bound time.
``exec``
    First-copy map/reduce work progressing — the irreducible part.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .model import AttemptNode, JobGraph, RunContext

#: Exhaustive, non-overlapping blame categories, table order.
BLAME_CATEGORIES = (
    "queue_wait",
    "exec",
    "shuffle",
    "straggler_wait",
    "reexec_failure",
    "reexec_suspicion",
    "pause",
    "recovery",
    "slot_wait",
    "commit",
)


@dataclass(frozen=True)
class Segment:
    """One maximal critical-path interval with a single blame."""

    start: float
    end: float
    category: str
    #: What anchored the blame: the critical attempt ("m3@n7") for
    #: work categories, None for pure waits.
    anchor: Optional[str] = None

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass
class JobBlame:
    """One job's response time, fully attributed."""

    graph: JobGraph
    components: Dict[str, float]
    segments: List[Segment] = field(repr=False, default_factory=list)

    @property
    def response_time(self) -> float:
        return self.graph.finished - self.graph.arrival

    @property
    def total(self) -> float:
        """Sum of all components — equals response_time by
        construction (the conservation invariant)."""
        return math.fsum(self.components.values())

    @property
    def dominant(self) -> str:
        """The category that ate the most time."""
        return max(
            BLAME_CATEGORIES, key=lambda c: (self.components[c],)
        )


def _classify(
    graph: JobGraph,
    ctx: RunContext,
    t0: float,
    t1: float,
) -> Segment:
    """Blame one elementary interval (no change-point inside it)."""
    mid = (t0 + t1) / 2.0
    for start, end in graph.pauses:
        if start <= mid < end:
            return Segment(t0, t1, "pause")
    if ctx.in_recovery(mid):
        return Segment(t0, t1, "recovery")
    if graph.commit_at is not None and mid >= graph.commit_at:
        return Segment(t0, t1, "commit")
    alive = [a for a in graph.attempts if a.alive_at(mid)]
    if not alive:
        return Segment(t0, t1, "slot_wait")
    running = [a for a in alive if not ctx.node_down_at(a.node, mid)]
    if not running:
        # Every copy frozen on a suspended node: the MOON straggler.
        return Segment(t0, t1, "straggler_wait", _anchor(alive))
    first_copy = [a for a in running if not a.is_rework]
    computing = [a for a in first_copy if not a.in_shuffle_at(mid)]
    if computing:
        return Segment(t0, t1, "exec", _anchor(computing))
    rework = [a for a in running if a.is_rework]
    if rework:
        # Every surviving first copy (if any) is blocked in shuffle;
        # the re-executed work is what the job is actually waiting on.
        cat = (
            "reexec_suspicion"
            if any(a.cause == "suspicion" for a in rework)
            else "reexec_failure"
        )
        return Segment(t0, t1, cat, _anchor(rework))
    return Segment(t0, t1, "shuffle", _anchor(first_copy))


def _anchor(attempts: Sequence[AttemptNode]) -> str:
    """The critical attempt of an interval: the one that survives
    longest (deterministic tie-break on the task label)."""
    a = max(attempts, key=lambda a: (a.end, a.task_label, a.node))
    return f"{a.task_label}@n{a.node}"


def _change_points(graph: JobGraph, ctx: RunContext) -> List[float]:
    """Timestamps where the blame decision can change, clamped to the
    admitted window."""
    lo, hi = graph.admitted, graph.finished
    points = {lo, hi}

    def add(t: Optional[float]) -> None:
        if t is not None and lo < t < hi:
            points.add(t)

    for a in graph.attempts:
        add(a.start)
        add(a.end)
        for mark in a.phases.values():
            add(mark)
    for start, end in graph.pauses:
        add(start)
        add(end)
    for start, end in ctx.recoveries:
        add(start)
        add(end)
    nodes = {a.node for a in graph.attempts}
    for node in nodes:
        for start, end in ctx.node_down.get(node, ()):
            add(start)
            add(end)
    add(graph.commit_at)
    for t in graph.requeues:
        add(t)
    return sorted(points)


def attribute_job(graph: JobGraph, ctx: RunContext) -> Optional[JobBlame]:
    """Attribute one job, or None if it never finished (nothing to
    conserve against)."""
    if graph.finished is None:
        return None
    per_cat: Dict[str, List[float]] = {c: [] for c in BLAME_CATEGORIES}
    per_cat["queue_wait"].append(graph.admitted - graph.arrival)
    segments: List[Segment] = []
    if graph.admitted > graph.arrival:
        segments.append(
            Segment(graph.arrival, graph.admitted, "queue_wait")
        )
    points = _change_points(graph, ctx)
    for t0, t1 in zip(points, points[1:]):
        if t1 <= t0:
            continue
        seg = _classify(graph, ctx, t0, t1)
        per_cat[seg.category].append(seg.seconds)
        if segments and (
            segments[-1].category == seg.category
            and segments[-1].anchor == seg.anchor
            and segments[-1].end == seg.start
        ):
            prev = segments.pop()
            seg = Segment(prev.start, seg.end, seg.category, seg.anchor)
        segments.append(seg)
    components = {c: math.fsum(vs) for c, vs in per_cat.items()}
    return JobBlame(graph=graph, components=components, segments=segments)


def attribute_run(
    graphs: Sequence[JobGraph], ctx: RunContext
) -> List[JobBlame]:
    """Attribute every finished job, in submit order."""
    out = []
    for graph in graphs:
        blame = attribute_job(graph, ctx)
        if blame is not None:
            out.append(blame)
    return out


def aggregate(
    blames: Sequence[JobBlame],
    key: Callable[[JobBlame], str],
) -> Dict[str, Dict[str, float]]:
    """Sum components per group (tenant, workload class, ...).

    Group order follows first appearance in submit order; sums use
    ``fsum`` per category so aggregation is order-independent to the
    last bit."""
    grouped: Dict[str, List[JobBlame]] = {}
    for blame in blames:
        grouped.setdefault(key(blame), []).append(blame)
    return {
        name: {
            c: math.fsum(b.components[c] for b in group)
            for c in BLAME_CATEGORIES
        }
        for name, group in grouped.items()
    }
