"""Causal analysis over the flight recorder (``repro explain``).

Three pieces, layered strictly *on top of* the tracer (nothing here
ever runs inside the simulation):

* :mod:`~repro.obs.explain.model` — rebuild per-job causal graphs
  from recorded spans/instants;
* :mod:`~repro.obs.explain.blame` — extract each job's critical path
  and partition its response time into the exhaustive blame taxonomy
  (components sum to response time, by construction);
* :mod:`~repro.obs.explain.diff` — align two trace/metrics files and
  report the first causal divergence instead of a bare checksum
  mismatch.
"""

from .blame import (
    BLAME_CATEGORIES,
    JobBlame,
    Segment,
    aggregate,
    attribute_job,
    attribute_run,
)
from .diff import Divergence, diff_files
from .model import (
    AttemptNode,
    JobGraph,
    RunContext,
    build_graphs,
    events_from_tracer,
    load_chrome_trace,
)
from .report import (
    EXPLAIN_SCHEMA_VERSION,
    RunExplanation,
    explain_events,
    explain_trace_file,
    explain_tracer,
)

__all__ = [
    "BLAME_CATEGORIES",
    "JobBlame",
    "Segment",
    "aggregate",
    "attribute_job",
    "attribute_run",
    "Divergence",
    "diff_files",
    "AttemptNode",
    "JobGraph",
    "RunContext",
    "build_graphs",
    "events_from_tracer",
    "load_chrome_trace",
    "EXPLAIN_SCHEMA_VERSION",
    "RunExplanation",
    "explain_events",
    "explain_trace_file",
    "explain_tracer",
]
