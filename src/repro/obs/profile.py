"""Wall-clock dispatch-loop profiler (outside the determinism boundary).

The :class:`DispatchProfiler` answers the engine-scale-out question
"which event types eat the dispatch loop?": the engine times every
callback with :func:`time.perf_counter` and records per-``__qualname__``
count and cumulative seconds.  Wall-clock readings are inherently
non-deterministic, which is why the profiler lives *outside* the
determinism boundary: it observes callback durations but never feeds
anything back into the sim clock, the event queue, or the RNG streams —
a profiled run executes the exact same event sequence as an unprofiled
one, just slower.

The hot table (:meth:`DispatchProfiler.table`) is what ``repro
profile`` prints: event types sorted by cumulative time with count,
total ms, mean µs and share of profiled time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Version stamp of the ``repro profile --json`` envelope.  Bump on
#: any key change so downstream tooling can detect incompatible
#: profiles instead of misreading them.
PROFILE_SCHEMA_VERSION = 1


class DispatchProfiler:
    """Per-event-type count + cumulative wall-clock seconds."""

    def __init__(self) -> None:
        #: ``qualname -> [count, total_seconds]`` (list for cheap updates).
        self.stats: Dict[str, List[float]] = {}

    def note(self, key: str, seconds: float) -> None:
        """Record one dispatched callback (called from the engine loop)."""
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @property
    def total_events(self) -> int:
        return int(sum(entry[0] for entry in self.stats.values()))

    @property
    def total_seconds(self) -> float:
        return sum(entry[1] for entry in self.stats.values())

    def rows(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Hot rows sorted by cumulative time (desc), heaviest first."""
        total = self.total_seconds or 1.0
        ordered = sorted(
            self.stats.items(), key=lambda kv: (-kv[1][1], kv[0])
        )
        if top is not None:
            ordered = ordered[:top]
        return [
            {
                "event": name,
                "count": int(count),
                "total_ms": seconds * 1e3,
                "mean_us": (seconds / count) * 1e6 if count else 0.0,
                "share_pct": 100.0 * seconds / total,
            }
            for name, (count, seconds) in ordered
        ]

    def table(self, top: Optional[int] = 20) -> str:
        """Render the hot-event table ``repro profile`` prints."""
        rows = self.rows(top)
        if not rows:
            return "(no events profiled)\n"
        width = max(len("event"), max(len(r["event"]) for r in rows))
        lines = [
            f"{'event':<{width}}  {'count':>10}  {'total ms':>10}  "
            f"{'mean us':>9}  {'share':>6}",
            "-" * (width + 42),
        ]
        for r in rows:
            lines.append(
                f"{r['event']:<{width}}  {r['count']:>10d}  "
                f"{r['total_ms']:>10.1f}  {r['mean_us']:>9.2f}  "
                f"{r['share_pct']:>5.1f}%"
            )
        lines.append(
            f"{'TOTAL':<{width}}  {self.total_events:>10d}  "
            f"{self.total_seconds * 1e3:>10.1f}"
        )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """Deterministically *ordered* snapshot (values are wall-clock)."""
        return {
            name: {"count": int(count), "seconds": seconds}
            for name, (count, seconds) in sorted(self.stats.items())
        }
