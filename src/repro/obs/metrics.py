"""Named counters, gauges and histograms with deterministic export.

The :class:`MetricsRegistry` replaces the ad-hoc ``collections.Counter``
bookkeeping that used to be scattered through ``service/``,
``mapreduce/`` and ``dfs/``.  Instruments are created on first use and
addressed by slash-separated names (``"service/jobs_admitted"``,
``"dfs/replications_issued"``); hot sites resolve the instrument once
and keep the handle.

Determinism rules:

* :meth:`MetricsRegistry.to_dict` sorts every mapping, so serialized
  output is byte-identical across seeded reruns;
* :class:`Histogram` keeps raw observations *per bucket count* plus an
  exact :func:`math.fsum` over values, and :meth:`Histogram.merge`
  re-``fsum``s the concatenated partial sums — merging the same set of
  shards in any order yields identical output bytes.

Metrics never read the sim clock or RNGs; recording them cannot perturb
event order, which is why the registry is always live (unlike tracing,
there is no "off" registry — the cost is integer adds).

:class:`CounterBag` adapts a registry prefix to the mutable-mapping
surface the NameNode's legacy ``counters`` attribute exposed
(``nn.counters["blocks_created"] += 1``, ``dict(nn.counters)``), so
existing call sites and tests keep working unchanged.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ReproError

#: Default histogram bucket upper bounds (seconds; durations/waits).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    600.0, 1800.0, 3600.0, 7200.0, 14400.0,
)

#: Every metric family (the segment before ``/`` in instrument names)
#: with its one-line meaning.  This is the single source of truth that
#: ``tools/check_metrics.py`` holds the code and the ARCHITECTURE.md
#: family table against: emitting a metric under an unlisted family —
#: or documenting a family nothing emits — fails the CI docs job.
METRIC_FAMILIES: Dict[str, str] = {
    "cluster": "volatile-node availability transitions (suspensions, resumes)",
    "detector": "failure-detection verdicts: trips, false positives, requeues, detection latency",
    "dfs": "NameNode namespace/block-map operations, journal activity and recovery",
    "mapreduce": "job/task execution accounting (wasted duplicate work)",
    "net": "shared-uplink flow counts and fair-share water-fill rounds",
    "service": "admission, queueing and SLO accounting for the serving layer",
    "obs": "the recorder's own health (trace events dropped at the cap)",
    "blame": "causal blame attribution: seconds of response time per cause",
}


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time numeric value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucket histogram with an exact value sum.

    ``bounds`` are inclusive upper edges; values above the last bound
    land in the overflow bucket, so ``len(counts) == len(bounds) + 1``.
    Partial sums are kept as a list and reduced with :func:`math.fsum`
    at read time, making :meth:`merge` order-independent bit-for-bit.
    """

    __slots__ = ("name", "bounds", "counts", "count", "_sums", "vmin", "vmax")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self._sums: List[float] = []
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = 0
        for bound in self.bounds:
            if value <= bound:
                break
            idx += 1
        self.counts[idx] += 1
        self.count += 1
        self._sums.append(value)
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def total(self) -> float:
        """Exact (``fsum``) sum of all observed values."""
        return math.fsum(self._sums)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining both shards.

        Bucket bounds must match.  ``a.merge(b)`` and ``b.merge(a)``
        serialize identically: counts are integer adds and the value
        sum is re-``fsum``-ed over every original observation.
        """
        if self.bounds != other.bounds:
            raise ReproError(
                f"cannot merge histograms with different bounds: "
                f"{self.name} vs {other.name}"
            )
        merged = Histogram(self.name, self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged._sums = sorted(self._sums + other._sums)
        mins = [v for v in (self.vmin, other.vmin) if v is not None]
        maxs = [v for v in (self.vmax, other.vmax) if v is not None]
        merged.vmin = min(mins) if mins else None
        merged.vmax = max(maxs) if maxs else None
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        elif inst.bounds != tuple(bounds):
            raise ReproError(f"histogram {name!r} re-registered with different bounds")
        return inst

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Touched counters under ``prefix``, with the prefix stripped."""
        return {
            name[len(prefix):]: c.value
            for name, c in self._counters.items()
            if name.startswith(prefix)
        }

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic (sorted) snapshot of every instrument."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].to_dict() for n in sorted(self._histograms)
            },
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")


class CounterBag:
    """Mutable-mapping facade over one registry prefix.

    Preserves the ``collections.Counter`` semantics the DFS layer
    relies on: reading a missing key returns 0 *without* creating it,
    ``+= n`` works through item access, and ``dict(bag)`` yields only
    the keys that were actually written.
    """

    __slots__ = ("_registry", "_prefix", "_touched")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix
        self._touched: Dict[str, Counter] = {}

    def __getitem__(self, key: str) -> int:
        inst = self._touched.get(key)
        return inst.value if inst is not None else 0

    def __setitem__(self, key: str, value: int) -> None:
        inst = self._touched.get(key)
        if inst is None:
            inst = self._touched[key] = self._registry.counter(self._prefix + key)
        inst.value = value

    def __contains__(self, key: object) -> bool:
        return key in self._touched

    def __iter__(self) -> Iterator[str]:
        return iter(self._touched)

    def __len__(self) -> int:
        return len(self._touched)

    def keys(self) -> Iterable[str]:
        return self._touched.keys()

    def items(self) -> Iterable[Tuple[str, int]]:
        return ((k, c.value) for k, c in self._touched.items())

    def values(self) -> Iterable[int]:
        return (c.value for c in self._touched.values())

    def get(self, key: str, default: int = 0) -> int:
        inst = self._touched.get(key)
        return inst.value if inst is not None else default

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterBag({self._prefix!r}, {dict(self.items())!r})"
