"""Structured, sim-clock-stamped tracing (spans + instants).

The :class:`Tracer` records :class:`TraceEvent` rows — each stamped
with *simulated* seconds, never wall-clock — and exports them in two
forms:

* **Chrome trace-event JSON** (:meth:`Tracer.to_chrome` /
  :meth:`Tracer.write_chrome`): the ``{"traceEvents": [...]}`` format
  loadable in Perfetto or ``chrome://tracing``.  Spans become ``"X"``
  (complete) events with microsecond ``ts``/``dur``; instants become
  ``"i"`` events; lane names are emitted as ``"M"`` metadata.
* **a deterministic text timeline** (:meth:`Tracer.timeline`): one
  line per event, sorted by ``(ts, record order)``, with args rendered
  in sorted key order — byte-identical across seeded reruns.

Recording never touches the simulation clock or RNG streams, so a
traced run executes the exact same event sequence as an untraced one.
Hot call sites guard on :attr:`Tracer.enabled` and the module-level
:data:`NULL_TRACER` singleton keeps the obs-off cost to one attribute
load per site.

Lane (``tid``) convention: each category owns a small fixed lane
(:data:`CATEGORY_LANES`); per-node task-attempt lanes live at
``100 + node_id`` so Perfetto shows one swimlane per node.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Fixed Perfetto lane per event category (``tid`` in the JSON).
CATEGORY_LANES: Dict[str, int] = {
    "job": 1,
    "queue": 2,
    "sched": 3,
    "preempt": 4,
    "autoscale": 5,
    "dfs": 6,
    "node": 7,
    "net": 8,
}

#: Lane offset for per-node attempt swimlanes (``100 + node_id``).
ATTEMPT_LANE_BASE = 100


class TraceEvent:
    """One recorded span or instant (times in simulated seconds)."""

    __slots__ = ("name", "cat", "ts", "dur", "tid", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: Optional[float],
        tid: int,
        args: Dict[str, Any],
    ) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        #: ``None`` for instants, span length in seconds otherwise.
        self.dur = dur
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "instant" if self.dur is None else f"span dur={self.dur:.3f}"
        return f"<TraceEvent {self.name} t={self.ts:.3f} {kind}>"


class Tracer:
    """Append-only recorder for :class:`TraceEvent` rows.

    ``max_events`` bounds memory on very long runs: once full, further
    events are counted in :attr:`dropped` instead of stored (the cap is
    deterministic, so seeded reruns drop the same rows).
    """

    enabled = True

    def __init__(self, max_events: int = 1_000_000, on_drop=None) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0
        #: Optional zero-arg callback fired per dropped event — the
        #: Observability bundle hooks the ``obs/dropped_events``
        #: counter here, so a capped trace is never silent.
        self._on_drop = on_drop

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _drop(self) -> None:
        self.dropped += 1
        if self._on_drop is not None:
            self._on_drop()

    def instant(self, name: str, cat: str, ts: float, tid: Optional[int] = None, **args: Any) -> None:
        """Record a zero-duration marker at simulated time ``ts``."""
        if len(self.events) >= self.max_events:
            self._drop()
            return
        lane = CATEGORY_LANES.get(cat, 0) if tid is None else tid
        self.events.append(TraceEvent(name, cat, ts, None, lane, args))

    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a completed span covering ``[start, end]`` sim-seconds."""
        if len(self.events) >= self.max_events:
            self._drop()
            return
        lane = CATEGORY_LANES.get(cat, 0) if tid is None else tid
        self.events.append(TraceEvent(name, cat, start, max(0.0, end - start), lane, args))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _lane_names(self) -> Dict[int, str]:
        names = {lane: f"{cat}" for cat, lane in CATEGORY_LANES.items()}
        used: Dict[int, str] = {}
        for event in self.events:
            if event.tid not in used:
                if event.tid >= ATTEMPT_LANE_BASE:
                    used[event.tid] = f"node-{event.tid - ATTEMPT_LANE_BASE} attempts"
                else:
                    used[event.tid] = names.get(event.tid, f"lane-{event.tid}")
        return used

    def to_chrome(self) -> Dict[str, Any]:
        """Render as a Chrome trace-event JSON object (Perfetto-loadable)."""
        rows: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "moon-sim"},
            }
        ]
        for tid in sorted(self._lane_names()):
            rows.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": self._lane_names()[tid]},
                }
            )
        for event in self.events:
            row: Dict[str, Any] = {
                "name": event.name,
                "cat": event.cat,
                "ph": "i" if event.dur is None else "X",
                "ts": round(event.ts * 1e6, 3),
                "pid": 1,
                "tid": event.tid,
                "args": event.args,
            }
            if event.dur is None:
                row["s"] = "t"
            else:
                row["dur"] = round(event.dur * 1e6, 3)
            rows.append(row)
        return {"traceEvents": rows, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path`` (deterministic bytes)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")

    def timeline(self) -> str:
        """Deterministic text timeline — one sorted line per event."""
        order = sorted(range(len(self.events)), key=lambda i: (self.events[i].ts, i))
        lines = []
        for i in order:
            event = self.events[i]
            rendered = " ".join(f"{k}={event.args[k]}" for k in sorted(event.args))
            dur = "" if event.dur is None else f" dur={event.dur:.3f}s"
            lines.append(
                f"t={event.ts:12.3f}s [{event.cat:<9}] {event.name}{dur}"
                + (f" {rendered}" if rendered else "")
            )
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events cap)")
        return "\n".join(lines) + ("\n" if lines else "")


class NullTracer:
    """Disabled tracer: every recording call is a cheap no-op.

    Hot sites should guard with ``if tracer.enabled:`` so argument
    construction is skipped entirely; the methods exist so unguarded
    cold sites stay correct either way.
    """

    enabled = False
    events: List[TraceEvent] = []
    dropped = 0

    def __len__(self) -> int:
        return 0

    def instant(self, name: str, cat: str, ts: float, tid: Optional[int] = None, **args: Any) -> None:
        return None

    def span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        return None


#: Shared disabled tracer — the obs-off default everywhere.
NULL_TRACER = NullTracer()
