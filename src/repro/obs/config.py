"""Observability wiring: one config object, one per-run bundle.

:class:`ObsConfig` is the single switchboard the ISSUE asks for:
tracing, metrics export and the dispatch profiler are all enabled
from here, and every instrumented component reaches its instruments
through the :class:`Observability` bundle hanging off the simulation
(``sim.obs``).

The bundle is deliberately asymmetric:

* ``tracer`` is :data:`~repro.obs.trace.NULL_TRACER` unless tracing is
  on — hot sites guard on ``tracer.enabled`` so obs-off adds one
  attribute load;
* ``metrics`` is always a live :class:`~repro.obs.metrics.MetricsRegistry`
  (integer adds cannot perturb event order, and components like the
  NameNode keep their counters here unconditionally);
* ``profiler`` is ``None`` unless profiling is on — the engine selects
  a timed dispatch path only when it exists.

:func:`default_observability` is a context manager that installs a
process-wide default picked up by every :class:`Simulation` created
without an explicit ``obs=``; it exists so the perf harness and
``repro profile`` can arm instrumentation inside scenario factories
they do not control.
"""

from __future__ import annotations

import contextlib
import logging
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .metrics import MetricsRegistry
from .profile import DispatchProfiler
from .trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ObsConfig:
    """Switchboard for the observability layer (all off by default)."""

    #: Record span/instant trace events.
    trace: bool = False
    #: Time every dispatched callback (wall-clock; see ``profile.py``).
    profile: bool = False
    #: Where :meth:`Observability.export` writes Chrome-trace JSON.
    trace_out: Optional[str] = None
    #: Where :meth:`Observability.export` writes the metrics snapshot.
    metrics_out: Optional[str] = None
    #: Tracer memory cap (events beyond this are counted, not stored).
    max_trace_events: int = 1_000_000


class Observability:
    """Per-run bundle of tracer + metrics registry + profiler."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        cfg = self.config
        self.metrics = MetricsRegistry()
        if cfg.trace or cfg.trace_out is not None:
            # Lazy counter hookup: ``obs/dropped_events`` appears in
            # the registry only once something is actually dropped, so
            # uncapped runs export an unchanged metric set.
            self.tracer = Tracer(
                max_events=cfg.max_trace_events,
                on_drop=self._note_dropped_event,
            )
        else:
            self.tracer = NULL_TRACER
        self.profiler: Optional[DispatchProfiler] = (
            DispatchProfiler() if cfg.profile else None
        )

    def _note_dropped_event(self) -> None:
        self.metrics.counter("obs/dropped_events").inc()

    def export(self) -> List[str]:
        """Write any configured output files; return the paths written.

        A capped trace is reported loudly: the cap is a memory bound,
        not a license to silently truncate evidence."""
        if self.tracer.dropped:
            logging.getLogger("repro").warning(
                "trace capped: %d event(s) dropped beyond "
                "--max-trace-events=%d (obs/dropped_events counts them)",
                self.tracer.dropped,
                self.config.max_trace_events,
            )
        written: List[str] = []
        if self.config.trace_out is not None:
            self.tracer.write_chrome(self.config.trace_out)
            written.append(self.config.trace_out)
        if self.config.metrics_out is not None:
            self.metrics.write_json(self.config.metrics_out)
            written.append(self.config.metrics_out)
        return written


#: Process-wide default installed by :func:`default_observability`.
_DEFAULT: Optional[Observability] = None


def current_default() -> Optional[Observability]:
    """The ambient :class:`Observability`, or ``None`` when unset."""
    return _DEFAULT


@contextlib.contextmanager
def default_observability(obs: Observability) -> Iterator[Observability]:
    """Install ``obs`` as the default for simulations built inside.

    Used by the perf harness and ``repro profile`` to instrument
    scenario factories without changing their signatures.  Restores
    the previous default on exit; not thread-safe (the simulator is
    single-threaded by design).
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = obs
    try:
        yield obs
    finally:
        _DEFAULT = previous
