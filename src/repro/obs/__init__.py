"""Observability layer (S16): tracing, metrics and dispatch profiling.

The flight recorder for the simulator.  Three instruments behind one
:class:`~repro.obs.config.ObsConfig`, reached via ``sim.obs``:

* :class:`~repro.obs.trace.Tracer` — structured, sim-clock-stamped
  span/instant events (job lifecycle, attempt execution, scheduler
  decisions, preempt/autoscale actions, DFS replication, queue
  admission/eviction), exported as Perfetto-loadable Chrome-trace JSON
  or a deterministic text timeline;
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and histograms with deterministic serialization, replacing the
  ad-hoc per-component counters;
* :class:`~repro.obs.profile.DispatchProfiler` — wall-clock,
  per-event-type dispatch cost, explicitly *outside* the determinism
  boundary, surfaced as ``repro profile``.

Invariant: with observability off the simulation is byte-identical to
an uninstrumented build (same event checksums, same goldens); with it
on, the sim clock and RNG streams are never perturbed — only recorded.
"""

from .config import ObsConfig, Observability, current_default, default_observability
from .explain import (
    BLAME_CATEGORIES,
    Divergence,
    RunExplanation,
    diff_files,
    explain_events,
    explain_trace_file,
    explain_tracer,
)
from .metrics import (
    DEFAULT_BOUNDS,
    METRIC_FAMILIES,
    Counter,
    CounterBag,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import PROFILE_SCHEMA_VERSION, DispatchProfiler
from .trace import (
    ATTEMPT_LANE_BASE,
    CATEGORY_LANES,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "ObsConfig",
    "Observability",
    "current_default",
    "default_observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "CounterBag",
    "DEFAULT_BOUNDS",
    "METRIC_FAMILIES",
    "DispatchProfiler",
    "PROFILE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "CATEGORY_LANES",
    "ATTEMPT_LANE_BASE",
    "BLAME_CATEGORIES",
    "Divergence",
    "RunExplanation",
    "diff_files",
    "explain_events",
    "explain_trace_file",
    "explain_tracer",
]
