"""Exception hierarchy for the MOON reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch
library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class TraceError(ReproError):
    """An availability trace is malformed (overlaps, bad bounds)."""


class NetworkError(ReproError):
    """A transfer could not be carried out."""


class TransferFailed(NetworkError):
    """An in-flight transfer was aborted because an endpoint became
    unavailable.  Carries the transfer for inspection."""

    def __init__(self, message: str, transfer: object = None) -> None:
        super().__init__(message)
        self.transfer = transfer


class DfsError(ReproError):
    """Distributed file system failure."""


class BlockUnavailable(DfsError):
    """No live replica of a block can currently serve a read."""


class WriteDeclined(DfsError):
    """A write was declined (e.g. opportunistic write to saturated
    dedicated DataNodes, per paper Fig. 3)."""


class FileNotFound(DfsError):
    """Unknown DFS path."""


class FileAlreadyExists(DfsError):
    """A DFS path was created twice."""


class SchedulingError(ReproError):
    """Task scheduler invariant violation."""


class JobFailed(ReproError):
    """A MapReduce job exhausted its retry budget and was terminated
    (paper footnote 1: a map rescheduled 4 times fails the job)."""


class LocalRuntimeError(ReproError):
    """Functional (in-process) MapReduce engine failure."""


class SnapshotError(ReproError):
    """A snapshot file is malformed, from an incompatible version, or
    could not be captured (unpicklable state in the object graph)."""
