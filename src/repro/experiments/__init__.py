"""Experiment drivers (S13): one module per paper table/figure.

Owns the reproduction grids: fig1 (availability profile), fig4/fig5
(scheduling policies and duplicated work), fig6 (intermediate-data
replication), fig7 (overall MOON vs augmented Hadoop), the tables and
ablations, plus :mod:`~repro.experiments.validate` (simulator vs
analytical models) — all on a shared memoised harness with a bounded
LRU so benchmark modules can share expensive grids, and
:mod:`~repro.experiments.scale` to switch between CI scale and the
paper's full Table I sizes (``REPRO_FULL_SCALE=1``).

See docs/ARCHITECTURE.md#experiments for the layer map.
"""

from . import ablations, fig1, fig4, fig6, fig7, validate
from .harness import (
    RATES,
    SCHED_POLICIES,
    clear_cache,
    hadoop_policy,
    late_policy,
    mean_counter,
    mean_elapsed,
    moon_policy,
    run_cell,
)
from .scale import Scale, current_scale, full_scale

__all__ = [
    "fig1",
    "validate",
    "fig4",
    "fig6",
    "fig7",
    "ablations",
    "run_cell",
    "clear_cache",
    "mean_elapsed",
    "mean_counter",
    "moon_policy",
    "hadoop_policy",
    "late_policy",
    "SCHED_POLICIES",
    "RATES",
    "Scale",
    "current_scale",
    "full_scale",
]
