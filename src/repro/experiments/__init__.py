"""Experiment drivers (S13): one module per paper table/figure."""

from . import ablations, fig1, fig4, fig6, fig7, validate
from .harness import (
    RATES,
    SCHED_POLICIES,
    clear_cache,
    hadoop_policy,
    late_policy,
    mean_counter,
    mean_elapsed,
    moon_policy,
    run_cell,
)
from .scale import Scale, current_scale, full_scale

__all__ = [
    "fig1",
    "validate",
    "fig4",
    "fig6",
    "fig7",
    "ablations",
    "run_cell",
    "clear_cache",
    "mean_elapsed",
    "mean_counter",
    "moon_policy",
    "hadoop_policy",
    "late_policy",
    "SCHED_POLICIES",
    "RATES",
    "Scale",
    "current_scale",
    "full_scale",
]
