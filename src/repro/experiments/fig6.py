"""FIG6 + TABLE II — intermediate-data replication study (paper VI-B).

Policies: VO-Vk statically keeps k volatile copies of every map output
(no dedicated copy); HA-Vk keeps one dedicated copy when possible and
at least k volatile copies, adaptively raised when the dedicated copy
is declined.  Input/output fixed at {1,3}; scheduler MOON-Hybrid.
Table II is the execution profile of the rate-0.5 runs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import ExecutionProfile, series_table
from .harness import RATES, mean_elapsed, moon_policy, rf, run_cell
from .scale import Scale, current_scale, sort_at, wordcount_at

PAPER_EXPECTATION = """Paper Fig. 6 / Table II shapes that must hold:
 - (sort) VO improves from V1 to V3; V4/V5 stop helping or degrade;
 - HA-V1 clearly beats every VO at rate 0.5 (paper: 61% over VO-V3);
 - word count gaps are small; HA still wins at 0.5 (paper: ~32.5%);
 - (Table II, sort) VO-V1 shuffle time >> HA-V1 (paper ~5x);
   killed maps: VO-V1 >> VO-V3 > HA-V1; map time grows with VO degree."""

#: Policy name -> intermediate replication factor.
POLICIES = {
    "VO-V1": rf(0, 1),
    "VO-V2": rf(0, 2),
    "VO-V3": rf(0, 3),
    "VO-V4": rf(0, 4),
    "VO-V5": rf(0, 5),
    "HA-V1": rf(1, 1),
    "HA-V2": rf(1, 2),
    "HA-V3": rf(1, 3),
}

TABLE2_POLICIES = ("VO-V1", "VO-V3", "VO-V5", "HA-V1")


def _spec(app: str, scale: Scale, intermediate):
    base = sort_at(scale) if app == "sort" else wordcount_at(scale)
    return base.with_(
        intermediate_rf=intermediate,
        input_rf=rf(1, 3),
        output_rf=rf(1, 3),
    )


def run(app: str, scale: Optional[Scale] = None) -> Dict[str, list]:
    """Job times for every intermediate-replication policy and rate."""
    scale = scale or current_scale()
    out: Dict[str, list] = {}
    for name, inter in POLICIES.items():
        times = []
        for rate in RATES:
            results = run_cell(scale, _spec(app, scale, inter), rate,
                               moon_policy(True))
            times.append(mean_elapsed(results))
        out[name] = times
    return out


def table2(app: str, scale: Optional[Scale] = None) -> Dict[str, ExecutionProfile]:
    """Execution profiles at rate 0.5 (reuses the Fig. 6 runs)."""
    scale = scale or current_scale()
    out: Dict[str, ExecutionProfile] = {}
    for name in TABLE2_POLICIES:
        results = run_cell(
            scale, _spec(app, scale, POLICIES[name]), 0.5, moon_policy(True)
        )
        # Profile of the first seed's run (paper reports one test env).
        out[name] = results[0].profile
    return out


def report(app: str, data: Dict[str, list]) -> str:
    """Render the Fig.-6 table for one application."""
    t = series_table(
        f"FIG6({'a' if app == 'sort' else 'b'}) - execution time vs "
        f"intermediate replication, {app}",
        "unavail rate",
        RATES,
        data,
    )
    return "\n\n".join([t, PAPER_EXPECTATION])


def report_table2(app: str, profiles: Dict[str, ExecutionProfile]) -> str:
    """Render Table II (execution profiles at rate 0.5)."""
    from dataclasses import replace

    lines = [f"TABLE II ({app}, unavailability 0.5)"]
    lines += [
        replace(profiles[name], policy=name).row()
        for name in TABLE2_POLICIES
    ]
    return "\n".join(lines)


def shapes(app: str, data: Dict[str, list]) -> Dict[str, bool]:
    """Qualitative checks of the paper's Fig.-6 claims."""
    hi = len(RATES) - 1

    def val(name):
        return data[name][hi]

    def ok(x):
        return x is not None

    # Word count is the paper's own "the gap ... is small" panel
    # (VI-B); at reduced scale single-seed noise between the top
    # configurations exceeds 5%, so it gets a 10% band.  Sort — where
    # the paper claims a 61% margin — stays strict.  Either way HA-V1
    # reaches the top tier with 2 replicas against VO-V5's 5 (the
    # cost-effectiveness half of the claim).
    band = 1.05 if app == "sort" else 1.10
    checks = {
        "vo_v3_no_worse_than_vo_v1_at_high_rate": (
            not ok(val("VO-V1")) or (ok(val("VO-V3")) and
                                     val("VO-V3") <= val("VO-V1") * 1.05)
        ),
        "ha_v1_beats_best_vo_at_high_rate": (
            ok(val("HA-V1"))
            and val("HA-V1")
            <= min(
                v
                for k, v in ((p, val(p)) for p in POLICIES if p.startswith("VO"))
                if v is not None
            )
            * band
        ),
    }
    if app == "sort":
        checks["vo_v5_not_better_than_vo_v3"] = (
            not ok(val("VO-V5"))
            or (ok(val("VO-V3")) and val("VO-V5") >= val("VO-V3") * 0.9)
        )
    return checks
