"""Cross-validation: simulator vs first-principles models.

A reproduction whose only reference is itself is hard to trust.  This
driver runs the same configurations through two independent paths —

* the full discrete-event simulator (`repro.core`), and
* the closed-form makespan/availability models (`repro.analysis`) —

and reports the ratio.  The models ignore replication traffic,
stragglers and heartbeat latency, so agreement is expected within a
small factor, not to the percent; a blow-up flags a modelling bug on
one side.  `tests/test_experiments_validate.py` asserts the band, and
``python -m repro validate`` prints the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis import estimate_makespan
from ..config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from ..core import moon_system
from ..plotting import table
from ..workloads import JobSpec, sleep_like_sort, sort_spec


@dataclass(frozen=True)
class ValidationPoint:
    """One (workload, rate) comparison."""

    workload: str
    rate: float
    simulated: Optional[float]
    estimated: float

    @property
    def ratio(self) -> Optional[float]:
        """simulated / estimated; None for a DNF."""
        if self.simulated is None or self.estimated <= 0:
            return None
        return self.simulated / self.estimated


def _simulate(
    spec: JobSpec, rate: float, n_volatile: int, n_dedicated: int, seed: int
) -> Optional[float]:
    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=n_volatile, n_dedicated=n_dedicated),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=seed,
    )
    result = moon_system(cfg).run_job(spec)
    return result.elapsed if result.succeeded else None


def run_validation(
    rates: Sequence[float] = (0.0, 0.1, 0.3),
    n_volatile: int = 20,
    n_dedicated: int = 2,
    seed: int = 5,
) -> List[ValidationPoint]:
    """Compare simulation and analytical estimates across a small grid.

    Uses a compute-dominated sleep workload (where the analytical model
    is meaningful) and a reduced sort (I/O included, looser agreement).
    """
    points: List[ValidationPoint] = []
    workloads = {
        "sleep[sort]": sleep_like_sort(n_maps=96),
        "sort(small)": sort_spec(n_maps=64, block_mb=16.0),
    }
    for rate in rates:
        for name, spec in workloads.items():
            sim_t = _simulate(spec, rate, n_volatile, n_dedicated, seed)
            est = estimate_makespan(spec, n_volatile, rate).total
            points.append(ValidationPoint(name, rate, sim_t, est))
    return points


def report(points: Sequence[ValidationPoint]) -> str:
    """Render the sim-vs-analytic comparison table."""
    rows = []
    for p in points:
        rows.append([
            p.workload,
            f"{p.rate:.1f}",
            None if p.simulated is None else f"{p.simulated:.0f}",
            f"{p.estimated:.0f}",
            None if p.ratio is None else f"{p.ratio:.2f}",
        ])
    out = table(
        ["workload", "rate", "simulated s", "analytic s", "sim/est"],
        rows,
        title="simulator vs analytical makespan model",
    )
    return out + (
        "\n\nThe analytic model ignores replication traffic, stragglers"
        "\nand detection latency; ratios within a small constant factor"
        "\n(and growing mildly with the rate) are the expected signature."
    )


def within_band(
    points: Sequence[ValidationPoint], low: float = 1 / 3, high: float = 4.0
) -> bool:
    """True when every finished point's ratio lies in [low, high]."""
    ratios = [p.ratio for p in points if p.ratio is not None]
    return bool(ratios) and all(low <= r <= high for r in ratios)
