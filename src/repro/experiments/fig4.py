"""FIG4 + FIG5 — speculative task scheduling evaluation (paper VI-A).

Sleep jobs with faithful sort / word-count task times run under five
policies (Hadoop expiry 10/5/1 min, MOON, MOON-Hybrid) at
unavailability 0.1/0.3/0.5.  Intermediate data is stored as reliable
{1,1} files so data management never interferes.  Fig. 4 reports job
time, Fig. 5 the number of duplicated tasks — both come from the same
runs (shared via the harness cache).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..metrics import series_table
from .harness import RATES, SCHED_POLICIES, mean_counter, mean_elapsed, run_cell
from .scale import Scale, current_scale, sleep_sort_at, sleep_wordcount_at

PAPER_EXPECTATION = """Paper Fig. 4/5 shapes that must hold:
 - Hadoop job time improves as TrackerExpiryInterval shrinks (10 > 5 > 1 min);
 - MOON ~ Hadoop1Min at rate 0.1; clearly faster at 0.5 (paper: 45% on sort);
 - MOON-Hybrid is the best policy, especially at high rates;
 - word count improvements are smaller than sort's (fewer reduces);
 - (Fig. 5) Hadoop duplicates grow as the expiry interval shrinks;
   MOON issues fewer duplicated tasks than Hadoop1Min, hybrid fewer still."""


def run(app: str, scale: Optional[Scale] = None) -> Dict[str, dict]:
    """``app`` is "sort" or "word count" (the sleep proxy thereof)."""
    scale = scale or current_scale()
    if len(scale.seeds) < 3:
        # Sleep moves no data, so its cells are cheap — and short
        # sleep jobs are noisy at high rates: always average 3 seeds.
        scale = replace(scale, seeds=(42, 43, 44))
    spec = sleep_sort_at(scale) if app == "sort" else sleep_wordcount_at(scale)
    out: Dict[str, dict] = {}
    for name, sched in SCHED_POLICIES.items():
        times, dups = [], []
        for rate in RATES:
            results = run_cell(scale, spec, rate, sched)
            times.append(mean_elapsed(results))
            dups.append(mean_counter(results, "duplicated_tasks"))
        out[name] = {"time": times, "duplicates": dups}
    return out


def report(app: str, data: Dict[str, dict]) -> str:
    """Render the Fig.-4 and Fig.-5 tables for one application."""
    t = series_table(
        f"FIG4({'a' if app == 'sort' else 'b'}) - execution time, "
        f"sleep[{app}]",
        "unavail rate",
        RATES,
        {k: v["time"] for k, v in data.items()},
    )
    d = series_table(
        f"FIG5({'a' if app == 'sort' else 'b'}) - duplicated tasks, "
        f"sleep[{app}]",
        "unavail rate",
        RATES,
        {k: v["duplicates"] for k, v in data.items()},
        unit="tasks",
        fmt="{:10.0f}",
    )
    return "\n\n".join([t, d, PAPER_EXPECTATION])


def shapes(data: Dict[str, dict]) -> Dict[str, bool]:
    """Qualitative checks (at the highest rate, where the paper's
    claims are strongest)."""
    t = {k: v["time"] for k, v in data.items()}
    d = {k: v["duplicates"] for k, v in data.items()}
    hi = len(RATES) - 1

    def ok(x):
        return x is not None

    checks = {
        # The paper reports strictly better times for shorter expiry;
        # at reduced scale our 10-minute baseline rides out most
        # 409-second outages without killing, compressing the gap, so
        # the check allows a 10% band (see EXPERIMENTS.md discussion).
        "hadoop_1min_beats_10min_at_high_rate": (
            ok(t["Hadoop1Min"][hi]) and (
                not ok(t["Hadoop10Min"][hi])
                or t["Hadoop1Min"][hi] <= t["Hadoop10Min"][hi] * 1.10
            )
        ),
        "moon_hybrid_beats_hadoop1min_at_high_rate": (
            ok(t["MOON-Hybrid"][hi]) and (
                not ok(t["Hadoop1Min"][hi])
                or t["MOON-Hybrid"][hi] <= t["Hadoop1Min"][hi]
            )
        ),
        "moon_fewer_duplicates_than_hadoop1min": (
            d["MOON"][hi] <= d["Hadoop1Min"][hi]
        ),
        "hybrid_no_more_duplicates_than_moon": (
            d["MOON-Hybrid"][hi] <= d["MOON"][hi] * 1.25
        ),
    }
    return checks
