"""Shared experiment runner with per-process result caching.

Figures share runs (Fig. 5 reuses Fig. 4's, Table II reuses Fig. 6's),
so results are memoised on a structural key (a bounded LRU —
:data:`CACHE_MAX_ENTRIES` — with :func:`clear_cache` for explicit
release between benchmark modules).  Every cell is averaged
over the scale's seeds; a job that does not finish within the 8-hour
trace window is recorded as ``None`` (the paper reports exactly this
for plain Hadoop without intermediate replication).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SchedulerConfig
from ..core import JobResult, MoonSystem, hadoop_system, moon_system
from ..dfs import ReplicationFactor
from ..workloads import JobSpec
from .scale import Scale, system_config

#: LRU bound on memoised cells: full-scale runs hold hundreds of
#: JobResults (each with task-level profiles), so an unbounded memo
#: grows without limit across a long pytest session.
CACHE_MAX_ENTRIES = 128

_cache: "OrderedDict[tuple, List[JobResult]]" = OrderedDict()


def clear_cache() -> None:
    """Drop every memoised cell (called between benchmark modules)."""
    _cache.clear()


def cache_size() -> int:
    return len(_cache)


def _key(spec: JobSpec, rate, sched: SchedulerConfig, seed, hadoop_mode,
         n_dedicated, network_model) -> tuple:
    return (
        spec.name, spec.n_maps, spec.n_reduces, spec.reduces_per_slot,
        round(spec.map_input_mb, 4), round(spec.map_output_mb, 4),
        spec.map_cpu_seconds, spec.intermediate_rf, spec.input_rf,
        spec.output_rf, spec.intermediate_reliable,
        rate, sched.kind, sched.tracker_expiry_interval,
        sched.suspension_interval, sched.hybrid_aware,
        sched.homestretch_threshold_pct, sched.homestretch_replicas,
        sched.speculative_cap_fraction,
        seed, hadoop_mode, n_dedicated, network_model,
    )


def run_cell(
    scale: Scale,
    spec: JobSpec,
    rate: float,
    scheduler: SchedulerConfig,
    hadoop_mode: bool = False,
    n_dedicated: Optional[int] = None,
    network_model: str = "fifo",
) -> List[JobResult]:
    """All-seeds results for one experiment cell (memoised)."""
    key = _key(spec, rate, scheduler, scale.seeds, hadoop_mode,
               n_dedicated, network_model)
    if key in _cache:
        _cache.move_to_end(key)
        return _cache[key]
    results: List[JobResult] = []
    for seed in scale.seeds:
        cfg = system_config(
            scale, rate, scheduler, seed,
            n_dedicated=n_dedicated, network_model=network_model,
        )
        system = hadoop_system(cfg) if hadoop_mode else moon_system(cfg)
        results.append(system.run_job(spec, time_limit=scale.time_limit))
        system.jobtracker.stop()
        system.namenode.stop()
    _cache[key] = results
    while len(_cache) > CACHE_MAX_ENTRIES:
        _cache.popitem(last=False)
    return results


def mean_elapsed(results: List[JobResult]) -> Optional[float]:
    """Mean time of finished runs; None if nothing finished (DNF)."""
    done = [r.elapsed for r in results if r.succeeded]
    return float(np.mean(done)) if done else None


def mean_counter(results: List[JobResult], what: str) -> float:
    """Mean of one RunMetrics counter across a cell's seeds."""
    vals = [getattr(r.metrics, what) for r in results]
    return float(np.mean(vals)) if vals else 0.0


def rf(d: int, v: int) -> ReplicationFactor:
    """Shorthand for a {d, v} replication factor."""
    return ReplicationFactor(d, v)


# Paper policy constructors (Fig. 4/5 legend).
def hadoop_policy(minutes: float) -> SchedulerConfig:
    """HadoopXMin legend entry: stock policy, X-minute expiry."""
    return SchedulerConfig(
        kind="hadoop",
        tracker_expiry_interval=minutes * 60.0,
        hybrid_aware=False,
    )


def moon_policy(hybrid: bool) -> SchedulerConfig:
    """MOON / MOON-Hybrid legend entry (paper intervals)."""
    return SchedulerConfig(
        kind="moon",
        tracker_expiry_interval=1800.0,
        suspension_interval=60.0,
        hybrid_aware=hybrid,
    )


def late_policy() -> SchedulerConfig:
    """LATE baseline legend entry (XTRA-C)."""
    return SchedulerConfig(
        kind="late", tracker_expiry_interval=600.0, hybrid_aware=False
    )


SCHED_POLICIES: Dict[str, SchedulerConfig] = {
    "Hadoop10Min": hadoop_policy(10),
    "Hadoop5Min": hadoop_policy(5),
    "Hadoop1Min": hadoop_policy(1),
    "MOON": moon_policy(False),
    "MOON-Hybrid": moon_policy(True),
}

RATES: Tuple[float, ...] = (0.1, 0.3, 0.5)
