"""FIG1 — percentage of unavailable resources in a 7-day volunteer
trace, sampled at 10-minute intervals, 9AM-5PM (paper Figure 1)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..metrics import series_table
from ..traces import DayProfile, EntropiaConfig, generate_week

PAPER_EXPECTATION = (
    "Paper Fig. 1: unavailability fluctuates roughly between 25% and "
    "95% across working hours, averaging ~0.4 per node, with diurnal "
    "structure and correlated bursts."
)


def run(seed: int = 42, n_nodes: int = 40, n_days: int = 7) -> List[DayProfile]:
    """Synthesise the 7-day volunteer-grid availability profiles."""
    cfg = EntropiaConfig(n_nodes=n_nodes, n_days=n_days)
    return generate_week(cfg, np.random.default_rng(seed))


def report(profiles: List[DayProfile]) -> str:
    """Render the Fig.-1 table (hourly % of nodes unavailable)."""
    hours = [f"{9 + int(t // 3600)}:00" for t in profiles[0].times[::6]]
    series: Dict[str, list] = {}
    for p in profiles:
        series[f"DAY{p.day + 1}"] = [
            float(v) for v in p.pct_unavailable[::6]
        ]
    table = series_table(
        "FIG1 - % resources unavailable (hourly samples of 10-min grid)",
        "hour",
        hours,
        series,
        unit="% of nodes",
    )
    lines = [table, "", PAPER_EXPECTATION]
    all_vals = np.concatenate([p.pct_unavailable for p in profiles])
    lines.append(
        f"Measured: min {all_vals.min():.0f}%  max {all_vals.max():.0f}%  "
        f"mean {all_vals.mean():.0f}%"
    )
    return "\n".join(lines)


def shape_holds(profiles: List[DayProfile]) -> bool:
    """The qualitative claim we must reproduce."""
    all_vals = np.concatenate([p.pct_unavailable for p in profiles])
    return (
        20.0 <= all_vals.mean() <= 75.0
        and all_vals.max() >= 60.0
        and all_vals.min() >= 3.0
    )
