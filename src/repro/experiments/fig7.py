"""FIG7 — overall MOON vs augmented Hadoop (paper VI-C).

Hadoop-VO: all 66 machines presented as volatile, input/output at six
uniform replicas (99.5% availability at p=0.4), intermediate data
replicated with the best volatile-only configuration.  MOON: {1,3}
input/output, HA {1,1} intermediate, MOON-Hybrid scheduling, with 3, 4
or 6 dedicated nodes (V-to-D 20:1, 15:1, 10:1).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import series_table
from .harness import (
    RATES,
    hadoop_policy,
    mean_elapsed,
    moon_policy,
    rf,
    run_cell,
)
from .scale import Scale, current_scale, full_scale, sort_at, wordcount_at

PAPER_EXPECTATION = """Paper Fig. 7 shapes that must hold:
 - MOON beats Hadoop-VO at rates 0.3 and 0.5 for every D;
 - the speedup grows with dedicated nodes (paper sort at 0.5:
   1.8x / 2.2x / 3x for D=3/4/6);
 - word count speedup is smaller (paper: ~1.5x);
 - the one regime where MOON may lose: sort at rate 0.1 with 20:1
   V-to-D (dedicated I/O bandwidth cannot absorb the data)."""

DEDICATED_COUNTS = (3, 4, 6)
#: Best-performing VO intermediate configs the baseline may use.
HADOOP_VO_CANDIDATES = (rf(0, 3),) if not full_scale() else (
    rf(0, 2), rf(0, 3), rf(0, 4),
)


def _moon_spec(app: str, scale: Scale):
    base = sort_at(scale) if app == "sort" else wordcount_at(scale)
    return base.with_(
        input_rf=rf(1, 3), output_rf=rf(1, 3), intermediate_rf=rf(1, 1)
    )


def _hadoop_spec(app: str, scale: Scale, inter):
    base = sort_at(scale) if app == "sort" else wordcount_at(scale)
    return base.with_(
        input_rf=rf(0, 6), output_rf=rf(0, 6), intermediate_rf=inter
    )


def run(app: str, scale: Optional[Scale] = None) -> Dict[str, list]:
    """Job times: Hadoop-VO vs MOON-Hybrid at D3/D4/D6."""
    scale = scale or current_scale()
    out: Dict[str, list] = {}

    hadoop_times = []
    for rate in RATES:
        best = None
        for inter in HADOOP_VO_CANDIDATES:
            results = run_cell(
                scale,
                _hadoop_spec(app, scale, inter),
                rate,
                hadoop_policy(1),  # the strongest Hadoop baseline
                hadoop_mode=True,
            )
            t = mean_elapsed(results)
            if t is not None and (best is None or t < best):
                best = t
        hadoop_times.append(best)
    out["Hadoop-VO"] = hadoop_times

    for d in DEDICATED_COUNTS:
        times = []
        for rate in RATES:
            results = run_cell(
                scale,
                _moon_spec(app, scale),
                rate,
                moon_policy(True),
                n_dedicated=d,
            )
            times.append(mean_elapsed(results))
        out[f"MOON-HybridD{d}"] = times
    return out


def report(app: str, data: Dict[str, list]) -> str:
    """Render the Fig.-7 table (plus the speedup line)."""
    t = series_table(
        f"FIG7({'a' if app == 'sort' else 'b'}) - MOON vs Hadoop-VO, {app}",
        "unavail rate",
        RATES,
        data,
    )
    lines = [t]
    hi = len(RATES) - 1
    base = data["Hadoop-VO"][hi]
    if base is not None:
        speedups = []
        for d in DEDICATED_COUNTS:
            v = data[f"MOON-HybridD{d}"][hi]
            if v:
                speedups.append(f"D{d}: {base / v:.2f}x")
        lines.append(
            f"Speedup over Hadoop-VO at rate {RATES[hi]}: "
            + ", ".join(speedups)
        )
    lines.append(PAPER_EXPECTATION)
    return "\n\n".join(lines)


def shapes(app: str, data: Dict[str, list]) -> Dict[str, bool]:
    """Qualitative checks of the paper's Fig.-7 claims."""
    hi = len(RATES) - 1
    base = data["Hadoop-VO"][hi]

    def moon(d):
        return data[f"MOON-HybridD{d}"][hi]

    checks = {}
    checks["moon_d6_beats_hadoop_at_high_rate"] = (
        moon(6) is not None and (base is None or moon(6) < base)
    )
    if all(moon(d) is not None for d in (3, 6)):
        checks["more_dedicated_no_slower"] = moon(6) <= moon(3) * 1.10
    if base is not None and moon(6) is not None and app == "sort":
        checks["sort_speedup_at_least_1_5x"] = base / moon(6) >= 1.5
    return checks
