"""Ablations beyond the paper's figures (DESIGN.md XTRA-A/B/C).

XTRA-A: FIFO-queue vs max-min fair-share network model.
XTRA-B: two-phase scheduling H/R sweep + speculative-cap sweep
        (the paper reports H=20, R=2, cap 20% "worked well").
XTRA-C: LATE vs MOON vs Hadoop on opportunistic nodes (paper VII
        argues LATE's constant-rate assumption breaks there).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SchedulerConfig
from ..metrics import series_table
from .harness import (
    RATES,
    late_policy,
    mean_counter,
    mean_elapsed,
    moon_policy,
    rf,
    run_cell,
)
from .scale import Scale, current_scale, sleep_sort_at, sort_at


# ----------------------------------------------------------------------
# XTRA-A: network-model ablation
# ----------------------------------------------------------------------
def run_network_ablation(scale: Optional[Scale] = None) -> Dict[str, list]:
    """XTRA-A: sort under the FIFO vs fair-share transfer models."""
    scale = scale or current_scale()
    spec = sort_at(scale).with_(
        input_rf=rf(1, 3), output_rf=rf(1, 3), intermediate_rf=rf(1, 1)
    )
    out: Dict[str, list] = {}
    for model in ("fifo", "fairshare"):
        times = []
        for rate in (0.1, 0.3):
            results = run_cell(
                scale, spec, rate, moon_policy(True), network_model=model
            )
            times.append(mean_elapsed(results))
        out[model] = times
    return out


def report_network(data: Dict[str, list]) -> str:
    """Render the network-model ablation table."""
    t = series_table(
        "XTRA-A - transfer model ablation (sort, MOON-Hybrid)",
        "unavail rate",
        (0.1, 0.3),
        data,
    )
    note = (
        "Expectation: both models agree on ordering; fair-share is the "
        "higher-fidelity (and slower) reference for the FIFO default."
    )
    return "\n\n".join([t, note])


# ----------------------------------------------------------------------
# XTRA-B: two-phase parameter sweep
# ----------------------------------------------------------------------
def run_twophase_sweep(scale: Optional[Scale] = None) -> Dict[str, dict]:
    """XTRA-B: sweep the two-phase H/R parameters around the paper's choice."""
    scale = scale or current_scale()
    spec = sleep_sort_at(scale)
    out: Dict[str, dict] = {}
    for h, r in ((0.0, 1), (10.0, 2), (20.0, 2), (40.0, 2), (20.0, 3)):
        sched = SchedulerConfig(
            kind="moon",
            tracker_expiry_interval=1800.0,
            suspension_interval=60.0,
            hybrid_aware=True,
            homestretch_threshold_pct=h,
            homestretch_replicas=r,
        )
        results = run_cell(scale, spec, 0.5, sched)
        out[f"H={h:g},R={r}"] = {
            "time": mean_elapsed(results),
            "duplicates": mean_counter(results, "duplicated_tasks"),
        }
    return out


def report_twophase(data: Dict[str, dict]) -> str:
    """Render the two-phase sweep table."""
    t = series_table(
        "XTRA-B - two-phase sweep (sleep[sort], rate 0.5)",
        "metric",
        ("time", "duplicates"),
        {k: [v["time"], v["duplicates"]] for k, v in data.items()},
    )
    note = (
        "Paper V-B: H=20, R=2 'can yield generally good results' - the "
        "sweep shows the cost/benefit trade-off around that point "
        "(H=0 disables the homestretch; large H duplicates more)."
    )
    return "\n\n".join([t, note])


# ----------------------------------------------------------------------
# XTRA-C: LATE baseline
# ----------------------------------------------------------------------
def run_late_ablation(scale: Optional[Scale] = None) -> Dict[str, list]:
    """XTRA-C: LATE vs MOON on opportunistic nodes."""
    scale = scale or current_scale()
    spec = sleep_sort_at(scale)
    out: Dict[str, list] = {}
    for name, sched in (
        ("LATE", late_policy()),
        ("MOON-Hybrid", moon_policy(True)),
    ):
        times = []
        for rate in RATES:
            results = run_cell(scale, spec, rate, sched)
            times.append(mean_elapsed(results))
        out[name] = times
    return out


def report_late(data: Dict[str, list]) -> str:
    """Render the LATE ablation table."""
    t = series_table(
        "XTRA-C - LATE vs MOON on opportunistic nodes (sleep[sort])",
        "unavail rate",
        RATES,
        data,
    )
    note = (
        "Paper VII: LATE assumes constant per-node progress rates, "
        "which node suspension violates; MOON should win at high rates."
    )
    return "\n\n".join([t, note])
