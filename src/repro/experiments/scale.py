"""Experiment scaling (DESIGN.md Section 5).

Benchmarks default to the paper's full 66-node cluster but reduced data
volume (fewer, smaller blocks) so each simulated run takes seconds.
``REPRO_FULL_SCALE=1`` switches to the exact Table-I sizes.  All
reported comparisons in EXPERIMENTS.md state which scale produced them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import ClusterConfig, SystemConfig, TraceConfig
from ..workloads import (
    JobSpec,
    scaled,
    sleep_like_sort,
    sleep_like_wordcount,
    sort_spec,
    wordcount_spec,
)

FULL_ENV = "REPRO_FULL_SCALE"


def full_scale() -> bool:
    """True when REPRO_FULL_SCALE requests the paper's exact sizes."""
    return os.environ.get(FULL_ENV, "0") not in ("0", "", "false")


@dataclass(frozen=True)
class Scale:
    """One knob bundle for every experiment."""

    n_volatile: int
    n_dedicated: int
    sort_maps: int
    wc_maps: int
    data_factor: float  # block-size multiplier vs the paper's 64 MB
    seeds: tuple
    time_limit: float = 8 * 3600.0

    @property
    def label(self) -> str:
        return "paper-full" if full_scale() else "reduced"


def current_scale() -> Scale:
    """The active Scale: paper-full under REPRO_FULL_SCALE, else reduced."""
    if full_scale():
        return Scale(
            n_volatile=60,
            n_dedicated=6,
            sort_maps=384,
            wc_maps=320,
            data_factor=1.0,
            seeds=(42, 43, 44),
            time_limit=8 * 3600.0,
        )
    # Reduced scale keeps the paper's cluster and *task counts* (job
    # duration must span several 409-second outage cycles for the
    # volatility dynamics to appear) and halves only the block size.
    return Scale(
        n_volatile=60,
        n_dedicated=6,
        sort_maps=384,
        wc_maps=320,
        data_factor=0.5,  # 32 MB blocks
        seeds=(42,),
        time_limit=4 * 3600.0,
    )


# ----------------------------------------------------------------------
# Workloads at the current scale.  Only the data volume scales; task
# compute times stay faithful so job durations stay in the paper's
# regime relative to the outage process.
# ----------------------------------------------------------------------
def sort_at(scale: Scale, **overrides) -> JobSpec:
    """Table-I sort at the given scale's block size."""
    return sort_spec(
        n_maps=scale.sort_maps, block_mb=64.0 * scale.data_factor, **overrides
    )


def wordcount_at(scale: Scale, **overrides) -> JobSpec:
    """Table-I word count at the given scale's block size."""
    return wordcount_spec(
        n_maps=scale.wc_maps, block_mb=64.0 * scale.data_factor, **overrides
    )


def sleep_sort_at(scale: Scale) -> JobSpec:
    """Fig.-4 sleep proxy of sort (full task counts at every scale)."""
    # Sleep moves almost no data, so the paper's full task counts are
    # affordable at every scale — and the Fig. 4/5 dynamics (outage
    # exposure over a long job) need them.
    return sleep_like_sort(n_maps=384)


def sleep_wordcount_at(scale: Scale) -> JobSpec:
    """Fig.-4 sleep proxy of word count."""
    return sleep_like_wordcount(n_maps=320, n_reduces=20)


def system_config(
    scale: Scale,
    rate: float,
    scheduler,
    seed: int,
    n_dedicated: int = None,
    network_model: str = "fifo",
) -> SystemConfig:
    """SystemConfig for one experiment cell at the given scale."""
    return SystemConfig(
        cluster=ClusterConfig(
            n_volatile=scale.n_volatile,
            n_dedicated=(
                scale.n_dedicated if n_dedicated is None else n_dedicated
            ),
        ),
        trace=TraceConfig(unavailability_rate=rate),
        scheduler=scheduler,
        seed=seed,
        network_model=network_model,
    )
