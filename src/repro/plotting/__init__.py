"""Terminal plotting for experiment reports.

The benchmark harness regenerates the paper's figures as *data*; this
package renders them as text so reports remain self-contained with no
plotting dependency:

* :func:`bar_chart` — grouped bars (Figs. 4, 5, 6, 7 are all grouped
  bar charts over unavailability rates);
* :func:`line_chart` — time series (Fig. 1's availability trace);
* :func:`table` — aligned text tables (Tables I and II).
"""

from .ascii import bar_chart, histogram, line_chart, sparkline, table

__all__ = ["bar_chart", "line_chart", "table", "sparkline", "histogram"]
