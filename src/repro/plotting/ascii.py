"""ASCII chart rendering primitives.

Pure functions from data to strings; no terminal control codes, so the
output is equally at home in a TTY, a log file or EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ReproError

Number = Union[int, float]
#: Sentinel rendered for missing cells (e.g. a DNF run).
MISSING = "-"

_BLOCKS = " ▁▂▃▄▅▆▇█"


class PlotError(ReproError):
    """Bad input to a chart renderer."""


def _fmt(value: Optional[Number], decimals: int = 0) -> str:
    if value is None:
        return MISSING
    return f"{value:,.{decimals}f}"


def bar_chart(
    groups: Sequence[str],
    series: Dict[str, Sequence[Optional[Number]]],
    width: int = 40,
    title: str = "",
    unit: str = "",
    decimals: int = 0,
) -> str:
    """Grouped horizontal bar chart.

    ``groups`` labels the x-axis clusters (e.g. unavailability rates);
    ``series`` maps a legend name to one value per group (``None`` for
    a DNF).  This is the shape of the paper's Figures 4-7.
    """
    if not groups:
        raise PlotError("no groups")
    for name, values in series.items():
        if len(values) != len(groups):
            raise PlotError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    finite = [
        v for vals in series.values() for v in vals if v is not None
    ]
    top = max(finite) if finite else 1.0
    if top <= 0:
        top = 1.0
    label_w = max((len(n) for n in series), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            v = values[gi]
            if v is None:
                bar, text = "", MISSING
            else:
                n = int(round(width * v / top))
                bar = "#" * max(n, 1 if v > 0 else 0)
                text = _fmt(v, decimals) + (f" {unit}" if unit else "")
            lines.append(f"  {name:<{label_w}} |{bar:<{width}} {text}")
    return "\n".join(lines)


def line_chart(
    xs: Sequence[Number],
    series: Dict[str, Sequence[Number]],
    height: int = 12,
    width: int = 72,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series line chart on a character grid.

    Each series is resampled onto ``width`` columns and drawn with its
    own glyph; the y-axis is annotated with min/max.  Fig. 1's shape —
    several day-series of unavailability over the working day — renders
    legibly at the defaults.
    """
    if height < 2 or width < 8:
        raise PlotError("chart too small")
    if not xs:
        raise PlotError("no x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise PlotError(f"series {name!r} length mismatch")
    glyphs = "*o+x@%&="
    all_y = [y for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0
    for si, (name, ys) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / span * (width - 1))
            row = height - 1 - int((y - lo) / (hi - lo) * (height - 1))
            grid[row][col] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
    for ri, row in enumerate(grid):
        if ri == 0:
            label = f"{hi:8.3g} |"
        elif ri == height - 1:
            label = f"{lo:8.3g} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    if y_label:
        legend = f"[{y_label}]  " + legend
    lines.append("           " + legend)
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Aligned text table; ``None`` cells render as ``-``."""
    if not headers:
        raise PlotError("no headers")
    rendered = [
        [MISSING if c is None else str(c) for c in row] for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise PlotError("row width mismatch")
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[Number]) -> str:
    """One-line block-glyph sketch of a series."""
    if not values:
        raise PlotError("no values")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[4] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def histogram(
    values: Sequence[Number],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Text histogram (used for outage-length distributions)."""
    if not values:
        raise PlotError("no values")
    if bins < 1:
        raise PlotError("bins must be >= 1")
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    top = max(counts)
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, c in enumerate(counts):
        b_lo = lo + (hi - lo) * i / bins
        b_hi = lo + (hi - lo) * (i + 1) / bins
        bar = "#" * (int(round(width * c / top)) if top else 0)
        lines.append(f"[{b_lo:9.1f}, {b_hi:9.1f}) |{bar:<{width}} {c}")
    return "\n".join(lines)
