"""FIG4 bench: execution time under five scheduling policies
(Hadoop 10/5/1-min expiry, MOON, MOON-Hybrid) at rates 0.1/0.3/0.5."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import fig4

from conftest import run_once, save_report


def test_fig4a_sort_sleep(benchmark):
    data = run_once(benchmark, lambda: fig4.run("sort"))
    save_report("fig4a", fig4.report("sort", data))
    checks = fig4.shapes(data)
    assert checks["hadoop_1min_beats_10min_at_high_rate"], checks
    assert checks["moon_hybrid_beats_hadoop1min_at_high_rate"], checks


def test_fig4b_wordcount_sleep(benchmark):
    data = run_once(benchmark, lambda: fig4.run("word count"))
    save_report("fig4b", fig4.report("word count", data))
    checks = fig4.shapes(data)
    assert checks["moon_hybrid_beats_hadoop1min_at_high_rate"], checks
