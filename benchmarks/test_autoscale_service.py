"""XTRA-H: autoscaling the dedicated tier (ROADMAP service follow-on).

The paper's provisioning question — "how many dedicated nodes are
enough?" (Section VII) — made dynamic: the same seeded bursty stream
is served under the static tier and under the reactive and predictive
provisioning controllers, on identical traces and arrivals.  The
claims asserted are (a) both controllers post a *lower* deadline-miss
rate than the static tier, (b) at equal-or-fewer dedicated
node-hours, and (c) an autoscaled seeded run is byte-for-byte
reproducible — decisions, audit log and all.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.service import (
    AUTOSCALE_POLICIES,
    AutoscaleConfig,
    ServiceConfig,
    bursty_arrivals,
    render_decisions,
    sleep_catalog,
)

from conftest import run_once, save_report

HOUR = 3600.0
HORIZON = 2 * HOUR


def _serve(scale_policy, seed=42):
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=12, n_dedicated=3),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=replace(
                moon_scheduler_config(), dedicated_primary=True
            ),
            seed=seed,
        )
    )
    arrivals = bursty_arrivals(
        system.sim.rng("service/arrivals"),
        bursts_per_hour=2.0,
        burst_size_mean=12.0,
        horizon=HORIZON,
        catalog=sleep_catalog(),
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(
            policy="edf",
            max_in_flight=8,
            max_queue_depth=128,
            horizon=HORIZON,
            autoscale=AutoscaleConfig(
                policy=scale_policy, min_dedicated=1, max_dedicated=6
            ),
        ),
        pattern="bursty",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


def test_autoscale_service(benchmark, scale):
    def experiment():
        reports = {p: _serve(p) for p in AUTOSCALE_POLICIES}
        repeat = _serve("reactive")
        return reports, repeat

    reports, repeat = run_once(benchmark, experiment)

    rows = [[p] + reports[p].cost_row() for p in AUTOSCALE_POLICIES]
    report_text = table(
        ["autoscale", "done", "p50 s", "p95 s", "p99 s", "miss",
         "good/h", "fairness", "node-h", "tier", "ops"],
        rows,
        title="XTRA-H - dedicated-tier autoscaling: cost vs SLO",
    )
    audit = render_decisions(reports["reactive"].scale_events)
    save_report("autoscale_service", report_text + "\n\n" + audit)

    static = reports["static"]
    assert static.scale_events == []
    assert static.overall.miss_rate > 0, (
        "the bursty scenario must overload the static tier"
    )
    # The provisioning claim: better SLO at equal-or-lower cost.
    for policy in ("reactive", "predictive"):
        scaled = reports[policy]
        assert scaled.overall.completed == static.overall.completed
        assert scaled.overall.miss_rate < static.overall.miss_rate
        assert scaled.node_hours <= static.node_hours
        assert scaled.scale_events, f"{policy} never scaled"
        # Bounds were honoured on every decision.
        for d in scaled.scale_events:
            assert 1 <= d.after <= 6

    # Byte-identical reproducibility, audit log included.
    assert repeat.render() == reports["reactive"].render()
    assert render_decisions(repeat.scale_events) == render_decisions(
        reports["reactive"].scale_events
    )
    assert repeat.node_hours == reports["reactive"].node_hours
