"""TABLE II bench: execution profiles at unavailability 0.5 for
VO-V1, VO-V3, VO-V5 and HA-V1 (reuses the Fig. 6 runs)."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import fig6

from conftest import run_once, save_report


def test_table2_execution_profiles(benchmark):
    def collect():
        return {
            app: fig6.table2(app) for app in ("sort", "word count")
        }

    profiles = run_once(benchmark, collect)
    report = "\n\n".join(
        fig6.report_table2(app, p) for app, p in profiles.items()
    )
    save_report("table2", report)

    sort_p = profiles["sort"]
    # Paper Table II claims (sort at 0.5):
    # VO-V1's shuffle is far longer than HA-V1's (paper ~5x).
    assert (
        sort_p["VO-V1"].avg_shuffle_time
        > 1.5 * sort_p["HA-V1"].avg_shuffle_time
    ), {k: v.avg_shuffle_time for k, v in sort_p.items()}
    # Killed maps: VO-V1 wildly above HA-V1 (paper: 1389 vs 18.75).
    assert sort_p["VO-V1"].killed_maps > sort_p["HA-V1"].killed_maps, {
        k: v.killed_maps for k, v in sort_p.items()
    }
    # Map time grows with the volatile replication degree.
    assert sort_p["VO-V5"].avg_map_time > sort_p["VO-V1"].avg_map_time
