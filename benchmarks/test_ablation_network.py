"""XTRA-A bench: FIFO-queue vs max-min fair-share transfer model."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import ablations

from conftest import run_once, save_report


def test_network_model_ablation(benchmark):
    data = run_once(benchmark, ablations.run_network_ablation)
    save_report("ablation_network", ablations.report_network(data))
    fifo, fair = data["fifo"], data["fairshare"]
    # Both models must complete the runs and agree within a factor ~2
    # (they model the same physical contention differently).
    for a, b in zip(fifo, fair):
        assert a is not None and b is not None
        assert 0.4 <= a / b <= 2.5, (fifo, fair)
