"""Headline: where the seconds went — blame attribution under stress.

Replays the bundled Hadoop JobHistory sample at 3x load on a small,
churny cluster across a detector x preemption grid and attributes
every finished job's response time through the explain layer.  The
table shows slowness *moving between causes*, never appearing or
disappearing: the honest timeout detector's false suspicions put
re-executed work on the critical path (``re-susp``), a category the
oracle holds at a structural zero; switching pause preemption on
converts exec/queue seconds into explicit ``pause`` seconds.
Conservation (components sum to response time) is
asserted for every job in every cell, and the report text is pinned
as a golden — byte-stable across processes because the explain layer
renders only run-local labels.
"""

from __future__ import annotations

import math
import pathlib

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.config import (
    ClusterConfig,
    DetectorConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.obs import Observability, ObsConfig
from repro.obs.explain import BLAME_CATEGORIES, explain_tracer
from repro.plotting import table
from repro.service import MoonService, PreemptConfig, ServiceConfig
from repro.workload_traces import (
    CalibrationConfig,
    SynthesisConfig,
    load_workload_trace,
    synthesize,
    trace_arrivals,
)

from conftest import run_once, save_report

REPO = pathlib.Path(__file__).resolve().parent.parent
SAMPLE = REPO / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
LOAD_FACTOR = 3.0
N_VOLATILE, N_DEDICATED, RATE = 12, 2, 0.35
SEED = 42

#: The grid: honest detection and pause preemption, on and off.
CELLS = [
    ("oracle", None),
    ("oracle", "pause"),
    ("timeout", None),
    ("timeout", "pause"),
]


def _arrivals():
    trace = synthesize(
        load_workload_trace(SAMPLE),
        np.random.default_rng(SEED),
        SynthesisConfig(load_factor=LOAD_FACTOR),
    )
    return trace, trace_arrivals(trace, CalibrationConfig())


def _serve_cell(detector, preempt, trace, arrivals):
    obs = Observability(ObsConfig(trace=True))
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(
                n_volatile=N_VOLATILE, n_dedicated=N_DEDICATED
            ),
            trace=TraceConfig(unavailability_rate=RATE),
            scheduler=moon_scheduler_config(),
            detector=DetectorConfig(mode=detector),
            seed=SEED,
        ),
        obs=obs,
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=4,
            max_queue_depth=64,
            horizon=trace.horizon,
            drain_limit=4 * 3600.0,
            preempt=PreemptConfig(mode=preempt) if preempt else None,
            trace_name=trace.name,
        ),
        arrivals,
        pattern=trace.pattern,
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, explain_tracer(obs.tracer)


def test_blame_attribution(benchmark):
    def experiment():
        trace, arrivals = _arrivals()
        return {
            (detector, preempt): _serve_cell(
                detector, preempt, trace, arrivals
            )
            for detector, preempt in CELLS
        }

    data = run_once(benchmark, experiment)

    short = {
        "queue_wait": "queue s", "exec": "exec s", "shuffle": "shuf s",
        "straggler_wait": "stragl s", "reexec_failure": "re-fail s",
        "reexec_suspicion": "re-susp s", "pause": "pause s",
        "recovery": "recov s", "slot_wait": "slot s",
        "commit": "commit s",
    }
    rows = []
    for (detector, preempt), (report, exp) in data.items():
        totals = exp.totals()
        rows.append(
            [
                detector,
                preempt or "off",
                len(exp.jobs),
                f"{math.fsum(totals.values()):.0f}",
            ]
            + [f"{totals[c]:.0f}" for c in BLAME_CATEGORIES]
        )
    report_text = table(
        ["detector", "preempt", "jobs", "resp s"]
        + [short[c] for c in BLAME_CATEGORIES],
        rows,
        title=(
            "blame attribution - hadoop sample at "
            f"{LOAD_FACTOR:.0f}x load, edf queue, "
            f"V{N_VOLATILE}+D{N_DEDICATED} at rate {RATE}"
        ),
    )

    # The baseline cell's slowest job, critical path and all — the
    # "why was this job slow?" artifact the CLI prints.
    base_exp = data[("oracle", None)][1]
    worst = base_exp.worst(1)[0]
    report_text += (
        "\n\nslowest job, oracle/no-preempt cell:\n\n"
        + base_exp.render_job(worst)
    )
    report_text += (
        "\n\nEvery row conserves: the blame columns sum to the resp"
        "\ncolumn exactly.  The honest timeout detector's false"
        "\nsuspicions put re-executed work on the critical path"
        "\n(re-susp), a category the oracle holds at zero; pause"
        "\npreemption converts exec/queue seconds into pause seconds;"
        "\nMOON's frozen-task state (stragl) draws blame in every cell."
    )
    save_report("blame_attribution", report_text)

    # --- conservation, per job, in every cell ------------------------
    for (detector, preempt), (report, exp) in data.items():
        assert exp.jobs, (detector, preempt)
        for blame in exp.jobs:
            assert abs(blame.total - blame.response_time) < 1e-6, (
                detector, preempt, blame.graph.label,
            )
            for seconds in blame.components.values():
                assert seconds >= -1e-9
        # The service report carries the same rollup.
        assert report.blame is not None
        for category in BLAME_CATEGORIES:
            assert abs(
                report.blame[category] - exp.totals()[category]
            ) < 1e-9

    # --- qualitative shape -------------------------------------------
    oracle = data[("oracle", None)][1].totals()
    timeout = data[("timeout", None)][1].totals()
    paused = data[("oracle", "pause")][1].totals()
    # The oracle never falsely suspects, so suspicion-rework blame is
    # structurally zero; the honest timeout detector buys detection
    # with exactly that category.
    assert oracle["reexec_suspicion"] == 0.0
    assert timeout["reexec_suspicion"] > 0.0
    # The oracle with no preemption controller cannot accrue pause
    # blame; the pause cell must.
    assert oracle["pause"] == 0.0
    assert paused["pause"] > 0.0
    # Churn at rate 0.35 freezes tasks on suspended nodes in every
    # cell: MOON's signature straggler state always draws blame here.
    for _, exp in data.values():
        assert exp.totals()["straggler_wait"] > 0.0
