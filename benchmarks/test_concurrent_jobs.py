"""XTRA-F: concurrent MapReduce jobs (paper VIII future work).

*"this paper investigated single-job execution, and it would be
interesting future work to study the scheduling and QoS issues of
concurrent MapReduce jobs on opportunistic environments."*

We submit three heterogeneous jobs together (I/O-heavy sort, compute-
heavy word count, tiny grep) on one MOON deployment and compare the
concurrent makespan against running them back-to-back — slot sharing
should overlap one job's shuffle with another's maps.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.workloads import grep_spec, sort_spec, wordcount_spec

from conftest import run_once, save_report


def _config(seed=42):
    return SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.3),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=seed,
    )


def _specs():
    return [
        sort_spec(n_maps=96, block_mb=16.0),
        wordcount_spec(n_maps=80, block_mb=16.0, n_reduces=10),
        grep_spec(n_maps=48, block_mb=16.0),
    ]


def test_concurrent_jobs(benchmark, scale):
    def experiment():
        # Concurrent: all three submitted at t=0.
        system = moon_system(_config())
        results = system.run_jobs(_specs(), time_limit=scale.time_limit)
        concurrent_makespan = system.sim.now
        # Serial: fresh system per job, same traces (same seed).
        serial_total = 0.0
        per_job = []
        for spec in _specs():
            s = moon_system(_config())
            r = s.run_job(spec, time_limit=scale.time_limit)
            assert r.succeeded, f"serial {spec.name} did not finish"
            serial_total += r.elapsed
            per_job.append((spec.name, r.elapsed))
        return {
            "results": [
                (r.workload, r.state, r.elapsed) for r in results
            ],
            "concurrent_makespan": concurrent_makespan,
            "serial_total": serial_total,
            "per_job": per_job,
        }

    data = run_once(benchmark, experiment)

    rows = [
        [name, state, None if t is None else f"{t:.0f}"]
        for name, state, t in data["results"]
    ]
    rows.append(["(makespan)", "concurrent",
                 f"{data['concurrent_makespan']:.0f}"])
    rows.append(["(sum)", "serial", f"{data['serial_total']:.0f}"])
    report = table(
        ["job", "state", "time s"],
        rows,
        title="XTRA-F - three concurrent jobs vs serial execution",
    )
    save_report("concurrent_jobs", report)

    assert all(state == "succeeded" for _n, state, _t in data["results"])
    # Overlap must beat strictly serial execution.
    assert data["concurrent_makespan"] < data["serial_total"]
