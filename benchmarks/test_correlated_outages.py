"""XTRA-E: correlated ("lab session") outages vs replication policy.

Paper Sections I and III: *"Handling large-scale correlated resource
unavailability requires even more replication"* — unless one replica
sits on a dedicated anchor.  We generate traces where 80% of downtime
arrives in ~15-minute whole-group bursts (matching Figure 1's up-to-90%
simultaneous unavailability) and compare volatile-only intermediate
replication (VO-3) against the hybrid anchor (HA, {1,1}).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.cluster import Cluster, Node, NodeKind
from repro.config import (
    ClusterConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import MoonSystem
from repro.dfs import ReplicationFactor
from repro.plotting import table
from repro.traces import (
    CorrelatedConfig,
    generate_correlated_traces,
    peak_simultaneous_down,
)
from repro.workloads import sort_spec

from conftest import run_once, save_report

N_VOLATILE, N_DEDICATED, RATE = 30, 3, 0.4


def _build(traces, seed=5) -> MoonSystem:
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=N_VOLATILE, n_dedicated=N_DEDICATED),
        trace=TraceConfig(unavailability_rate=RATE),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=seed,
    )
    node_spec = NodeSpec()
    nodes = [Node(i, NodeKind.DEDICATED, node_spec) for i in range(N_DEDICATED)]
    nodes += [
        Node(N_DEDICATED + i, NodeKind.VOLATILE, node_spec, trace)
        for i, trace in enumerate(traces)
    ]
    return MoonSystem(config, cluster=Cluster(nodes))


def test_correlated_outages_vs_replication(benchmark, scale):
    def experiment():
        traces = generate_correlated_traces(
            CorrelatedConfig(
                base=TraceConfig(unavailability_rate=RATE),
                n_groups=2,
                correlation_weight=0.8,
                session_mean=900.0,
                session_sigma=200.0,
            ),
            N_VOLATILE,
            np.random.default_rng(17),
        )
        # Long enough (~7 clean minutes) that several lab sessions land
        # mid-job regardless of where the trace layout puts them.
        base = sort_spec(n_maps=480, block_mb=16.0)
        out = {"peak_down": peak_simultaneous_down(traces)}
        for label, rfac in (
            ("VO-3", ReplicationFactor(0, 3)),
            ("HA-V1", ReplicationFactor(1, 1)),
        ):
            system = _build(traces)
            result = system.run_job(
                base.with_(intermediate_rf=rfac), time_limit=scale.time_limit
            )
            out[label] = {
                "time": result.elapsed if result.succeeded else None,
                "reexec": result.metrics.map_reexecutions,
                "fetch_failures": result.metrics.fetch_failures,
            }
        return out

    data = run_once(benchmark, experiment)

    rows = [
        [
            name,
            None if d["time"] is None else f"{d['time']:.0f}",
            d["reexec"],
            d["fetch_failures"],
        ]
        for name, d in data.items()
        if name != "peak_down"
    ]
    report = table(
        ["intermediate", "job time s", "map reexec", "fetch failures"],
        rows,
        title=(
            "XTRA-E - lab-session bursts (peak "
            f"{data['peak_down']:.0%} of nodes down at once), sort"
        ),
    )
    report += (
        "\n\nPaper I/III: correlated bursts defeat volatile-only"
        "\nreplication (all copies vanish together -> forced map"
        "\nre-execution); one dedicated replica rides the burst out."
    )
    save_report("correlated_outages", report)

    vo, ha = data["VO-3"], data["HA-V1"]
    assert data["peak_down"] >= 0.7  # bursts as deep as Fig. 1's
    assert ha["time"] is not None
    # The anchor must beat volatile-only clearly under bursts.
    assert vo["time"] is None or ha["time"] < vo["time"] * 0.75
    assert ha["reexec"] <= vo["reexec"]
