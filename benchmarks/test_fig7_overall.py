"""FIG7 bench: overall MOON (D=3/4/6 dedicated) vs augmented
Hadoop-VO (six uniform replicas, all machines volatile)."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import fig7

from conftest import run_once, save_report


def test_fig7a_sort(benchmark):
    data = run_once(benchmark, lambda: fig7.run("sort"))
    save_report("fig7a", fig7.report("sort", data))
    checks = fig7.shapes("sort", data)
    assert checks["moon_d6_beats_hadoop_at_high_rate"], checks
    if "sort_speedup_at_least_1_5x" in checks:
        assert checks["sort_speedup_at_least_1_5x"], checks


def test_fig7b_wordcount(benchmark):
    data = run_once(benchmark, lambda: fig7.run("word count"))
    save_report("fig7b", fig7.report("word count", data))
    checks = fig7.shapes("word count", data)
    assert checks["moon_d6_beats_hadoop_at_high_rate"], checks
