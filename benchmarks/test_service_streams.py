"""XTRA-G: continuous job-stream serving (service layer, paper VIII).

*"...it would be interesting future work to study the scheduling and
QoS issues of concurrent MapReduce jobs on opportunistic
environments."*

A volatile cluster serves two arrival patterns (steady Poisson and
bursty) under several queue policies on *identical* streams and
traces (same seed).  The report compares p50/p95/p99 response time,
deadline-miss rate, goodput and tenant fairness; the qualitative
claims asserted are (a) EDF beats FIFO on deadline-miss rate under
bursts, and (b) a seeded service run is byte-for-byte reproducible.
"""

from __future__ import annotations

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.service import (
    ServiceConfig,
    bursty_arrivals,
    poisson_arrivals,
    sleep_catalog,
)

from conftest import run_once, save_report

HOUR = 3600.0
HORIZON = 2 * HOUR
POLICIES = ("fifo", "sjf", "edf", "fair")


def _system(seed=42):
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=12, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def _arrivals(pattern, system):
    rng = system.sim.rng("service/arrivals")
    if pattern == "poisson":
        return poisson_arrivals(
            rng, rate_per_hour=16.0, horizon=HORIZON,
            catalog=sleep_catalog(),
        )
    return bursty_arrivals(
        rng, bursts_per_hour=2.5, burst_size_mean=6.0, horizon=HORIZON,
        catalog=sleep_catalog(),
    )


def _serve(pattern, policy, seed=42):
    system = _system(seed)
    report = system.run_service(
        _arrivals(pattern, system),
        ServiceConfig(
            policy=policy,
            max_in_flight=2,
            max_queue_depth=48,
            horizon=HORIZON,
            drain_limit=4 * HOUR,
        ),
        pattern=pattern,
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return report


def test_service_streams(benchmark, scale):
    def experiment():
        reports = {
            (pattern, policy): _serve(pattern, policy)
            for pattern in ("poisson", "bursty")
            for policy in POLICIES
        }
        # Determinism: the same seed must reproduce the bursty FIFO
        # report byte-for-byte (fresh system, fresh streams).
        repeat = _serve("bursty", "fifo")
        return reports, repeat

    reports, repeat = run_once(benchmark, experiment)

    rows = []
    for (pattern, policy), rep in reports.items():
        o = rep.overall
        rows.append(
            [pattern, policy, o.arrived, o.rejected + o.dropped]
            + rep.summary_row()
        )
    report_text = table(
        ["pattern", "policy", "arrived", "rej", "done",
         "p50 s", "p95 s", "p99 s", "miss", "good/h", "fairness"],
        rows,
        title="XTRA-G - job-stream serving: arrival pattern x queue policy",
    )
    per_tenant = reports[("bursty", "edf")].render()
    save_report("service_streams", report_text + "\n\n" + per_tenant)

    # Every cell served its whole stream (nothing rejected at this depth).
    for rep in reports.values():
        assert rep.overall.arrived > 0
        assert rep.overall.completed == rep.overall.admitted

    # The paper-VIII QoS claim: under bursts, deadline-aware ordering
    # beats arrival ordering on miss rate (and therefore goodput).
    fifo = reports[("bursty", "fifo")].overall
    edf = reports[("bursty", "edf")].overall
    assert fifo.deadline_misses > 0, "bursty scenario must create backlog"
    assert edf.miss_rate < fifo.miss_rate
    assert edf.goodput_per_hour >= fifo.goodput_per_hour

    # Byte-identical reproducibility of a seeded service run.
    assert repeat.render() == reports[("bursty", "fifo")].render()
