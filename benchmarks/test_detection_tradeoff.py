"""Headline: the detection-latency / wasted-work tradeoff.

An oracle scheduler reacts to a node's death the instant the trace
says so — real masters only see missing heartbeats.  This bench runs
the same correlated-outage service stream under all three detector
modes and quantifies what honesty costs: how long failures go
undetected (detection latency), how much duplicated attempt time
false suspicions burn (wasted work), and whether either moves the
deadline-miss needle.  The adaptive phi-accrual detector should
dominate the fixed timeout on wasted work: it learns per-node silence
distributions, so flaky nodes earn wider tolerances than quiet ones.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.cluster import Cluster, Node, NodeKind
from repro.config import (
    DETECTOR_MODES,
    ClusterConfig,
    DetectorConfig,
    NodeSpec,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import MoonSystem
from repro.plotting import table
from repro.service import ServiceConfig, WorkloadClass, poisson_arrivals
from repro.traces import CorrelatedConfig, generate_correlated_traces
from repro.workloads import sort_spec, wordcount_spec

from conftest import run_once, save_report

N_VOLATILE, N_DEDICATED, RATE = 24, 3, 0.35
HOURS = 4.0
JOBS_PER_HOUR = 16.0

#: Long-ish map tasks so a lab-session outage reliably lands mid-attempt
#: (that is what makes detection mistakes *cost* something).
CATALOG = [
    WorkloadClass(
        wordcount_spec(n_maps=24, block_mb=8.0, n_reduces=6,
                       map_cpu_seconds=120.0),
        slo_seconds=45 * 60.0,
        weight=0.6,
    ),
    WorkloadClass(
        sort_spec(n_maps=48, block_mb=8.0).with_(
            n_reduces=8, reduces_per_slot=0.0
        ),
        slo_seconds=60 * 60.0,
        weight=0.4,
    ),
]


def _correlated_traces():
    return generate_correlated_traces(
        CorrelatedConfig(
            base=TraceConfig(unavailability_rate=RATE),
            n_groups=2,
            correlation_weight=0.8,
            session_mean=900.0,
            session_sigma=200.0,
        ),
        N_VOLATILE,
        np.random.default_rng(17),
    )


def _build(mode: str, traces) -> MoonSystem:
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=N_VOLATILE, n_dedicated=N_DEDICATED),
        trace=TraceConfig(unavailability_rate=RATE),
        scheduler=moon_scheduler_config(),
        detector=DetectorConfig(mode=mode),
        seed=7,
    )
    node_spec = NodeSpec()
    nodes = [Node(i, NodeKind.DEDICATED, node_spec) for i in range(N_DEDICATED)]
    nodes += [
        Node(N_DEDICATED + i, NodeKind.VOLATILE, node_spec, trace)
        for i, trace in enumerate(traces)
    ]
    return MoonSystem(config, cluster=Cluster(nodes))


def _serve_one(mode: str, traces) -> dict:
    system = _build(mode, traces)
    # Same seed -> the same arrival stream for every mode; detector
    # streams are namespaced separately so honest noise never perturbs
    # the workload.
    arrivals = poisson_arrivals(
        system.sim.rng("service/arrivals"),
        JOBS_PER_HOUR,
        HOURS * 3600.0,
        catalog=CATALOG,
    )
    report = system.run_service(
        arrivals,
        ServiceConfig(horizon=HOURS * 3600.0),
        pattern="poisson",
    )
    system.jobtracker.stop()
    system.namenode.stop()
    return {
        "done": report.overall.completed,
        "miss": report.overall.miss_rate,
        "detect_mean": report.detection_mean,
        "false_positives": report.false_positives,
        "requeues": report.requeues,
        "wasted": report.wasted_work,
    }


def test_detection_tradeoff(benchmark):
    def experiment():
        traces = _correlated_traces()
        return {mode: _serve_one(mode, traces) for mode in DETECTOR_MODES}

    data = run_once(benchmark, experiment)

    rows = [
        [
            mode,
            d["done"],
            "-" if d["miss"] is None else f"{d['miss']:.0%}",
            "-" if d["detect_mean"] is None else f"{d['detect_mean']:.1f}",
            d["false_positives"],
            d["requeues"],
            f"{d['wasted']:.0f}",
        ]
        for mode, d in data.items()
    ]
    report = table(
        ["detector", "done", "miss", "detect s", "false+", "requeues",
         "wasted s"],
        rows,
        title=(
            "detection tradeoff - correlated lab-session outages, "
            f"{JOBS_PER_HOUR:.0f} jobs/h poisson, {HOURS:.0f}h"
        ),
    )
    report += (
        "\n\nOracle detection is free: zero latency, zero false"
        "\nsuspicion, zero duplicated work.  Honest detectors pay for"
        "\nknowledge with wasted attempt-seconds; the adaptive detector"
        "\nlearns per-node silence distributions and wastes less than"
        "\nthe fixed timeout on the same stream."
    )
    save_report("detection_tradeoff", report)

    oracle = data["oracle"]
    timeout = data["timeout"]
    adaptive = data["adaptive"]
    # The oracle never suspects wrongly and never duplicates work.
    assert oracle["false_positives"] == 0
    assert oracle["requeues"] == 0
    assert oracle["wasted"] == 0.0
    assert oracle["detect_mean"] is None
    # Honest detection has measurable cost: false suspicions happen
    # and duplicated attempt-seconds are burned.
    assert timeout["false_positives"] > 0
    assert timeout["wasted"] > 0.0
    assert timeout["detect_mean"] is not None and timeout["detect_mean"] > 0
    # The adaptive detector dominates the fixed timeout on wasted work
    # under this correlated-outage trace.
    assert adaptive["wasted"] < timeout["wasted"]
    # Detection cost must not collapse throughput: every honest mode
    # still completes most of what the oracle does.
    assert timeout["done"] >= 0.8 * oracle["done"]
    assert adaptive["done"] >= 0.8 * oracle["done"]
