"""FIG1 bench: 7-day volunteer-availability trace (paper Figure 1)."""

from __future__ import annotations

from repro.experiments import fig1

from conftest import run_once, save_report


def test_fig1_weekly_unavailability(benchmark):
    profiles = run_once(benchmark, lambda: fig1.run(seed=42))
    save_report("fig1", fig1.report(profiles))
    assert len(profiles) == 7
    assert fig1.shape_holds(profiles), (
        "Fig. 1 band violated: curves must stay within the paper's "
        "25-95% regime with ~0.4 mean unavailability"
    )
