"""Tests of the perf-regression harness itself.

The fast tests exercise the runner against stub scenarios (regression
detection, JSON emission, baseline update); the slow smoke runs a real
macro-scenario end to end through the CLI exactly as CI does.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import SCENARIOS, Scenario, load_baseline, run_perf
from repro.perf import runner as runner_mod
from repro.perf import scenarios as scenarios_mod


@pytest.fixture
def stub_scenarios(monkeypatch):
    """Replace the registry with two instant stub scenarios."""
    calls = {"fast": 0, "work": 0}

    def fast():
        calls["fast"] += 1
        return {"events": 100.0, "jobs_done": 1.0}

    def work():
        calls["work"] += 1
        return {"events": 500.0, "jobs_done": 2.0}

    stubs = {
        "fast": Scenario("fast", "instant stub", fast),
        "work": Scenario("work", "instant stub 2", work),
    }
    monkeypatch.setattr(scenarios_mod, "SCENARIOS", stubs)
    monkeypatch.setattr(runner_mod, "SCENARIOS", stubs)
    return calls


def _write_baseline(path, entries):
    path.write_text(json.dumps({"scenarios": entries}))


class TestRunner:
    def test_report_written_with_speedup(self, tmp_path, stub_scenarios):
        baseline = tmp_path / "baseline.json"
        _write_baseline(baseline, {"fast": {"wall_s": 1000.0, "events": 100}})
        out = tmp_path / "BENCH.json"
        code = run_perf(
            names=["fast"], output=str(out), baseline_path=str(baseline)
        )
        assert code == 0
        report = json.loads(out.read_text())
        entry = report["scenarios"]["fast"]
        assert entry["events"] == 100
        assert entry["baseline_wall_s"] == 1000.0
        assert entry["speedup_vs_baseline"] > 1.0
        assert entry["regressed"] is False

    def test_check_fails_on_regression(self, tmp_path, stub_scenarios):
        baseline = tmp_path / "baseline.json"
        # Baseline of ~0 seconds: any real run is a >20% regression.
        _write_baseline(baseline, {"fast": {"wall_s": 1e-9, "events": 100}})
        code = run_perf(
            names=["fast"],
            check=True,
            output=str(tmp_path / "BENCH.json"),
            baseline_path=str(baseline),
        )
        assert code == 1

    def test_check_without_baseline_fails(self, tmp_path, stub_scenarios):
        baseline = tmp_path / "baseline.json"
        _write_baseline(baseline, {})
        code = run_perf(
            names=["fast"],
            check=True,
            output=str(tmp_path / "BENCH.json"),
            baseline_path=str(baseline),
        )
        assert code == 1

    def test_unknown_scenario_rejected(self, tmp_path, stub_scenarios):
        code = run_perf(names=["nope"], output=str(tmp_path / "B.json"))
        assert code == 2

    def test_update_baseline_pins_current(self, tmp_path, stub_scenarios):
        baseline = tmp_path / "baseline.json"
        _write_baseline(baseline, {"work": {"wall_s": 123.0, "events": 1}})
        code = run_perf(
            names=["fast"],
            update_baseline=True,
            output=str(tmp_path / "BENCH.json"),
            baseline_path=str(baseline),
        )
        assert code == 0
        pinned = load_baseline(str(baseline))
        assert "fast" in pinned and pinned["fast"]["events"] == 100
        # Entries for scenarios not re-run survive the merge.
        assert pinned["work"]["wall_s"] == 123.0

    def test_repeat_takes_fastest(self, tmp_path, stub_scenarios):
        run_perf(
            names=["fast"], repeat=3, output=str(tmp_path / "B.json"),
            baseline_path=str(tmp_path / "missing.json"),
        )
        assert stub_scenarios["fast"] == 3


class TestRegistry:
    def test_real_registry_names(self):
        assert set(SCENARIOS) == {
            "fig6", "fig7", "service2k", "fairshare", "autoscale2k",
            "replay2k", "preempt2k", "detect2k", "recover2k",
            "scale10k",
        }

    def test_descriptions_present(self):
        for s in SCENARIOS.values():
            assert s.description


@pytest.mark.slow
def test_cli_smoke_fig6_against_committed_baseline(tmp_path, capsys):
    """The CI perf smoke: `repro perf --scenario fig6 --check`.

    ``--repeat 2`` takes the fastest of two timings: the wall-clock
    gate should trip on real regressions, not on a scheduler hiccup
    during a single run.  The event checksum is exact either way.
    """
    from repro.cli.main import main

    out = tmp_path / "BENCH_PR2.json"
    code = main(
        ["perf", "--scenario", "fig6", "--check", "--repeat", "2",
         "--output", str(out)]
    )
    assert code == 0, capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["scenarios"]["fig6"]["wall_s"] > 0
