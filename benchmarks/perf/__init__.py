"""Perf-regression harness assets: committed baseline + harness tests.

The scenario and timing code lives in ``repro.perf`` (importable by
the ``repro perf`` CLI); this package holds the committed baseline
(``baseline.json``, re-pinned via ``repro perf --update-baseline``)
and the pytest coverage of the harness itself.
"""
