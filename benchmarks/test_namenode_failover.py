"""NameNode failover: recovery time vs journal length vs checkpoints.

A crash loses the unsynced journal tail and forces the standby to
replay everything since the last checkpoint before datanodes can
re-report their disks.  This bench crashes the same churny DFS
workload under a sweep of checkpoint intervals and quantifies the
knob's whole point: checkpoint rarely and the replayed log grows with
the workload; checkpoint often and recovery replays almost nothing —
the floor being the block-report reconvergence (report delay plus the
per-node stagger), which no checkpoint cadence can remove.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.cluster import (
    AvailabilityMonitor,
    Cluster,
    Node,
    NodeKind,
    connect_network,
)
from repro.config import DfsConfig, JournalConfig, NodeSpec
from repro.dfs import DfsClient, FileKind, NameNode, ReplicationFactor
from repro.net import FifoNetwork
from repro.plotting import table
from repro.simulation import Simulation
from repro.traces import AvailabilityTrace

from conftest import run_once, save_report

N_DEDICATED, N_VOLATILE = 3, 12
#: Off every checkpoint grid: a crash landing exactly on a checkpoint
#: tick would measure the truncation, not the cadence.
CRASH_AT = 571.0
N_FILES = 150

#: Outage windows on a third of the volatile tier: hibernations,
#: expiries and rejoins put drop/want records in the journal, not just
#: creates and adds.
OUTAGES = {
    3: [(40.0, 260.0)],
    5: [(100.0, 1500.0)],
    7: [(200.0, 340.0)],
    9: [(15.0, 90.0)],
}

#: The sweep: never checkpoint (the whole run replays), the paper-ish
#: cadences, and an aggressive one.
INTERVALS = [("never", 1e9), ("300s", 300.0), ("120s", 120.0),
             ("30s", 30.0)]


def _build(checkpoint_interval: float):
    sim = Simulation(seed=29)
    spec = NodeSpec()
    nodes = [Node(i, NodeKind.DEDICATED, spec) for i in range(N_DEDICATED)]
    for j in range(N_VOLATILE):
        nid = N_DEDICATED + j
        trace = (
            AvailabilityTrace(OUTAGES[nid], 100000.0)
            if nid in OUTAGES
            else None
        )
        nodes.append(Node(nid, NodeKind.VOLATILE, spec, trace))
    cluster = Cluster(nodes)
    AvailabilityMonitor(sim, cluster)
    net = FifoNetwork(sim)
    for n in nodes:
        net.register_node(n.node_id, n.spec.disk_mbps, n.spec.nic_mbps)
    connect_network(cluster, net)
    cfg = DfsConfig(
        journal=JournalConfig(
            enabled=True,
            checkpoint_interval=checkpoint_interval,
            crash_at=CRASH_AT,
        )
    )
    nn = NameNode(sim, cluster, net, cfg)
    return sim, nn


def _crash_one(checkpoint_interval: float) -> dict:
    sim, nn = _build(checkpoint_interval)
    client = DfsClient(nn)

    def write(i: int) -> None:
        kind = FileKind.RELIABLE if i % 3 else FileKind.OPPORTUNISTIC
        rf = ReplicationFactor(1, 2) if i % 3 else ReplicationFactor(1, 1)
        client.write_file(
            f"/f{i}", 64.0, kind, rf,
            client_node=N_DEDICATED + (i % N_VOLATILE),
            on_complete=lambda: None,
            on_fail=lambda e: None,
        )

    for i in range(N_FILES):
        sim.call_at(1.0 + i * (CRASH_AT * 0.9 / N_FILES), write, i)
    # The config-armed crash fires on the sim clock; everything worth
    # reporting lands in counters and the recovery histogram.
    sim.run(until=CRASH_AT + 120.0)
    nn.stop()
    m = sim.obs.metrics
    hist = m.histogram("dfs/recovery_seconds")
    return {
        "checkpoints": int(m.counter("dfs/checkpoints").value),
        "records": int(m.counter("dfs/journal_records").value),
        "lost": int(m.counter("dfs/journal_records_lost").value),
        "replayed": len(nn.journal.durable_records()),
        "recovery_s": hist.mean if hist.count else None,
        "relearned": int(m.counter("dfs/replicas_recovered").value),
        "blocks_lost": int(m.counter("dfs/blocks_lost").value),
    }


def test_namenode_failover(benchmark):
    def experiment():
        return {
            label: _crash_one(interval)
            for label, interval in INTERVALS
        }

    data = run_once(benchmark, experiment)

    rows = [
        [
            label,
            d["checkpoints"],
            d["records"],
            d["lost"],
            "-" if d["recovery_s"] is None else f"{d['recovery_s']:.3f}",
            d["relearned"],
        ]
        for label, d in data.items()
    ]
    report = table(
        ["checkpoint", "ckpts", "journal recs", "lost", "recovery s",
         "relearned"],
        rows,
        title=(
            f"namenode failover - {N_FILES} files, crash at "
            f"{CRASH_AT:.0f}s, {N_DEDICATED}+{N_VOLATILE} nodes"
        ),
    )
    report += (
        "\n\nCheckpoints trade replay for snapshot work: 'never' replays"
        "\nthe whole journal at failover, aggressive cadences replay"
        "\nalmost nothing.  The recovery floor is the block-report"
        "\nreconvergence (report delay + per-node stagger), so recovery"
        "\ntime compresses toward that floor rather than zero; replicas"
        "\nregistered after the last group-commit fsync are re-learned"
        "\nfrom datanode disks, and no block is ever lost to the crash."
    )
    save_report("namenode_failover", report)

    never = data["never"]
    often = data["30s"]
    # Each cell saw exactly one crash.
    assert all(d["lost"] >= 0 for d in data.values())
    # The journal grows with the workload; checkpoints truncate it.
    assert never["checkpoints"] == 0
    assert often["checkpoints"] >= 10
    # More frequent checkpoints leave strictly less log at the crash.
    replayed = [data[label]["replayed"] for label, _ in INTERVALS]
    assert all(a >= b for a, b in zip(replayed, replayed[1:]))
    assert never["replayed"] > 10 * often["replayed"]
    # Recovery happened exactly once per cell and took real time.
    for d in data.values():
        assert d["recovery_s"] is not None and d["recovery_s"] > 0.0
    # Replay time shrinks with the log: recovery is weakly faster the
    # more aggressive the cadence.
    recovery = [data[label]["recovery_s"] for label, _ in INTERVALS]
    assert all(a >= b for a, b in zip(recovery, recovery[1:]))
    # The crash wipes knowledge, not disks: the lost tail is re-learned
    # and nothing is ever lost to the failover itself.
    for d in data.values():
        assert d["blocks_lost"] == 0
