"""FIG6 bench: intermediate-data replication policies (VO-V1..V5 vs
HA-V1..V3) on sort and word count at rates 0.1/0.3/0.5."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import fig6

from conftest import run_once, save_report


def test_fig6a_sort(benchmark):
    data = run_once(benchmark, lambda: fig6.run("sort"))
    save_report("fig6a", fig6.report("sort", data))
    checks = fig6.shapes("sort", data)
    assert checks["ha_v1_beats_best_vo_at_high_rate"], checks
    assert checks["vo_v3_no_worse_than_vo_v1_at_high_rate"], checks


def test_fig6b_wordcount(benchmark):
    data = run_once(benchmark, lambda: fig6.run("word count"))
    save_report("fig6b", fig6.report("word count", data))
    checks = fig6.shapes("word count", data)
    assert checks["ha_v1_beats_best_vo_at_high_rate"], checks
