"""Benchmark-suite helpers.

Every bench regenerates one paper table/figure: it runs the experiment
grid once (``benchmark.pedantic(rounds=1)`` — these are simulations,
not microbenchmarks), prints the paper-shaped text table, saves it to
``benchmarks/out/`` and asserts the qualitative shape the paper claims.

``REPRO_FULL_SCALE=1`` switches every bench to the paper's exact
Table-I sizes and multiple seeds (slower).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def scale():
    from repro.experiments import current_scale

    return current_scale()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
