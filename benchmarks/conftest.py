"""Benchmark-suite helpers.

Every bench regenerates one paper table/figure: it runs the experiment
grid once (``benchmark.pedantic(rounds=1)`` — these are simulations,
not microbenchmarks), prints the paper-shaped text table, saves it to
``benchmarks/out/`` and asserts the qualitative shape the paper claims.

``REPRO_FULL_SCALE=1`` switches every bench to the paper's exact
Table-I sizes and multiple seeds (slower).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def scale():
    from repro.experiments import current_scale

    return current_scale()


#: Module boundaries where releasing the harness memo is known safe:
#: after each self-contained experiment family, and after the two
#: *consumers* of shared grids (Fig. 5 re-aggregates Fig. 4's runs,
#: Table II re-aggregates Fig. 6's — which alphabetically sits several
#: modules earlier, so the grid must survive until test_table2).
#: A module not listed here keeps the cache — fail-safe: an unknown new
#: module can never force a multi-minute re-run of a producer grid,
#: and memory stays bounded by the harness LRU (CACHE_MAX_ENTRIES).
_CLEAR_CACHE_AFTER = {
    "test_ablation_twophase",  # last of the run_cell-using ablations
    "test_fig5_duplicates",  # consumed Fig. 4's grid
    "test_table2_profile",  # consumed Fig. 6's grid (via fig7 et al.)
}


@pytest.fixture(autouse=True, scope="module")
def _bounded_harness_cache(request):
    """Release the experiment memo between figure modules."""
    yield
    if request.module.__name__ in _CLEAR_CACHE_AFTER:
        from repro.experiments import harness

        harness.clear_cache()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
