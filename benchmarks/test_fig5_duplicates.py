"""FIG5 bench: duplicated tasks issued by each scheduling policy.

Reuses the Fig. 4 runs (harness cache), so this bench measures only
the aggregation; the assertions are the paper's Fig. 5 claims.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import fig4
from repro.metrics import series_table

from conftest import run_once, save_report


def test_fig5_duplicated_tasks(benchmark):
    def collect():
        return {app: fig4.run(app) for app in ("sort", "word count")}

    data = run_once(benchmark, collect)
    for app, d in data.items():
        tag = "fig5a" if app == "sort" else "fig5b"
        table = series_table(
            f"FIG5 - duplicated tasks, sleep[{app}]",
            "unavail rate",
            fig4.RATES,
            {k: v["duplicates"] for k, v in d.items()},
            unit="tasks",
            fmt="{:10.0f}",
        )
        save_report(tag, table)
        checks = fig4.shapes(d)
        assert checks["moon_fewer_duplicates_than_hadoop1min"], (app, checks)
