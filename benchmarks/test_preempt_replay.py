"""XTRA-P: SLO-aware preemption on the 3x replay trace (S15).

The ISSUE-5 headline, end to end: the bundled Hadoop JobHistory-style
sample is synthesized to 3x load and replayed on a small pressured
cluster (6 volatile + 1 dedicated, two in-flight slots) under EDF with
the preemption controller off, in deprioritise mode, and in pause
mode.  Asserted claims:
(a) **EDF+pause beats plain EDF on the tight-SLO deadline-miss rate**
(strictly), with bounded goodput loss — pausing loose batch work hands
its slots to interactive jobs that would otherwise strand behind it;
(b) the `repro replay --preempt all` comparison table is
**byte-identical across two independent processes** — the acceptance
bar for every comparison table in this repo;
(c) with the controller configured but **off**, the run is
byte-identical to a service without any controller (same event count,
same report minus the one `preempt=` trailer line) — the guarantee
behind the unchanged paper-figure goldens.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.service import MoonService, PreemptConfig, ServiceConfig
from repro.workload_traces import (
    SynthesisConfig,
    load_workload_trace,
    synthesize,
    trace_arrivals,
)

from conftest import run_once, save_report

pytestmark = pytest.mark.slow

HOUR = 3600.0
REPO = pathlib.Path(__file__).parent.parent
HADOOP_SAMPLE = REPO / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
#: Relative-SLO split between the sample's two classes (interactive
#: 600 s vs batch 5400 s).
TIGHT_SLO_CUTOFF = 1800.0
MODES = (None, "off", "deprioritise", "pause")


def _heavy_trace():
    return synthesize(
        load_workload_trace(HADOOP_SAMPLE),
        np.random.default_rng(7),
        SynthesisConfig(load_factor=3.0),
    )


def _replay(trace, arrivals, mode):
    system = moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=6, n_dedicated=1),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=42,
        )
    )
    service = MoonService(
        system,
        ServiceConfig(
            policy="edf",
            max_in_flight=2,
            max_queue_depth=64,
            horizon=trace.horizon,
            drain_limit=4 * HOUR,
            trace_name=trace.name,
            preempt=None if mode is None else PreemptConfig(mode=mode),
        ),
        arrivals,
        pattern=trace.pattern,
    )
    report = service.run()
    events = system.sim.executed_events
    system.jobtracker.stop()
    system.namenode.stop()
    return report, events


def _slo_split(report):
    """(tight misses, tight jobs, loose misses, loose jobs)."""
    tight = [
        r
        for r in report.records
        if r.deadline is not None
        and r.deadline - r.arrival.arrival_time <= TIGHT_SLO_CUTOFF
    ]
    loose = [r for r in report.records if r not in tight]
    return (
        sum(1 for r in tight if r.missed_deadline),
        len(tight),
        sum(1 for r in loose if r.missed_deadline),
        len(loose),
    )


def _cli_preempt_bytes():
    """One independent `repro replay --preempt all` process's stdout."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "replay",
         "--trace", str(HADOOP_SAMPLE), "--scale", "3",
         "--policy", "edf", "--volatile", "6", "--dedicated", "1",
         "--max-in-flight", "2", "--preempt", "all"],
        capture_output=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return proc.stdout


def test_preempt_replay(benchmark, scale):
    trace = _heavy_trace()
    arrivals = trace_arrivals(trace)

    def experiment():
        return {
            mode: _replay(trace, arrivals, mode) for mode in MODES
        }

    cells = run_once(benchmark, experiment)

    rows = []
    for mode in MODES:
        report, _events = cells[mode]
        tm, nt, lm, nl = _slo_split(report)
        counts = report.preempt_counts
        o = report.overall
        rows.append(
            [
                "(none)" if mode is None else mode,
                o.completed,
                f"{100.0 * tm / nt:.1f}%",
                f"{100.0 * lm / nl:.1f}%",
                "--" if o.miss_rate is None else f"{100.0 * o.miss_rate:.1f}%",
                f"{o.goodput_per_hour:.2f}",
                counts["deprioritise"],
                counts["pause"],
            ]
        )
    report_text = table(
        ["preempt", "done", "tight miss", "loose miss", "miss",
         "good/h", "depri", "pauses"],
        rows,
        title=("XTRA-P - SLO-aware preemption: hadoop sample at 3x "
               "load, EDF queue, 6V+1D cluster"),
    )
    save_report("preempt_replay", report_text)

    base, base_events = cells[None]
    off, off_events = cells["off"]
    depri, _ = cells["deprioritise"]
    paused, _ = cells["pause"]

    # (c) mode="off" is byte-identical to no controller at all.
    assert off_events == base_events
    assert base.render() == "\n".join(
        line
        for line in off.render().splitlines()
        if not line.startswith("preempt=")
    )

    # (a) pause strictly lowers the tight-SLO miss rate vs plain EDF,
    # at bounded goodput loss (here it actually *gains* goodput: the
    # loose jobs lose only their place in line, not their work).
    tight_off, n_tight, _, _ = _slo_split(off)
    tight_pause, _, _, _ = _slo_split(paused)
    assert n_tight > 0
    assert tight_off > 0, "3x load must pressure the tight class"
    assert tight_pause < tight_off
    assert paused.preempt_counts["pause"] >= 1
    assert (
        paused.overall.goodput_per_hour
        >= 0.75 * off.overall.goodput_per_hour
    )
    # Deprioritise sits between: acts, but never suspends anything.
    assert depri.preempt_counts["deprioritise"] >= 1
    assert depri.preempt_counts["pause"] == 0

    # (b) the CLI comparison is byte-identical across two processes.
    assert _cli_preempt_bytes() == _cli_preempt_bytes()
