"""XTRA-C bench: LATE vs MOON on opportunistic nodes (paper VII)."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import ablations

from conftest import run_once, save_report


def test_late_vs_moon(benchmark):
    data = run_once(benchmark, ablations.run_late_ablation)
    save_report("ablation_late", ablations.report_late(data))
    late, moon = data["LATE"], data["MOON-Hybrid"]
    assert all(v is not None for v in moon), data
    # The paper's claim: LATE's constant-progress-rate assumption breaks
    # on opportunistic resources; MOON must win at the highest rate.
    if late[-1] is not None:
        assert moon[-1] <= late[-1] * 1.05, data
