"""XTRA-D ablation: the hibernate DataNode state (paper IV-C).

The paper argues a two-threshold design is necessary: a short
NodeExpiryInterval causes *replication thrashing* (blocks re-replicated
while their node is briefly away, then the node returns), while a long
one leaves clients burning timeouts against dead DataNodes.  MOON's
hibernate state (short NodeHibernateInterval + long NodeExpiryInterval)
is supposed to avoid both.

Three configurations on the same workload and traces:

* ``short-expiry``  — no hibernate, NodeExpiryInterval 2 min;
* ``long-expiry``   — no hibernate, NodeExpiryInterval 30 min;
* ``MOON hibernate``— hibernate 1 min + expiry 30 min (the paper's).

Measured: job time, replication traffic, thrash events, read timeouts.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.config import (
    ClusterConfig,
    DfsConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.workloads import sort_spec

from conftest import run_once, save_report

CONFIGS = {
    # (hibernate_interval, expiry_interval); hibernate just below expiry
    # collapses the hibernate state exactly like stock HDFS.
    "short-expiry": (120.0 - 1e-3, 120.0),
    "long-expiry": (1800.0 - 1e-3, 1800.0),
    "MOON-hibernate": (60.0, 1800.0),
}


def _run(scale, hibernate: float, expiry: float):
    cfg = SystemConfig(
        cluster=ClusterConfig(n_volatile=30, n_dedicated=3),
        trace=TraceConfig(unavailability_rate=0.4),
        dfs=DfsConfig(
            node_hibernate_interval=hibernate, node_expiry_interval=expiry
        ),
        scheduler=moon_scheduler_config(hybrid_aware=True),
        seed=42,
    )
    system = moon_system(cfg)
    spec = sort_spec(n_maps=192, block_mb=16.0 * scale.data_factor * 2)
    result = system.run_job(spec, time_limit=scale.time_limit)
    nn = system.namenode.counters
    return {
        "time": result.elapsed if result.succeeded else None,
        "repl_mb": nn["replication_mb"],
        "thrash": nn["replication_thrash"],
        "timeouts": nn["read_timeouts"],
    }


def test_hibernate_state_ablation(benchmark, scale):
    def experiment():
        return {
            name: _run(scale, h, e) for name, (h, e) in CONFIGS.items()
        }

    data = run_once(benchmark, experiment)

    rows = [
        [
            name,
            None if d["time"] is None else f"{d['time']:.0f}",
            f"{d['repl_mb']:.0f}",
            d["thrash"],
            d["timeouts"],
        ]
        for name, d in data.items()
    ]
    report = table(
        ["config", "job time s", "repl MB", "thrash", "read timeouts"],
        rows,
        title="XTRA-D - hibernate-state ablation (sort, rate 0.4)",
    )
    report += (
        "\n\nPaper IV-C claims: a short expiry wastes replication traffic"
        "\n(thrashing); a long expiry without hibernation burns client"
        "\ntimeouts on dead nodes; hibernate + long expiry avoids both."
    )
    save_report("ablation_hibernate", report)

    moon = data["MOON-hibernate"]
    short = data["short-expiry"]
    long_ = data["long-expiry"]
    # Thrashing shows up as wasted replication traffic: the short
    # expiry re-replicates blocks whose nodes are briefly away.  (The
    # rejoin-time `thrash` event counter only fires when outages end
    # within the job window; traffic is the robust signal.)
    assert short["repl_mb"] > moon["repl_mb"] * 1.5
    # Stale reads: hibernation must cut client timeouts vs the stock
    # long-expiry configuration.
    assert moon["timeouts"] < long_["timeouts"]
    # The paper's design must not lose on job time either.
    assert moon["time"] is not None
    for other in (short, long_):
        assert other["time"] is None or moon["time"] <= other["time"] * 1.1
