"""XTRA-G: heterogeneous node speeds (paper VIII future work).

*"Due to testbed limitations ... we used homogeneous configurations
across the nodes.  In our future work, we plan to evaluate and further
enhance MOON in heterogeneous environments."*

Volatile nodes get CPU scales spread over 0.5x-1.5x (same mean as the
homogeneous cluster).  Speed disparity creates genuine stragglers on
top of volatility — the regime where LATE's progress-rate reasoning
was designed (and where the paper expects MOON+LATE hybrids to shine).
We compare MOON's scheduler on both clusters and LATE on the
heterogeneous one.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

import numpy as np

from repro.cluster import Cluster, Node, NodeKind
from repro.config import (
    ClusterConfig,
    NodeSpec,
    SchedulerConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import MoonSystem
from repro.plotting import table
from repro.simulation import Simulation
from repro.traces import generate_trace
from repro.workloads import sleep_like_sort

from conftest import run_once, save_report

N_VOLATILE, N_DEDICATED, RATE = 30, 3, 0.3


def _hetero_cluster(config: SystemConfig) -> Cluster:
    """Volatile nodes at cpu_scale 0.5..1.5 (mean 1.0), same traces the
    homogeneous build would draw."""
    probe = Simulation(config.seed)
    scales = np.linspace(0.5, 1.5, N_VOLATILE)
    nodes = [
        Node(i, NodeKind.DEDICATED, NodeSpec()) for i in range(N_DEDICATED)
    ]
    for i in range(N_VOLATILE):
        trace = generate_trace(config.trace, probe.rng_indexed("trace", i))
        spec = NodeSpec(cpu_scale=float(scales[i]))
        nodes.append(Node(N_DEDICATED + i, NodeKind.VOLATILE, spec, trace))
    return Cluster(nodes)


def _run(scheduler: SchedulerConfig, hetero: bool, scale):
    config = SystemConfig(
        cluster=ClusterConfig(n_volatile=N_VOLATILE, n_dedicated=N_DEDICATED),
        trace=TraceConfig(unavailability_rate=RATE),
        scheduler=scheduler,
        seed=42,
    )
    cluster = _hetero_cluster(config) if hetero else None
    system = MoonSystem(config, cluster=cluster)
    result = system.run_job(
        sleep_like_sort(n_maps=192), time_limit=scale.time_limit
    )
    return {
        "time": result.elapsed if result.succeeded else None,
        "dups": result.metrics.duplicated_tasks,
    }


def test_heterogeneous_speeds(benchmark, scale):
    def experiment():
        late = SchedulerConfig(
            kind="late", tracker_expiry_interval=600.0, hybrid_aware=False
        )
        return {
            "MOON homogeneous": _run(moon_scheduler_config(), False, scale),
            "MOON heterogeneous": _run(moon_scheduler_config(), True, scale),
            "LATE heterogeneous": _run(late, True, scale),
        }

    data = run_once(benchmark, experiment)

    rows = [
        [name, None if d["time"] is None else f"{d['time']:.0f}", d["dups"]]
        for name, d in data.items()
    ]
    report = table(
        ["configuration", "job time s", "duplicated tasks"],
        rows,
        title=(
            "XTRA-G - heterogeneous CPU speeds (0.5x-1.5x), "
            f"sleep[sort] at rate {RATE}"
        ),
    )
    report += (
        "\n\nPaper VIII: MOON targets homogeneous nodes; heterogeneity adds"
        "\nstragglers, so some slowdown is expected but the job must still"
        "\ncomplete reliably.  LATE (related work [16]) assumes constant"
        "\nprogress rates, an assumption volatility breaks."
    )
    save_report("heterogeneous", report)

    moon_homo = data["MOON homogeneous"]
    moon_het = data["MOON heterogeneous"]
    assert moon_homo["time"] is not None
    assert moon_het["time"] is not None
    # Heterogeneity may slow things down, but within reason (<2x): the
    # speculation machinery must absorb the slow half of the cluster.
    assert moon_het["time"] < moon_homo["time"] * 2.0
