"""XTRA-B bench: two-phase scheduling H/R sweep (paper: H=20, R=2
'worked well'; this quantifies the trade-off around that point)."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import ablations

from conftest import run_once, save_report


def test_twophase_parameter_sweep(benchmark):
    data = run_once(benchmark, ablations.run_twophase_sweep)
    save_report("ablation_twophase", ablations.report_twophase(data))

    # All configurations finish.
    assert all(v["time"] is not None for v in data.values()), data
    # The homestretch costs duplicates: H=0 (off) must duplicate less
    # than the aggressive H=40 configuration.
    assert (
        data["H=0,R=1"]["duplicates"] <= data["H=40,R=2"]["duplicates"]
    ), data
