"""XTRA-I: workload-trace replay (trace-driven serving studies).

The ROADMAP's "trace-driven arrival replay" item, end to end: the
bundled Google-cluster-style sample is replayed verbatim under every
queue policy, and the Hadoop JobHistory-style sample (whose batch
jobs saturate the small cluster) is synthesized to 3x load — the
regime where queue ordering decides the deadline-miss rate — and
replayed the same way.  Asserted claims:
(a) the `repro replay` CLI output is byte-identical across two
*independent processes* — the acceptance bar for comparison tables;
(b) under the 3x trace, EDF beats FIFO on deadline misses, i.e. the
policy ranking the synthetic-stream benches found carries over to
replayed traffic; (c) capture -> replay round-trips the report.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    SystemConfig,
    TraceConfig,
    moon_scheduler_config,
)
from repro.core import moon_system
from repro.plotting import table
from repro.service import MoonService, ServiceConfig
from repro.workload_traces import (
    SynthesisConfig,
    load_workload_trace,
    synthesize,
    trace_arrivals,
)

from conftest import run_once, save_report

pytestmark = pytest.mark.slow

HOUR = 3600.0
REPO = pathlib.Path(__file__).parent.parent
SAMPLE = REPO / "benchmarks" / "data" / "google_cluster_sample.csv"
HADOOP_SAMPLE = REPO / "benchmarks" / "data" / "hadoop_jobhistory_sample.json"
POLICIES = ("fifo", "sjf", "fair", "edf")


def _system(seed=42):
    return moon_system(
        SystemConfig(
            cluster=ClusterConfig(n_volatile=12, n_dedicated=2),
            trace=TraceConfig(unavailability_rate=0.3),
            scheduler=moon_scheduler_config(),
            seed=seed,
        )
    )


def _replay(trace, policy, capture=False):
    system = _system()
    service = MoonService(
        system,
        ServiceConfig(
            policy=policy,
            max_in_flight=2,
            max_queue_depth=64,
            horizon=trace.horizon,
            drain_limit=4 * HOUR,
            capture=capture,
            trace_name=trace.name,
        ),
        trace_arrivals(trace),
        pattern=trace.pattern,
    )
    report = service.run()
    system.jobtracker.stop()
    system.namenode.stop()
    return report, service.captured_trace


def _cli_replay_bytes():
    """One independent `repro replay --policy all` process's stdout."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "replay", "--trace", str(SAMPLE),
         "--policy", "all"],
        capture_output=True,
        cwd=str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return proc.stdout


def test_trace_replay(benchmark, scale):
    trace = load_workload_trace(SAMPLE)
    heavy = synthesize(
        load_workload_trace(HADOOP_SAMPLE),
        np.random.default_rng(7),
        SynthesisConfig(load_factor=3.0),
    )

    def experiment():
        verbatim = {p: _replay(trace, p)[0] for p in POLICIES}
        scaled = {p: _replay(heavy, p)[0] for p in POLICIES}
        # Round trip: capture the EDF replay and serve the capture.
        base, captured = _replay(trace, "edf", capture=True)
        again, _ = _replay(captured, "edf")
        return verbatim, scaled, base, again

    verbatim, scaled, base, again = run_once(benchmark, experiment)

    rows = []
    for label, reports in (("google 1x", verbatim),
                           ("hadoop 3x", scaled)):
        for policy, rep in reports.items():
            o = rep.overall
            rows.append(
                [label, policy, o.arrived, o.rejected + o.dropped]
                + rep.summary_row()
            )
    report_text = table(
        ["load", "policy", "arrived", "rej", "done",
         "p50 s", "p95 s", "p99 s", "miss", "good/h", "fairness"],
        rows,
        title=("XTRA-I - workload-trace replay: google sample verbatim "
               "+ hadoop sample synthesized to 3x load"),
    )
    save_report("trace_replay", report_text)

    # (c) capture -> replay reproduces the report byte for byte.
    assert again.render() == base.render()

    # Every verbatim cell served its whole stream.
    for rep in verbatim.values():
        assert rep.overall.arrived == len(trace)
        assert rep.overall.completed == rep.overall.admitted

    # (b) at 3x load the deadline-aware queue wins on misses.
    fifo, edf = scaled["fifo"].overall, scaled["edf"].overall
    assert fifo.deadline_misses > 0, "3x trace must create backlog"
    assert edf.deadline_misses <= fifo.deadline_misses

    # (a) the CLI comparison is byte-identical across two processes.
    assert _cli_replay_bytes() == _cli_replay_bytes()
