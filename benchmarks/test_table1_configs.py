"""TABLE I bench: application configurations.

Verifies the workload library reproduces Table I exactly at full scale
and proportionally at reduced scale, and benchmarks input staging of
the sort workload (384 blocks through the placement policy).
"""

from __future__ import annotations

from repro.config import ClusterConfig, SystemConfig, TraceConfig
from repro.config import moon_scheduler_config
from repro.core import moon_system
from repro.experiments import current_scale, full_scale
from repro.workloads import sort_spec, wordcount_spec

from conftest import run_once, save_report


def test_table1_configurations(benchmark, scale):
    def check():
        s, w = sort_spec(), wordcount_spec()
        rows = [
            "TABLE I - application configurations",
            f"{'application':<12}{'input':>8}{'# maps':>8}{'# reduces':>22}",
            f"{'sort':<12}{s.input_mb / 1024:>6.0f}GB{s.n_maps:>8}"
            f"{'0.9 x AvailSlots':>22}",
            f"{'word count':<12}{w.input_mb / 1024:>6.0f}GB{w.n_maps:>8}"
            f"{w.n_reduces:>22}",
        ]
        assert s.n_maps == 384 and s.input_mb == 24 * 1024
        assert w.n_maps == 320 and w.input_mb == 20 * 1024
        assert w.n_reduces == 20
        assert s.resolve_reduces(132) == 118  # 0.9 x 132 slots
        return "\n".join(rows)

    report = run_once(benchmark, check)
    save_report("table1", report)


def test_input_staging_throughput(benchmark, scale):
    """How fast the simulated DFS stages Table-I inputs (placement +
    metadata for every block) - a real benchmark of the NameNode path."""

    def stage():
        cfg = SystemConfig(
            cluster=ClusterConfig(
                n_volatile=scale.n_volatile, n_dedicated=scale.n_dedicated
            ),
            trace=TraceConfig(unavailability_rate=0.0),
            scheduler=moon_scheduler_config(),
            seed=1,
        )
        system = moon_system(cfg)
        spec = sort_spec(n_maps=384, block_mb=64.0 * scale.data_factor)
        file = system.dfs.stage_input(
            "/bench/input", spec.input_mb, spec.input_rf,
            block_size_mb=spec.map_input_mb,
        )
        return len(file.blocks)

    blocks = benchmark(stage)
    assert blocks == 384
